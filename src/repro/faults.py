"""Deterministic fault injection.

Crash-recovery and graceful-degradation code is only trustworthy when
its failure modes can be produced on demand.  This module lets tests
(and brave users) declare a :class:`FaultPlan` — *fail the Nth matching
I/O operation*, *skip the Nth fsync*, *raise inside the Nth hop/edge
task*, *corrupt bytes of a named file* — and activate it for a scope.
Everything is counter-based and seeded, so a failing run replays
exactly.

Instrumentation points live in the production code paths:

* :mod:`repro.evolving.store` calls :func:`io_check` before every
  read / write / fsync / replace, labelled ``"<op>:<filename>"``
  (e.g. ``"write:batch_00003.npz"``, ``"fsync:manifest.json"``);
* :mod:`repro.core.parallel` calls :func:`task_check` at the start of
  every *primary* hop / schedule-edge execution, labelled
  ``"hop:<index>"`` / ``"edge:<lo>-<hi>-><lo>-<hi>"``.  Degraded
  (sequential-recovery) re-executions are deliberately un-instrumented:
  they model the recovery path, which must not re-fail.

With no plan active the hooks are a single ``None`` check — the
production cost of the harness is negligible.

Example::

    plan = FaultPlan(seed=7)
    plan.fail_io(index=2, times=99)        # every attempt at the 3rd I/O op
    with plan.active():
        store.append(batch)                # "crashes" mid-append
    report = SnapshotStore.recover_store(store.directory)
"""

from __future__ import annotations

import fnmatch
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "burst_offsets",
    "corrupt_bytes",
    "has_active_plan",
    "io_check",
    "service_check",
    "task_check",
]


class InjectedFault(OSError):
    """The error raised by an injected fault.

    Subclasses :class:`OSError` so retry policies and error handling
    treat injected faults exactly like real I/O failures — the point of
    the exercise.
    """


@dataclass
class FaultRule:
    """One trigger: affect matching operations ``index .. index+times-1``.

    ``kind`` is ``"io"``, ``"task"`` or ``"service"``; ``match`` is an
    :mod:`fnmatch` pattern over the operation label; ``index`` is the
    0-based ordinal *among operations this rule matches*; ``action`` is
    ``"fail"`` (raise :class:`InjectedFault`), ``"skip"`` (suppress the
    operation — meaningful for fsync-style ops only) or ``"delay"``
    (stall the operation for ``seconds`` before letting it proceed —
    the latency-injection primitive of the chaos harness).
    """

    kind: str
    index: int
    match: str = "*"
    times: int = 1
    action: str = "fail"
    seconds: float = 0.0
    seen: int = 0
    fired: int = 0

    def applies(self, label: str) -> Optional[str]:
        """Advance this rule past ``label``; return the action if it fires."""
        if not fnmatch.fnmatchcase(label, self.match):
            return None
        ordinal = self.seen
        self.seen += 1
        if self.index <= ordinal < self.index + self.times:
            self.fired += 1
            return self.action
        return None


class FaultPlan:
    """A seeded, replayable schedule of faults.

    Rules are added with :meth:`fail_io` / :meth:`skip_io` /
    :meth:`fail_task`, then the plan is activated with :meth:`active`.
    Counters advance per rule as matching operations occur;
    :meth:`reset` rewinds them so the same plan replays identically.
    The plan records every checked operation label in :attr:`events`,
    which doubles as an I/O trace for tests that need to enumerate
    crash points.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = []
        self.events: List[str] = []
        self._lock = threading.Lock()

    # -- declaring faults ---------------------------------------------------
    def fail_io(self, index: int = 0, match: str = "*",
                times: int = 1) -> "FaultPlan":
        """Raise on the ``index``-th (0-based) matching I/O operation."""
        self.rules.append(FaultRule("io", index, match, times, "fail"))
        return self

    def skip_io(self, index: int = 0, match: str = "*",
                times: int = 1) -> "FaultPlan":
        """Silently skip the matching I/O operation (e.g. a lost fsync)."""
        self.rules.append(FaultRule("io", index, match, times, "skip"))
        return self

    def fail_task(self, index: int = 0, match: str = "*",
                  times: int = 1) -> "FaultPlan":
        """Raise inside the ``index``-th matching hop/edge task."""
        self.rules.append(FaultRule("task", index, match, times, "fail"))
        return self

    def fail_service(self, index: int = 0, match: str = "*",
                     times: int = 1) -> "FaultPlan":
        """Raise inside the ``index``-th matching service operation.

        Labels are ``"query:<key>"`` / ``"ingest:<version>"`` — the
        query service's primary execution paths (see
        :func:`service_check`).
        """
        self.rules.append(FaultRule("service", index, match, times, "fail"))
        return self

    def delay_io(self, seconds: float, index: int = 0, match: str = "*",
                 times: int = 1) -> "FaultPlan":
        """Stall the ``index``-th matching I/O operation for ``seconds``."""
        self.rules.append(
            FaultRule("io", index, match, times, "delay", seconds)
        )
        return self

    def delay_service(self, seconds: float, index: int = 0, match: str = "*",
                      times: int = 1) -> "FaultPlan":
        """Stall the ``index``-th matching service operation.

        The latency half of the chaos harness: combined with a burst of
        concurrent clients it fills the admission waiting room with slow
        requests so shedding and queue-timeout behaviour can be asserted
        deterministically (the stall count is exact, not probabilistic).
        """
        self.rules.append(
            FaultRule("service", index, match, times, "delay", seconds)
        )
        return self

    def fail_autopilot(self, index: int = 0, match: str = "*",
                       times: int = 1) -> "FaultPlan":
        """Raise inside the ``index``-th matching autopilot operation.

        Labels are ``"autopilot:scrape:<target>"`` (signal collection)
        and ``"autopilot:action:<verb>:<target>"`` (grow/shrink/heal
        execution), so a plan can fail exactly one scrape or exactly one
        membership action and the loop's neutral-failure handling
        (retry after cooldown, never half-configured membership) can be
        asserted deterministically.
        """
        self.rules.append(
            FaultRule("service", index, f"autopilot:{match}", times, "fail")
        )
        return self

    def delay_autopilot(self, seconds: float, index: int = 0,
                        match: str = "*", times: int = 1) -> "FaultPlan":
        """Stall the ``index``-th matching autopilot operation."""
        self.rules.append(
            FaultRule("service", index, f"autopilot:{match}", times,
                      "delay", seconds)
        )
        return self

    def corrupt(self, path: Union[str, Path],
                count: int = 1) -> List[Tuple[int, int, int]]:
        """Corrupt ``count`` bytes of ``path`` now, seeded by the plan."""
        return corrupt_bytes(path, seed=self.seed, count=count)

    # -- lifecycle ----------------------------------------------------------
    def reset(self) -> "FaultPlan":
        """Rewind all counters so the plan replays from the start."""
        with self._lock:
            self.events.clear()
            for rule in self.rules:
                rule.seen = 0
                rule.fired = 0
        return self

    def fired_rules(self) -> List[FaultRule]:
        """The rules that have triggered at least once."""
        return [rule for rule in self.rules if rule.fired]

    @contextmanager
    def active(self) -> Iterator["FaultPlan"]:
        """Activate this plan for the duration of the ``with`` block."""
        global _active
        with _activation_lock:
            previous, _active = _active, self
        try:
            yield self
        finally:
            with _activation_lock:
                _active = previous

    # -- hook implementation ------------------------------------------------
    def _check(self, kind: str, label: str) -> bool:
        delay = 0.0
        with self._lock:
            self.events.append(label)
            action = None
            for rule in self.rules:
                if rule.kind != kind:
                    continue
                fired = rule.applies(label)
                if fired is None:
                    continue
                if fired == "delay":
                    delay += rule.seconds
                elif action is None:
                    action = fired
        if delay > 0.0:
            # Sleep outside the lock: an injected stall must slow only
            # the operation it hit, never serialise unrelated hooks.
            time.sleep(delay)
        if action == "fail":
            raise InjectedFault(f"injected fault at {label}")
        return action != "skip"

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
                f"events={len(self.events)})")


_activation_lock = threading.Lock()
_active: Optional[FaultPlan] = None


@contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Module-level alias for :meth:`FaultPlan.active`."""
    with plan.active():
        yield plan


def has_active_plan() -> bool:
    """Whether a fault plan is currently activated.

    Event-loop code uses this to decide whether a hook worth a thread
    dispatch is needed at all: an injected ``delay`` sleeps inside the
    hook, so async callers (the fleet router's transport) run
    :func:`service_check` in an executor — but only when a plan is
    active, keeping the production path a single function call.
    """
    return _active is not None


def io_check(op: str, name: str) -> bool:
    """Fault hook before an I/O operation ``op`` on file ``name``.

    Returns ``False`` if the operation should be silently skipped,
    raises :class:`InjectedFault` if it should fail, ``True`` otherwise.
    Production code calls this before every store read/write/fsync/
    replace; with no active plan it is a single ``None`` check.
    """
    plan = _active
    if plan is None:
        return True
    return plan._check("io", f"{op}:{name}")


def task_check(kind: str, label: object) -> None:
    """Fault hook at the start of a parallel task (hop or edge)."""
    plan = _active
    if plan is None:
        return
    plan._check("task", f"{kind}:{label}")


def service_check(op: str, label: object) -> None:
    """Fault hook at the start of a service operation (query or ingest).

    The query server calls this on its *primary* execution path only;
    the degraded fallback (a plain offline evaluation) is deliberately
    un-instrumented, mirroring the parallel evaluators' recovery paths.
    """
    plan = _active
    if plan is None:
        return
    plan._check("service", f"{op}:{label}")


def burst_offsets(count: int, *, spread: float = 0.05,
                  seed: int = 0) -> List[float]:
    """Deterministic start offsets (seconds) for a burst of clients.

    A chaos storm wants *near*-simultaneous arrivals, not a perfectly
    aligned stampede — lock convoys hide behind perfect alignment.  The
    offsets are drawn uniformly from ``[0, spread)`` with a seeded RNG
    and returned sorted, so the same seed replays the same arrival
    pattern exactly.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if spread < 0:
        raise ValueError("spread must be >= 0")
    rng = random.Random(seed)
    return sorted(rng.uniform(0.0, spread) for _ in range(count))


def corrupt_bytes(path: Union[str, Path], *, seed: int = 0,
                  count: int = 1) -> List[Tuple[int, int, int]]:
    """Deterministically corrupt ``count`` bytes of ``path`` in place.

    Offsets and replacement bytes derive from ``seed``; each mutation
    is guaranteed to change the byte.  Returns the list of
    ``(offset, old_byte, new_byte)`` mutations for test assertions.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    rng = random.Random(seed)
    mutations: List[Tuple[int, int, int]] = []
    for _ in range(count):
        offset = rng.randrange(len(data))
        old = data[offset]
        new = old ^ rng.randrange(1, 256)
        data[offset] = new
        mutations.append((offset, old, new))
    path.write_bytes(bytes(data))
    return mutations
