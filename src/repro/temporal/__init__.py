"""Time-travel and historical analytics over the Triangular Grid.

The temporal subsystem turns the service's single-range Q&A into an
evolving-graph analytics API: point-in-time queries (``as_of`` a
version or ingest timestamp), per-vertex timelines, temporal
aggregates (min/max/mean/argmin/argmax, first-reachable, change
counts, top-k volatility), snapshot diffs, and sliding-window rollups
— all compiled onto the same Triangular Grid descents the service
already memoizes, with overlapping ranges coalesced so each merged
range costs exactly one descent.

Layout::

    plan.py        spec vocabulary + structural validator (ProtocolError)
    aggregates.py  vectorised NumPy kernels over (snapshots, vertices)
    engine.py      resolve -> coalesce -> evaluate -> aggregate executor
    timeline.py    result types + stable JSON wire encoding

See ``docs/temporal.md`` for the query vocabulary and cost model.
"""

from repro.temporal.engine import TemporalEngine, coalesce_ranges
from repro.temporal.plan import (
    AGGREGATES,
    MODES,
    ROLLUP_AGGREGATES,
    TemporalPlan,
    TemporalSpec,
    compile_plan,
    parse_spec,
    parse_specs,
)
from repro.temporal.timeline import (
    TemporalAnswer,
    decode_results,
    dumps_stable,
    encode_results,
)

__all__ = [
    "AGGREGATES",
    "MODES",
    "ROLLUP_AGGREGATES",
    "TemporalAnswer",
    "TemporalEngine",
    "TemporalPlan",
    "TemporalSpec",
    "coalesce_ranges",
    "compile_plan",
    "decode_results",
    "dumps_stable",
    "encode_results",
    "parse_spec",
    "parse_specs",
]
