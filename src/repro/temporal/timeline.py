"""Timeline result types and their stable JSON wire encoding.

The engine produces one result document per spec, carrying NumPy
arrays; this module round-trips them through JSON.  The encoding rules
are fixed so two runs over the same data serialise byte-identically:

* float vectors use the service's infinity convention — ``inf`` /
  ``-inf`` become the strings ``"inf"`` / ``"-inf"`` (JSON has no
  infinities), everything else a plain float;
* integer vectors (versions, counts) stay plain integers;
* :func:`dumps_stable` serialises with sorted keys and compact
  separators, so the byte stream is a function of the content alone.

Which fields are float vs int vectors is keyed off the result's mode
and aggregate (see :data:`repro.temporal.plan.INT_AGGREGATES`), never
guessed from the payload.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.temporal.plan import INT_AGGREGATES

__all__ = [
    "TemporalAnswer",
    "decode_float_vector",
    "decode_results",
    "dumps_stable",
    "encode_float_vector",
    "encode_results",
]


@dataclass
class TemporalAnswer:
    """One answered temporal request: per-spec results plus accounting.

    ``ranges_evaluated`` counts the coalesced ranges actually descended
    (one Triangular Grid walk each); ``snapshots_scanned`` sums their
    widths — the cost-model numbers the metrics and the bench report.
    """

    algorithm: str
    source: int
    window_first: int
    window_last: int
    results: List[Dict[str, Any]] = field(default_factory=list)
    ranges_evaluated: int = 0
    snapshots_scanned: int = 0
    epoch: int = 0


def encode_float_vector(vector: Sequence[float]) -> List[Any]:
    """Float vector → JSON-safe list (infinities as strings)."""
    row: List[Any] = []
    for value in map(float, vector):
        if math.isinf(value):
            row.append("inf" if value > 0 else "-inf")
        else:
            row.append(value)
    return row


def decode_float_vector(row: Sequence[Any]) -> np.ndarray:
    """Inverse of :func:`encode_float_vector`, back to float64."""
    try:
        return np.asarray([float(value) for value in row], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"malformed temporal value vector: {exc}"
        ) from exc


def _int_list(vector: Sequence[int]) -> List[int]:
    return [int(value) for value in vector]


def _float_fields(result: Dict[str, Any]) -> List[str]:
    """Names of this result's float-vector fields, by mode."""
    mode = result.get("mode")
    if mode in ("point", "timeline", "rollup"):
        return ["values"]
    if mode == "diff":
        return ["delta"]
    if mode == "aggregate":
        agg = result.get("agg")
        if agg == "top_volatile" or agg in INT_AGGREGATES:
            return []
        return ["values"]
    raise ProtocolError(f"unknown temporal result mode {mode!r}")


def _int_fields(result: Dict[str, Any]) -> List[str]:
    """Names of this result's integer-vector fields, by mode."""
    if result.get("mode") != "aggregate":
        return []
    agg = result.get("agg")
    if agg == "top_volatile":
        return ["vertices", "counts"]
    if agg in INT_AGGREGATES:
        return ["values"]
    return []


def encode_results(results: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Engine results → JSON-safe documents (wire form)."""
    encoded: List[Dict[str, Any]] = []
    for result in results:
        doc = dict(result)
        for name in _float_fields(result):
            doc[name] = encode_float_vector(result[name])
        for name in _int_fields(result):
            doc[name] = _int_list(result[name])
        encoded.append(doc)
    return encoded


def decode_results(encoded: Any) -> List[Dict[str, Any]]:
    """Inverse of :func:`encode_results`: vectors back to NumPy arrays."""
    if not isinstance(encoded, list):
        raise ProtocolError("temporal response carries no results list")
    decoded: List[Dict[str, Any]] = []
    for doc in encoded:
        if not isinstance(doc, dict):
            raise ProtocolError("each temporal result must be a JSON object")
        result = dict(doc)
        for name in _float_fields(doc):
            result[name] = decode_float_vector(doc.get(name, []))
        for name in _int_fields(doc):
            result[name] = np.asarray(doc.get(name, []), dtype=np.int64)
        decoded.append(result)
    return decoded


def dumps_stable(doc: Any) -> str:
    """Canonical JSON: sorted keys, compact separators, no NaN escape."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
