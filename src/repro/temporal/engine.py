"""The temporal executor: specs → coalesced TG ranges → aggregates.

The Triangular Grid's core property — one Steiner descent converges
*every* snapshot in a range — makes a batch of temporal questions
cheap if their ranges are evaluated together.  The engine exploits
exactly that:

1. **plan** — resolve each spec against the window (defaults, bounds,
   timestamp → version), collect the snapshot ranges it needs;
2. **evaluate** — coalesce overlapping or adjacent ranges and evaluate
   each *merged* range once through the injected ``evaluate_range``
   callable (the service routes this through its result cache and the
   :class:`~repro.service.planner.MemoizingPlanner`, so repeated
   temporal queries reuse epoch-keyed node states like any other
   query); ranges separated by a gap stay separate — the engine never
   scans a snapshot no spec asked for;
3. **aggregate** — slice the per-version value vectors into each
   spec's matrix and reduce with the :mod:`repro.temporal.aggregates`
   kernels.

Accounting is part of the contract: ``ranges_evaluated`` counts TG
descents (one per merged range) and ``snapshots_scanned`` sums their
widths; both feed the ``repro_temporal_*`` metrics that the tests and
the bench assert the coalescing win on.

The engine itself owns no graph state — callers inject
``evaluate_range`` (and optionally ``structural_diff`` for edge-churn
counts and ``version_times`` for timestamp resolution), which is what
lets the service's cached path, its cache-free degraded path, and the
offline :class:`~repro.evolving.version_control.VersionController`
all drive the same planner/aggregate code.
"""

from __future__ import annotations

from dataclasses import replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs
from repro.algorithms.base import MonotonicAlgorithm
from repro.errors import ProtocolError
from repro.temporal import aggregates
from repro.temporal.plan import TemporalSpec
from repro.temporal.timeline import TemporalAnswer

__all__ = ["TemporalEngine", "coalesce_ranges"]

#: ``evaluate_range(first, last)`` → one value vector per snapshot.
RangeEvaluator = Callable[[int, int], Sequence[np.ndarray]]


def coalesce_ranges(
    ranges: Sequence[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Merge overlapping *or adjacent* ranges; never bridge a gap.

    ``[2, 5]`` and ``[4, 8]`` merge (overlap), ``[2, 5]`` and ``[6, 8]``
    merge (adjacent — the union is contiguous, one descent covers it),
    but ``[2, 5]`` and ``[7, 8]`` stay separate: merging them would
    scan snapshot 6, which nobody asked for.
    """
    if not ranges:
        return []
    ordered = sorted(ranges)
    merged = [ordered[0]]
    for first, last in ordered[1:]:
        prev_first, prev_last = merged[-1]
        if first <= prev_last + 1:
            merged[-1] = (prev_first, max(prev_last, last))
        else:
            merged.append((first, last))
    return merged


class TemporalEngine:
    """Execute one batch of temporal specs against an evaluation window."""

    def __init__(
        self,
        *,
        algorithm: MonotonicAlgorithm,
        source: int,
        num_vertices: int,
        window_first: int,
        window_last: int,
        evaluate_range: RangeEvaluator,
        structural_diff: Optional[Callable[[int, int], Any]] = None,
        version_times: Optional[Mapping[int, float]] = None,
    ) -> None:
        if window_first > window_last:
            raise ProtocolError(
                f"empty evaluation window [{window_first}, {window_last}]"
            )
        if not 0 <= source < num_vertices:
            raise ProtocolError(
                f"source {source} out of range [0, {num_vertices})"
            )
        self.algorithm = algorithm
        self.source = source
        self.num_vertices = num_vertices
        self.window_first = window_first
        self.window_last = window_last
        self.evaluate_range = evaluate_range
        self.structural_diff = structural_diff
        self.version_times = version_times

    @classmethod
    def for_controller(
        cls, controller: Any, algorithm: Any, source: int,
        version_times: Optional[Mapping[int, float]] = None,
    ) -> "TemporalEngine":
        """An offline engine over a whole ``VersionController`` history.

        Each merged range still costs one work-sharing evaluation (one
        TG descent); only the service's cross-request caches are
        absent.  ``structural_diff`` is the controller's own ``diff``.
        """
        from repro.algorithms.registry import get_algorithm

        alg = (get_algorithm(algorithm) if isinstance(algorithm, str)
               else algorithm)

        def evaluate_range(first: int, last: int) -> Sequence[np.ndarray]:
            result = controller.evaluate(alg, source, first=first, last=last)
            return result.snapshot_values

        return cls(
            algorithm=alg,
            source=source,
            num_vertices=controller.decomposition.num_vertices,
            window_first=0,
            window_last=controller.num_versions - 1,
            evaluate_range=evaluate_range,
            structural_diff=controller.diff,
            version_times=version_times,
        )

    # -- execution ----------------------------------------------------------
    def run(self, specs: Sequence[TemporalSpec]) -> TemporalAnswer:
        """Answer every spec; one TG descent per coalesced range."""
        if not specs:
            raise ProtocolError("a temporal request needs at least one spec")
        answer = TemporalAnswer(
            algorithm=self.algorithm.name,
            source=self.source,
            window_first=self.window_first,
            window_last=self.window_last,
        )
        with obs.phase_span(
            "temporal", "plan",
            label=f"{self.algorithm.name}:{self.source}",
            specs=len(specs),
        ) as plan_span:
            resolved = [self._resolve(spec) for spec in specs]
            merged = coalesce_ranges(
                [rng for spec in resolved for rng in self._ranges_of(spec)]
            )
            plan_span.annotate(ranges=len(merged))
        values_by_version: Dict[int, np.ndarray] = {}
        with obs.phase_span("temporal", "evaluate", ranges=len(merged)):
            for first, last in merged:
                rows = self.evaluate_range(first, last)
                for offset, row in enumerate(rows):
                    values_by_version[first + offset] = np.asarray(
                        row, dtype=np.float64
                    )
                width = last - first + 1
                answer.ranges_evaluated += 1
                answer.snapshots_scanned += width
                obs.counter_inc("repro_temporal_snapshots_scanned_total",
                                amount=width)
                obs.observe("repro_temporal_range_width", float(width))
        with obs.phase_span("temporal", "aggregate", specs=len(specs)):
            for spec in resolved:
                answer.results.append(
                    self._answer_spec(spec, values_by_version)
                )
                obs.counter_inc("repro_temporal_queries_total",
                                mode=spec.mode)
        return answer

    # -- resolution ---------------------------------------------------------
    def _check_range(self, first: int, last: int) -> None:
        if not self.window_first <= first <= last <= self.window_last:
            raise ProtocolError(
                f"snapshot range [{first}, {last}] outside the window "
                f"[{self.window_first}, {self.window_last}]"
            )

    def _resolve(self, spec: TemporalSpec) -> TemporalSpec:
        """Fill window defaults and check bounds; returns a concrete spec."""
        if spec.vertex is not None and not (
                0 <= spec.vertex < self.num_vertices):
            raise ProtocolError(
                f"vertex {spec.vertex} out of range [0, {self.num_vertices})"
            )
        if spec.mode == "point":
            version = spec.as_of
            if version is None:
                assert spec.as_of_timestamp is not None
                version = self._resolve_timestamp(spec.as_of_timestamp)
            self._check_range(version, version)
            return replace(spec, as_of=version)
        if spec.mode == "diff":
            assert spec.a is not None and spec.b is not None
            self._check_range(min(spec.a, spec.b), max(spec.a, spec.b))
            return spec
        first = self.window_first if spec.first is None else spec.first
        last = self.window_last if spec.last is None else spec.last
        self._check_range(first, last)
        if spec.mode == "rollup":
            assert spec.width is not None
            span = last - first + 1
            if spec.width > span:
                raise ProtocolError(
                    f"rollup width {spec.width} exceeds the range span "
                    f"{span} ([{first}, {last}])"
                )
        return replace(spec, first=first, last=last)

    def _resolve_timestamp(self, timestamp: float) -> int:
        """Largest window version ingested at or before ``timestamp``."""
        if self.version_times is None:
            raise ProtocolError(
                "this evaluation window records no ingest timestamps; "
                "query by 'as_of' version instead"
            )
        best: Optional[int] = None
        for version, stamp in self.version_times.items():
            if (self.window_first <= version <= self.window_last
                    and stamp <= timestamp
                    and (best is None or version > best)):
                best = version
        if best is None:
            raise ProtocolError(
                f"no snapshot ingested at or before timestamp {timestamp}"
            )
        return best

    @staticmethod
    def _ranges_of(spec: TemporalSpec) -> List[Tuple[int, int]]:
        """The snapshot ranges a *resolved* spec needs evaluated."""
        if spec.mode == "point":
            assert spec.as_of is not None
            return [(spec.as_of, spec.as_of)]
        if spec.mode == "diff":
            assert spec.a is not None and spec.b is not None
            return [(spec.a, spec.a), (spec.b, spec.b)]
        assert spec.first is not None and spec.last is not None
        return [(spec.first, spec.last)]

    # -- aggregation ---------------------------------------------------------
    def _answer_spec(
        self, spec: TemporalSpec, values_by_version: Dict[int, np.ndarray],
    ) -> Dict[str, Any]:
        if spec.mode == "point":
            assert spec.as_of is not None
            result: Dict[str, Any] = {
                "mode": "point",
                "version": spec.as_of,
                "values": values_by_version[spec.as_of].copy(),
            }
            if spec.as_of_timestamp is not None:
                result["as_of_timestamp"] = spec.as_of_timestamp
            return result
        if spec.mode == "diff":
            return self._answer_diff(spec, values_by_version)
        assert spec.first is not None and spec.last is not None
        matrix = np.stack([
            values_by_version[version]
            for version in range(spec.first, spec.last + 1)
        ])
        if spec.mode == "timeline":
            assert spec.vertex is not None
            return {
                "mode": "timeline",
                "vertex": spec.vertex,
                "first": spec.first,
                "last": spec.last,
                "values": matrix[:, spec.vertex].copy(),
            }
        if spec.mode == "rollup":
            return self._answer_rollup(spec, matrix)
        return self._answer_aggregate(spec, matrix)

    def _answer_aggregate(
        self, spec: TemporalSpec, matrix: np.ndarray,
    ) -> Dict[str, Any]:
        assert spec.first is not None and spec.last is not None
        result: Dict[str, Any] = {
            "mode": "aggregate",
            "agg": spec.agg,
            "first": spec.first,
            "last": spec.last,
        }
        worst = self.algorithm.worst
        if spec.agg == "min":
            result["values"] = aggregates.temporal_min(matrix)
        elif spec.agg == "max":
            result["values"] = aggregates.temporal_max(matrix)
        elif spec.agg == "mean":
            result["values"] = aggregates.temporal_mean(matrix)
        elif spec.agg in ("argmin", "argmax"):
            kernel = (aggregates.temporal_argmin if spec.agg == "argmin"
                      else aggregates.temporal_argmax)
            result["values"] = kernel(matrix) + spec.first
        elif spec.agg == "first_reachable":
            rows = aggregates.first_reachable(matrix, worst)
            rows[rows >= 0] += spec.first
            result["values"] = rows
        elif spec.agg == "changed_count":
            result["values"] = aggregates.changed_count(matrix)
        else:  # top_volatile — the parser guarantees agg and k
            assert spec.k is not None
            vertices, counts = aggregates.top_volatile(matrix, spec.k)
            result["k"] = spec.k
            result["vertices"] = vertices
            result["counts"] = counts
        return result

    def _answer_diff(
        self, spec: TemporalSpec, values_by_version: Dict[int, np.ndarray],
    ) -> Dict[str, Any]:
        assert spec.a is not None and spec.b is not None
        values_a = values_by_version[spec.a]
        values_b = values_by_version[spec.b]
        worst = self.algorithm.worst
        reach_a = values_a != worst
        reach_b = values_b != worst
        result: Dict[str, Any] = {
            "mode": "diff",
            "a": spec.a,
            "b": spec.b,
            "delta": aggregates.value_delta(values_a, values_b),
            "became_reachable": int((~reach_a & reach_b).sum()),
            "became_unreachable": int((reach_a & ~reach_b).sum()),
            "value_changed": int((values_a != values_b).sum()),
        }
        if self.structural_diff is not None:
            batch = self.structural_diff(spec.a, spec.b)
            result["edge_additions"] = len(batch.additions)
            result["edge_deletions"] = len(batch.deletions)
        return result

    def _answer_rollup(
        self, spec: TemporalSpec, matrix: np.ndarray,
    ) -> Dict[str, Any]:
        assert (spec.vertex is not None and spec.width is not None
                and spec.first is not None and spec.last is not None)
        series = matrix[:, spec.vertex]
        windows = np.lib.stride_tricks.sliding_window_view(
            series, spec.width
        )
        if spec.agg == "min":
            values = windows.min(axis=1)
        elif spec.agg == "max":
            values = windows.max(axis=1)
        elif spec.agg == "mean":
            values = windows.mean(axis=1)
        else:  # changed_count
            if spec.width < 2:
                values = np.zeros(windows.shape[0], dtype=np.float64)
            else:
                values = (windows[:, 1:] != windows[:, :-1]).sum(
                    axis=1
                ).astype(np.float64)
        return {
            "mode": "rollup",
            "vertex": spec.vertex,
            "agg": spec.agg,
            "width": spec.width,
            "first": spec.first,
            "last": spec.last,
            "window_firsts": [
                spec.first + offset for offset in range(windows.shape[0])
            ],
            "values": np.asarray(values, dtype=np.float64),
        }
