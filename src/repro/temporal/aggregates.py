"""Vectorised temporal aggregate kernels.

Every kernel takes the *value matrix* of a snapshot range — shape
``(S, N)``, row ``i`` the per-vertex converged values of the range's
``i``-th snapshot — and reduces along the snapshot axis with plain
NumPy, so a whole window aggregates in one sweep.

Semantics shared by the kernels:

* *reachable* means ``value != algorithm.worst`` (the unreached-vertex
  marker, ``inf`` for the distance algorithms);
* ``argmin``/``argmax`` return the **first** row achieving the
  extremum (NumPy's tie rule), as a row index the engine converts to
  an absolute version;
* a *change* is any pair of consecutive rows with different values —
  ``inf != inf`` is ``False`` under IEEE, so a vertex that stays
  unreached never counts as changing;
* the value delta between two snapshots is ``b - a`` computed only
  where the values differ (equal values, including two ``inf``,
  yield exactly ``0.0`` — never ``nan``).

Determinism: every kernel is a pure function of its arguments; ties
break by lowest vertex id.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "changed_count",
    "first_reachable",
    "reachable_mask",
    "temporal_argmax",
    "temporal_argmin",
    "temporal_max",
    "temporal_mean",
    "temporal_min",
    "top_volatile",
    "value_delta",
]


def _matrix(matrix: np.ndarray) -> np.ndarray:
    out = np.asarray(matrix, dtype=np.float64)
    if out.ndim != 2 or out.shape[0] < 1:
        raise ValueError(
            f"value matrix must be (snapshots, vertices), got {out.shape}"
        )
    return out


def reachable_mask(matrix: np.ndarray, worst: float) -> np.ndarray:
    """Boolean ``(S, N)`` mask of vertices with a converged value."""
    return _matrix(matrix) != worst


def temporal_min(matrix: np.ndarray) -> np.ndarray:
    """Per-vertex minimum value over the range."""
    return _matrix(matrix).min(axis=0)


def temporal_max(matrix: np.ndarray) -> np.ndarray:
    """Per-vertex maximum value over the range."""
    return _matrix(matrix).max(axis=0)


def temporal_mean(matrix: np.ndarray) -> np.ndarray:
    """Per-vertex mean over the range (``inf`` if ever unreached)."""
    return _matrix(matrix).mean(axis=0)


def temporal_argmin(matrix: np.ndarray) -> np.ndarray:
    """Row index (first occurrence) of each vertex's minimum."""
    return _matrix(matrix).argmin(axis=0)


def temporal_argmax(matrix: np.ndarray) -> np.ndarray:
    """Row index (first occurrence) of each vertex's maximum."""
    return _matrix(matrix).argmax(axis=0)


def first_reachable(matrix: np.ndarray, worst: float) -> np.ndarray:
    """First row where each vertex is reachable; ``-1`` if never.

    ``argmax`` on the boolean mask returns the first ``True`` row —
    or row 0 when a column is all-``False``, which the any-mask turns
    back into ``-1``.
    """
    mask = reachable_mask(matrix, worst)
    first = mask.argmax(axis=0).astype(np.int64)
    first[~mask.any(axis=0)] = -1
    return first


def changed_count(matrix: np.ndarray) -> np.ndarray:
    """Per-vertex count of consecutive-snapshot value changes."""
    values = _matrix(matrix)
    if values.shape[0] < 2:
        return np.zeros(values.shape[1], dtype=np.int64)
    return (values[1:] != values[:-1]).sum(axis=0).astype(np.int64)


def top_volatile(matrix: np.ndarray,
                 k: int) -> Tuple[np.ndarray, np.ndarray]:
    """The ``k`` vertices with the most value changes over the range.

    Returns ``(vertices, counts)`` ordered by count descending, vertex
    id ascending on ties — a total order, so the result is stable.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    counts = changed_count(matrix)
    vertices = np.arange(counts.size, dtype=np.int64)
    # lexsort: last key is primary — count descending, then vertex id.
    order = np.lexsort((vertices, -counts))[:k]
    return vertices[order], counts[order]


def value_delta(values_a: np.ndarray, values_b: np.ndarray) -> np.ndarray:
    """Per-vertex ``b - a``, defined even at infinities.

    Where the two values are equal (including both ``inf``) the delta
    is exactly ``0.0``; subtracting only where they differ keeps
    ``inf - inf`` (which would be ``nan``) out of the result.
    """
    a = np.asarray(values_a, dtype=np.float64)
    b = np.asarray(values_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"value shapes differ: {a.shape} vs {b.shape}")
    delta = np.zeros_like(a)
    changed = a != b
    delta[changed] = b[changed] - a[changed]
    return delta
