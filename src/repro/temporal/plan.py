"""The temporal plan IR: parsed, validated temporal query specs.

A temporal request carries a batch of *specs* — small JSON objects,
one per temporal question — that the engine compiles into Triangular
Grid range evaluations.  This module owns the vocabulary and the
structural validator; anything malformed is rejected here with a
:class:`~repro.errors.ProtocolError` before a single snapshot is
touched.  Semantics that need the live window (range bounds, timestamp
resolution) are checked by the engine at resolve time.

Spec vocabulary (``mode`` selects the shape)::

    {"mode": "point", "as_of": 4}                  # one version
    {"mode": "point", "as_of_timestamp": 1699.5}   # latest ingest <= t
    {"mode": "timeline", "vertex": 7,
     "first": 2, "last": 9}                        # value of v across i..j
    {"mode": "aggregate", "agg": "min" | "max" | "mean" | "argmin" |
     "argmax" | "first_reachable" | "changed_count" | "top_volatile",
     "k": 10, "first": 2, "last": 9}               # per-vertex over window
    {"mode": "diff", "a": 2, "b": 7}               # delta + churn a -> b
    {"mode": "rollup", "vertex": 7, "agg": "mean",
     "width": 3, "first": 2, "last": 9}            # sliding windows

``first``/``last`` default to the service window; ``k`` (top-volatile
only) defaults to 10.  All versions are *absolute* snapshot numbers,
matching the service's version vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ProtocolError

__all__ = [
    "AGGREGATES",
    "INT_AGGREGATES",
    "MODES",
    "ROLLUP_AGGREGATES",
    "TemporalPlan",
    "TemporalSpec",
    "compile_plan",
    "parse_spec",
    "parse_specs",
]

MODES = ("point", "timeline", "aggregate", "diff", "rollup")

AGGREGATES = ("min", "max", "mean", "argmin", "argmax",
              "first_reachable", "changed_count", "top_volatile")

#: Aggregates whose result vectors are integers (versions or counts);
#: everything else is a float vector.  The wire codec keys off this.
INT_AGGREGATES = frozenset(
    {"argmin", "argmax", "first_reachable", "changed_count"}
)

ROLLUP_AGGREGATES = ("min", "max", "mean", "changed_count")

#: Default ``k`` for ``top_volatile``.
DEFAULT_TOP_K = 10

_FIELDS_BY_MODE = {
    "point": {"mode", "as_of", "as_of_timestamp"},
    "timeline": {"mode", "vertex", "first", "last"},
    "aggregate": {"mode", "agg", "k", "first", "last"},
    "diff": {"mode", "a", "b"},
    "rollup": {"mode", "vertex", "agg", "width", "first", "last"},
}


@dataclass(frozen=True)
class TemporalSpec:
    """One validated temporal question (wire spec, structurally checked)."""

    mode: str
    as_of: Optional[int] = None
    as_of_timestamp: Optional[float] = None
    vertex: Optional[int] = None
    first: Optional[int] = None
    last: Optional[int] = None
    agg: Optional[str] = None
    k: Optional[int] = None
    width: Optional[int] = None
    a: Optional[int] = None
    b: Optional[int] = None

    def to_doc(self) -> Dict[str, Any]:
        """The wire form: only the fields this mode carries."""
        doc: Dict[str, Any] = {"mode": self.mode}
        for name in sorted(_FIELDS_BY_MODE[self.mode] - {"mode"}):
            value = getattr(self, name)
            if value is not None:
                doc[name] = value
        return doc


@dataclass(frozen=True)
class TemporalPlan:
    """A batch of specs against one ``(algorithm, source)`` pair."""

    algorithm: str
    source: int
    specs: Tuple[TemporalSpec, ...]


def _spec_int(doc: Dict[str, Any], field: str, *,
              optional: bool = False, minimum: int = 0) -> Optional[int]:
    value = doc.get(field)
    if value is None:
        if optional:
            return None
        raise ProtocolError(f"temporal spec missing required field {field!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"temporal field {field!r} must be an integer")
    if value < minimum:
        raise ProtocolError(
            f"temporal field {field!r} must be >= {minimum}, got {value}"
        )
    return value


def _spec_range(doc: Dict[str, Any]) -> Tuple[Optional[int], Optional[int]]:
    first = _spec_int(doc, "first", optional=True)
    last = _spec_int(doc, "last", optional=True)
    if first is not None and last is not None and first > last:
        raise ProtocolError(
            f"temporal range [{first}, {last}] is reversed (first > last)"
        )
    return first, last


def parse_spec(doc: Any) -> TemporalSpec:
    """Validate one raw spec document into a :class:`TemporalSpec`.

    Raises :class:`ProtocolError` on anything structurally wrong:
    unknown modes or fields, missing required fields, wrong types,
    negative versions, reversed ranges.
    """
    if not isinstance(doc, dict):
        raise ProtocolError("each temporal query must be a JSON object")
    mode = doc.get("mode")
    if mode not in MODES:
        raise ProtocolError(
            f"unknown temporal mode {mode!r}; expected one of {MODES}"
        )
    unknown = set(doc) - _FIELDS_BY_MODE[mode]
    if unknown:
        raise ProtocolError(
            f"unknown fields {sorted(unknown)} for temporal mode {mode!r}"
        )
    if mode == "point":
        as_of = _spec_int(doc, "as_of", optional=True)
        timestamp = doc.get("as_of_timestamp")
        if timestamp is not None and (
                isinstance(timestamp, bool)
                or not isinstance(timestamp, (int, float))):
            raise ProtocolError(
                "temporal field 'as_of_timestamp' must be a number"
            )
        if (as_of is None) == (timestamp is None):
            raise ProtocolError(
                "a point spec needs exactly one of "
                "'as_of' or 'as_of_timestamp'"
            )
        return TemporalSpec(
            mode="point", as_of=as_of,
            as_of_timestamp=None if timestamp is None else float(timestamp),
        )
    if mode == "timeline":
        first, last = _spec_range(doc)
        return TemporalSpec(
            mode="timeline", vertex=_spec_int(doc, "vertex"),
            first=first, last=last,
        )
    if mode == "aggregate":
        agg = doc.get("agg")
        if agg not in AGGREGATES:
            raise ProtocolError(
                f"unknown aggregate {agg!r}; expected one of {AGGREGATES}"
            )
        k = _spec_int(doc, "k", optional=True, minimum=1)
        if k is not None and agg != "top_volatile":
            raise ProtocolError(
                "temporal field 'k' only applies to the "
                "'top_volatile' aggregate"
            )
        if agg == "top_volatile" and k is None:
            k = DEFAULT_TOP_K
        first, last = _spec_range(doc)
        return TemporalSpec(mode="aggregate", agg=agg, k=k,
                            first=first, last=last)
    if mode == "diff":
        return TemporalSpec(
            mode="diff", a=_spec_int(doc, "a"), b=_spec_int(doc, "b"),
        )
    # mode == "rollup"
    agg = doc.get("agg")
    if agg not in ROLLUP_AGGREGATES:
        raise ProtocolError(
            f"unknown rollup aggregate {agg!r}; expected one of "
            f"{ROLLUP_AGGREGATES}"
        )
    first, last = _spec_range(doc)
    return TemporalSpec(
        mode="rollup", vertex=_spec_int(doc, "vertex"), agg=agg,
        width=_spec_int(doc, "width", minimum=1), first=first, last=last,
    )


def parse_specs(docs: Any) -> List[TemporalSpec]:
    """Validate a request's ``queries`` list (non-empty, each a spec)."""
    if not isinstance(docs, list) or not docs:
        raise ProtocolError(
            "field 'queries' must be a non-empty list of temporal specs"
        )
    return [parse_spec(doc) for doc in docs]


def compile_plan(algorithm: str, source: int,
                 queries: Sequence[Any]) -> TemporalPlan:
    """Parse a raw request into a :class:`TemporalPlan`."""
    if not isinstance(algorithm, str):
        raise ProtocolError("field 'algorithm' must be a string")
    if isinstance(source, bool) or not isinstance(source, int) or source < 0:
        raise ProtocolError("field 'source' must be a non-negative integer")
    return TemporalPlan(
        algorithm=algorithm, source=source,
        specs=tuple(parse_specs(list(queries))),
    )
