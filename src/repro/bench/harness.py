"""Command-line harness: regenerate the paper's evaluation end to end.

Usage::

    python -m repro.bench                     # all experiments, paper profile
    python -m repro.bench --profile ci        # fast smoke profile
    python -m repro.bench table4 figure8      # a subset
    python -m repro.bench --out EXPERIMENTS_RUN.md

Writes each experiment's table to stdout and, with ``--out``, a
Markdown report suitable for diffing against EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.experiments import EXPERIMENTS, ExperimentResult
from repro.bench.workloads import PROFILES, WorkloadSpec

__all__ = ["main", "run_all", "profile_kwargs"]


def profile_kwargs(name: str, experiment: str) -> Dict[str, object]:
    """Per-experiment keyword overrides implementing a profile."""
    spec: WorkloadSpec = PROFILES[name]
    if experiment == "figure1":
        if name == "ci":
            return {"edge_scale": spec.edge_scale, "repeats": 1,
                    "batch_sizes": (40, 80), "algorithms": ("BFS", "SSSP")}
        return {}
    if experiment == "figure8":
        if name == "ci":
            return {"spec": spec, "snapshot_counts": (4, 8),
                    "algorithms": ("BFS", "SSSP")}
        return {}
    if experiment == "figure9":
        if name == "ci":
            return {"spec": spec, "sweep": ((40, 8), (80, 4)),
                    "algorithms": ("BFS", "SSSP")}
        return {}
    if experiment == "figure10":
        if name == "ci":
            return {"spec": spec, "ratios": ((60, 20), (20, 60)),
                    "algorithms": ("BFS", "SSSP")}
        return {}
    if experiment in ("table4", "table5", "figure11"):
        if name == "ci":
            extra: Dict[str, object] = {"spec": spec}
            if experiment != "figure11":
                extra["datasets"] = ("LJ",)
            extra["algorithms"] = ("BFS", "SSSP")
            return extra
        return {}
    if experiment == "ablation_steiner":
        return {}
    if experiment in ("ablation_overlay", "ablation_scheduler"):
        return {"spec": spec} if name == "ci" else {}
    if experiment == "ablation_batch_scale":
        if name == "ci":
            return {"spec": spec, "dataset": "LJ", "batch_sizes": (20, 60)}
        return {}
    if experiment == "ablation_storage":
        if name == "ci":
            return {"spec": spec, "datasets": ("LJ",)}
        return {}
    return {}


def run_all(
    names: Sequence[str],
    profile: str = "paper",
    stream=None,
) -> List[ExperimentResult]:
    """Run the named experiments under a profile, printing as we go."""
    if stream is None:
        stream = sys.stdout
    results = []
    for name in names:
        kwargs = profile_kwargs(profile, name)
        t0 = time.perf_counter()
        result = EXPERIMENTS[name](**kwargs)  # type: ignore[operator]
        elapsed = time.perf_counter() - t0
        print(result.render(), file=stream)
        print(f"[{name} completed in {elapsed:.1f}s]\n", file=stream)
        results.append(result)
    return results


def write_markdown(results: Sequence[ExperimentResult], path: str, profile: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# CommonGraph reproduction — measured results ({profile} profile)\n\n")
        for result in results:
            handle.write(result.to_markdown())
            handle.write("\n\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="*", default=[],
        help=f"experiments to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument("--profile", choices=sorted(PROFILES), default="paper")
    parser.add_argument("--out", default=None, help="write a Markdown report here")
    args = parser.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
    results = run_all(names, profile=args.profile)
    if args.out:
        write_markdown(results, args.out, args.profile)
        print(f"wrote {args.out}")
    return 0
