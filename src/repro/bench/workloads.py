"""Named evolving-graph workloads for the benchmark harness.

A workload = (scaled dataset, update stream, query).  The paper's
experiments fix the query source per graph; we deterministically pick a
high-out-degree vertex so queries reach a large fraction of the graph
(a low-degree source would make every strategy trivially fast and the
comparison meaningless).

Two profiles control scale:

* ``paper`` — the default: datasets at their DESIGN.md scale (~1/1000
  of the originals), 50 snapshots, 75-update batches; mirrors §5.
* ``ci`` — a fast profile for the pytest-benchmark suite and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.errors import ReproError
from repro.evolving.generator import generate_evolving_graph
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.csr import CSRGraph
from repro.graph.generators import DATASETS, generate_dataset
from repro.graph.weights import WeightFn, default_weights

__all__ = ["WorkloadSpec", "Workload", "PROFILES", "build_workload", "pick_source"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters defining one evolving-graph workload."""

    dataset: str = "LJ"
    num_snapshots: int = 50
    batch_size: int = 75
    add_fraction: float = 0.5
    readd_fraction: float = 0.5
    edge_scale: float = 1.0
    seed: int = 0

    def scaled(self, **overrides: object) -> "WorkloadSpec":
        """Copy with fields replaced."""
        return replace(self, **overrides)


#: Named parameter profiles (see module docstring).
PROFILES: Dict[str, WorkloadSpec] = {
    "paper": WorkloadSpec(num_snapshots=50, batch_size=75, edge_scale=1.0),
    "ci": WorkloadSpec(num_snapshots=10, batch_size=40, edge_scale=0.1),
}


def pick_source(edges_csr: CSRGraph) -> int:
    """Deterministic query source: the maximum out-degree vertex."""
    degrees = edges_csr.degrees()
    return int(np.argmax(degrees))


@dataclass
class Workload:
    """A materialised workload: evolving graph + query configuration."""

    spec: WorkloadSpec
    evolving: EvolvingGraph
    source: int
    weight_fn: WeightFn

    @property
    def num_vertices(self) -> int:
        return self.evolving.num_vertices


def build_workload(
    spec: WorkloadSpec, weight_fn: Optional[WeightFn] = None
) -> Workload:
    """Generate the evolving graph and query source for a spec."""
    if spec.dataset not in DATASETS:
        raise ReproError(
            f"unknown dataset {spec.dataset!r}; available: {sorted(DATASETS)}"
        )
    dataset = DATASETS[spec.dataset]
    base = generate_dataset(spec.dataset, edge_scale=spec.edge_scale)
    num_vertices = dataset.num_vertices
    base_csr = CSRGraph.from_edge_set(base, num_vertices)
    source = pick_source(base_csr)
    evolving = generate_evolving_graph(
        num_vertices=num_vertices,
        base=base,
        num_snapshots=spec.num_snapshots,
        batch_size=spec.batch_size,
        add_fraction=spec.add_fraction,
        readd_fraction=spec.readd_fraction,
        seed=spec.seed,
        name=spec.dataset,
        protect_vertex=source,
    )
    return Workload(
        spec=spec,
        evolving=evolving,
        source=source,
        weight_fn=weight_fn if weight_fn is not None else default_weights(),
    )
