"""Benchmark harness: workloads, experiment drivers, reporting."""

from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    ablation_overlay,
    ablation_scheduler,
    ablation_steiner,
    figure1,
    figure8,
    figure9,
    figure10,
    figure11,
    run_experiment,
    table4,
    table5,
)
from repro.bench.reporting import (
    format_seconds,
    format_speedup,
    render_markdown_table,
    render_table,
)
from repro.bench.workloads import (
    PROFILES,
    Workload,
    WorkloadSpec,
    build_workload,
    pick_source,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "figure1",
    "table4",
    "figure8",
    "figure9",
    "figure10",
    "table5",
    "figure11",
    "ablation_steiner",
    "ablation_overlay",
    "ablation_scheduler",
    "WorkloadSpec",
    "Workload",
    "PROFILES",
    "build_workload",
    "pick_source",
    "render_table",
    "render_markdown_table",
    "format_seconds",
    "format_speedup",
]
