"""Experiment drivers reproducing every table and figure of §5.

Each public function regenerates one artefact of the paper's evaluation
and returns an :class:`ExperimentResult` whose rows mirror the rows or
series of that table/figure.  Absolute times differ from the paper (our
substrate is a NumPy engine on scaled datasets, not C++ on a 56-core
Xeon); the *shapes* — who wins, by what rough factor, where crossovers
fall — are the reproduction target (see EXPERIMENTS.md).

Index:

========================  ====================================================
Function                  Paper artefact
========================  ====================================================
``figure1``               Fig 1 — deletion vs addition cost (compute + mutation)
``table4``                Table 4 — KS time, Direct-Hop / Work-Sharing speedups
``figure8``               Fig 8 — time vs number of snapshots
``figure9``               Fig 9 — fixed total updates, batch size vs snapshots
``figure10``              Fig 10 — sensitivity to addition:deletion ratio
``table5``                Table 5 — parallel Direct-Hop projection
``figure11``              Fig 11 — execution-time breakdown
``ablation_steiner``      design ablation: schedule construction strategies
``ablation_overlay``      design ablation: overlay vs rebuild representation
``ablation_scheduler``    design ablation: sync vs async vs auto engine modes
========================  ====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.registry import get_algorithm
from repro.bench.reporting import render_chart, render_markdown_table, render_table
from repro.bench.workloads import Workload, WorkloadSpec, build_workload
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.core.parallel import ParallelDirectHop
from repro.core.steiner import (
    agglomerative_schedule,
    direct_hop_tree,
    exact_steiner,
    greedy_steiner,
)
from repro.core.triangular_grid import TriangularGrid
from repro.evolving.generator import UpdateStreamGenerator
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.csr import CSRGraph
from repro.graph.mutable import MutableGraph
from repro.kickstarter.deletion import trim_and_repair
from repro.kickstarter.engine import incremental_additions, static_compute
from repro.kickstarter.streaming import StreamingSession

__all__ = [
    "ExperimentResult",
    "figure1",
    "table4",
    "figure8",
    "figure9",
    "figure10",
    "table5",
    "figure11",
    "ablation_steiner",
    "ablation_overlay",
    "ablation_scheduler",
    "ablation_batch_scale",
    "ablation_storage",
    "EXPERIMENTS",
    "run_experiment",
]

DEFAULT_ALGORITHMS = ("BFS", "SSSP", "SSWP", "SSNP", "Viterbi")
SCALABILITY_ALGORITHMS = ("BFS", "SSSP", "SSWP", "SSNP")


@dataclass
class ExperimentResult:
    """Uniform result shape: a titled table plus free-form notes."""

    name: str
    title: str
    headers: List[str]
    rows: List[List[object]] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    #: Pre-rendered ASCII charts (populated by the figure drivers).
    charts: List[str] = field(default_factory=list)

    def render(self) -> str:
        text = render_table(self.headers, self.rows, title=self.title)
        if self.charts:
            text += "\n\n" + "\n\n".join(self.charts)
        if self.notes:
            text += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return text

    def to_markdown(self) -> str:
        parts = [f"### {self.title}", ""]
        if self.params:
            settings = ", ".join(f"{k}={v}" for k, v in self.params.items())
            parts.append(f"*Parameters:* {settings}")
            parts.append("")
        parts.append(render_markdown_table(self.headers, self.rows))
        for chart in self.charts:
            parts.append("")
            parts.append("```")
            parts.append(chart)
            parts.append("```")
        if self.notes:
            parts.append("")
            parts.extend(f"> {n}" for n in self.notes)
        return "\n".join(parts)

    def column(self, header: str) -> List[object]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _truncated(evolving: EvolvingGraph, num_snapshots: int) -> EvolvingGraph:
    """Prefix of an evolving graph with ``num_snapshots`` snapshots."""
    return EvolvingGraph(
        evolving.num_vertices,
        evolving.snapshot_edges(0),
        evolving.batches[: num_snapshots - 1],
        name=evolving.name,
    )


def _attach_line_charts(
    result: ExperimentResult,
    group_header: str,
    x_header: str,
    series_headers: Sequence[str],
    y_label: str = "seconds",
) -> None:
    """Render one ASCII chart per group value (e.g. per algorithm)."""
    groups = []
    for value in result.column(group_header):
        if value not in groups:
            groups.append(value)
    for group in groups:
        rows = [
            dict(zip(result.headers, row))
            for row in result.rows
            if row[result.headers.index(group_header)] == group
        ]
        x_values = [float(r[x_header]) for r in rows]
        series = {h: [float(r[h]) for r in rows] for h in series_headers}
        result.charts.append(render_chart(
            x_values, series,
            title=f"{result.name} — {group}",
            y_label=y_label, x_label=x_header,
        ))


def _run_kickstarter(workload: Workload, algorithm: str) -> float:
    session = StreamingSession(
        workload.evolving,
        get_algorithm(algorithm),
        workload.source,
        weight_fn=workload.weight_fn,
        keep_values=False,
    )
    return session.run().work_seconds


def _run_direct_hop(
    workload: Workload, algorithm: str, decomp: CommonGraphDecomposition
):
    evaluator = DirectHopEvaluator(
        decomp, get_algorithm(algorithm), workload.source, weight_fn=workload.weight_fn
    )
    return evaluator.run(keep_values=False)


def _run_work_sharing(
    workload: Workload, algorithm: str, decomp: CommonGraphDecomposition
):
    evaluator = WorkSharingEvaluator(
        decomp, get_algorithm(algorithm), workload.source, weight_fn=workload.weight_fn
    )
    return evaluator.run(keep_values=False)


# ---------------------------------------------------------------------------
# Figure 1 — deletion vs addition costs
# ---------------------------------------------------------------------------

def figure1(
    dataset: str = "LJ",
    batch_sizes: Sequence[int] = (75, 150, 225, 300, 375),
    algorithms: Sequence[str] = SCALABILITY_ALGORITHMS,
    edge_scale: float = 1.0,
    repeats: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    """Fig 1: incremental computation and mutation, additions vs deletions.

    For each batch size we converge the query, then measure separately
    (a) mutating + incrementally processing a batch of additions, and
    (b) the same for an equal-sized batch of deletions.
    """
    result = ExperimentResult(
        name="figure1",
        title=f"Figure 1 — incremental & mutation cost, additions vs deletions ({dataset})",
        headers=[
            "algorithm", "batch", "incr_add_s", "incr_del_s", "del/add",
            "mut_add_s", "mut_del_s", "mut del/add",
        ],
        params={
            "dataset": dataset, "edge_scale": edge_scale,
            "batch_sizes": tuple(batch_sizes), "repeats": repeats,
        },
    )
    spec = WorkloadSpec(
        dataset=dataset, num_snapshots=2, batch_size=max(batch_sizes),
        edge_scale=edge_scale, seed=seed,
    )
    workload = build_workload(spec)
    base_edges = workload.evolving.snapshot_edges(0)

    for algorithm in algorithms:
        alg = get_algorithm(algorithm)
        for batch_size in batch_sizes:
            incr_add = incr_del = mut_add = mut_del = 0.0
            for rep in range(repeats):
                gen = UpdateStreamGenerator(
                    workload.num_vertices, base_edges, batch_size,
                    add_fraction=1.0, seed=seed + 101 * rep,
                    protect_vertex=workload.source,
                )
                additions = gen.next_batch().additions
                gen = UpdateStreamGenerator(
                    workload.num_vertices, base_edges, batch_size,
                    add_fraction=0.0, seed=seed + 101 * rep,
                    protect_vertex=workload.source,
                )
                deletions = gen.next_batch().deletions

                # additions: mutate, then propagate
                graph = MutableGraph.from_edge_set(
                    base_edges, workload.num_vertices, weight_fn=workload.weight_fn
                )
                state = static_compute(graph, alg, workload.source, track_parents=True)
                t0 = time.perf_counter()
                graph.add_batch(additions)
                t1 = time.perf_counter()
                src, dst = additions.arrays()
                incremental_additions(
                    graph, alg, state, src, dst, workload.weight_fn(src, dst)
                )
                t2 = time.perf_counter()
                mut_add += t1 - t0
                incr_add += t2 - t1

                # deletions: mutate, then trim-and-repair
                graph = MutableGraph.from_edge_set(
                    base_edges, workload.num_vertices, weight_fn=workload.weight_fn
                )
                state = static_compute(graph, alg, workload.source, track_parents=True)
                del_src, del_dst = deletions.arrays()
                del_weights = workload.weight_fn(del_src, del_dst)
                t0 = time.perf_counter()
                graph.delete_batch(deletions)
                t1 = time.perf_counter()
                trim_and_repair(
                    graph, alg, state, deletions, deleted_weights=del_weights
                )
                t2 = time.perf_counter()
                mut_del += t1 - t0
                incr_del += t2 - t1
            incr_add /= repeats
            incr_del /= repeats
            mut_add /= repeats
            mut_del /= repeats
            result.rows.append([
                algorithm, batch_size,
                round(incr_add, 6), round(incr_del, 6),
                round(incr_del / incr_add, 2) if incr_add > 0 else float("inf"),
                round(mut_add, 6), round(mut_del, 6),
                round(mut_del / mut_add, 2) if mut_add > 0 else float("inf"),
            ])
    _attach_line_charts(
        result, "algorithm", "batch",
        ("incr_add_s", "incr_del_s", "mut_add_s", "mut_del_s"),
    )
    result.notes.append(
        "paper shape: deletions ~3x additions for incremental computation; "
        "mutation cost several times higher for deletions"
    )
    return result


# ---------------------------------------------------------------------------
# Table 4 — headline comparison
# ---------------------------------------------------------------------------

def table4(
    datasets: Sequence[str] = ("LJ", "DL", "WEN", "TTW"),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Table 4: KickStarter time; Direct-Hop and Work-Sharing speedups."""
    base_spec = spec if spec is not None else WorkloadSpec()
    result = ExperimentResult(
        name="table4",
        title="Table 4 — execution time and speedups over KickStarter "
        f"({base_spec.num_snapshots} snapshots, batch {base_spec.batch_size})",
        headers=[
            "graph", "algorithm", "kickstarter_s",
            "direct_hop_s", "dh_speedup", "work_sharing_s", "ws_speedup",
            "dh_additions", "ws_additions",
        ],
        params={
            "num_snapshots": base_spec.num_snapshots,
            "batch_size": base_spec.batch_size,
            "edge_scale": base_spec.edge_scale,
        },
    )
    for dataset in datasets:
        workload = build_workload(base_spec.scaled(dataset=dataset))
        decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
        for algorithm in algorithms:
            ks = _run_kickstarter(workload, algorithm)
            dh_result = _run_direct_hop(workload, algorithm, decomp)
            ws_result = _run_work_sharing(workload, algorithm, decomp)
            dh, ws = dh_result.work_seconds, ws_result.work_seconds
            result.rows.append([
                dataset, algorithm, round(ks, 4),
                round(dh, 4), round(ks / dh, 2),
                round(ws, 4), round(ks / ws, 2),
                dh_result.additions_processed, ws_result.additions_processed,
            ])
    result.notes.append(
        "paper shape: Direct-Hop 1.02x-7.91x over KickStarter; "
        "Work-Sharing 1.38x-8.17x"
    )
    result.notes.append(
        "the additions columns are the scale-free work metric: "
        "work-sharing streams strictly fewer additions than direct-hop"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 8 — scalability in the number of snapshots
# ---------------------------------------------------------------------------

def figure8(
    dataset: str = "TTW",
    algorithms: Sequence[str] = SCALABILITY_ALGORITHMS,
    snapshot_counts: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50),
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Fig 8: execution time versus number of snapshots (fixed batch)."""
    base_spec = (spec if spec is not None else WorkloadSpec()).scaled(
        dataset=dataset, num_snapshots=max(snapshot_counts)
    )
    result = ExperimentResult(
        name="figure8",
        title=f"Figure 8 — time vs number of snapshots ({dataset}, "
        f"batch {base_spec.batch_size})",
        headers=[
            "algorithm", "snapshots", "kickstarter_s", "direct_hop_s",
            "work_sharing_s", "dh_additions", "ws_additions",
        ],
        params={"dataset": dataset, "batch_size": base_spec.batch_size,
                "edge_scale": base_spec.edge_scale},
    )
    full = build_workload(base_spec)
    for count in snapshot_counts:
        truncated = _truncated(full.evolving, count)
        workload = Workload(
            spec=base_spec.scaled(num_snapshots=count),
            evolving=truncated,
            source=full.source,
            weight_fn=full.weight_fn,
        )
        decomp = CommonGraphDecomposition.from_evolving(truncated)
        for algorithm in algorithms:
            ks = _run_kickstarter(workload, algorithm)
            dh_result = _run_direct_hop(workload, algorithm, decomp)
            ws_result = _run_work_sharing(workload, algorithm, decomp)
            result.rows.append([
                algorithm, count, round(ks, 4),
                round(dh_result.work_seconds, 4),
                round(ws_result.work_seconds, 4),
                dh_result.additions_processed, ws_result.additions_processed,
            ])
    _attach_line_charts(
        result, "algorithm", "snapshots",
        ("kickstarter_s", "direct_hop_s", "work_sharing_s"),
    )
    result.notes.append(
        "paper shape: all three scale linearly; work-sharing overtakes "
        "direct-hop beyond ~23-35 snapshots"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 9 — fixed total updates, batch size vs snapshot count
# ---------------------------------------------------------------------------

def figure9(
    dataset: str = "TTW",
    algorithms: Sequence[str] = SCALABILITY_ALGORITHMS,
    sweep: Sequence[Tuple[int, int]] = (
        (75, 50), (94, 40), (125, 30), (188, 20), (375, 10),
    ),
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Fig 9: trade batch size against snapshot count, total updates fixed."""
    base_spec = spec if spec is not None else WorkloadSpec()
    result = ExperimentResult(
        name="figure9",
        title=f"Figure 9 — batch size vs snapshots, fixed total updates ({dataset})",
        headers=[
            "algorithm", "batch", "snapshots", "kickstarter_s",
            "direct_hop_s", "work_sharing_s",
        ],
        params={"dataset": dataset, "sweep": tuple(sweep),
                "edge_scale": base_spec.edge_scale},
    )
    for batch_size, count in sweep:
        workload = build_workload(
            base_spec.scaled(
                dataset=dataset, batch_size=batch_size, num_snapshots=count
            )
        )
        decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
        for algorithm in algorithms:
            ks = _run_kickstarter(workload, algorithm)
            dh = _run_direct_hop(workload, algorithm, decomp).work_seconds
            ws = _run_work_sharing(workload, algorithm, decomp).work_seconds
            result.rows.append(
                [algorithm, batch_size, count, round(ks, 4), round(dh, 4), round(ws, 4)]
            )
    _attach_line_charts(
        result, "algorithm", "batch",
        ("kickstarter_s", "direct_hop_s", "work_sharing_s"),
    )
    result.notes.append(
        "paper shape: direct-hop wins at large batches / few snapshots; "
        "work-sharing wins at small batches / many snapshots"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 10 — sensitivity to the addition:deletion ratio
# ---------------------------------------------------------------------------

def figure10(
    dataset: str = "TTW",
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    ratios: Sequence[Tuple[int, int]] = ((150, 50), (100, 100), (50, 150)),
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Fig 10: Direct-Hop speedup as the deletion share grows."""
    base_spec = spec if spec is not None else WorkloadSpec()
    result = ExperimentResult(
        name="figure10",
        title=f"Figure 10 — speedup vs addition:deletion ratio ({dataset})",
        headers=["algorithm", "adds/batch", "dels/batch", "dh_speedup", "ws_speedup"],
        params={"dataset": dataset, "ratios": tuple(ratios),
                "num_snapshots": base_spec.num_snapshots,
                "edge_scale": base_spec.edge_scale},
    )
    for adds, dels in ratios:
        batch_size = adds + dels
        workload = build_workload(
            base_spec.scaled(
                dataset=dataset,
                batch_size=batch_size,
                add_fraction=adds / batch_size,
            )
        )
        decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
        for algorithm in algorithms:
            ks = _run_kickstarter(workload, algorithm)
            dh = _run_direct_hop(workload, algorithm, decomp).work_seconds
            ws = _run_work_sharing(workload, algorithm, decomp).work_seconds
            result.rows.append(
                [algorithm, adds, dels, round(ks / dh, 2), round(ks / ws, 2)]
            )
    _attach_line_charts(
        result, "algorithm", "dels/batch",
        ("dh_speedup", "ws_speedup"), y_label="speedup",
    )
    result.notes.append(
        "paper shape: the more deletions, the larger Direct-Hop's speedup "
        "over KickStarter"
    )
    return result


# ---------------------------------------------------------------------------
# Table 5 — parallel Direct-Hop projection
# ---------------------------------------------------------------------------

def table5(
    datasets: Sequence[str] = ("LJ", "DL", "WEN", "TTW"),
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    spec: Optional[WorkloadSpec] = None,
    use_pool: bool = False,
) -> ExperimentResult:
    """Table 5: longest single hop vs sequential KickStarter.

    As in the paper, the parallel time is the critical-path estimate —
    the slowest of the independent hops ("given a system with
    sufficient cores").  ``use_pool=True`` additionally executes the
    hops on a thread pool and reports the wall time.
    """
    base_spec = spec if spec is not None else WorkloadSpec()
    headers = ["graph", "algorithm", "kickstarter_s", "longest_hop_s", "speedup"]
    if use_pool:
        headers.append("pool_wall_s")
    result = ExperimentResult(
        name="table5",
        title="Table 5 — parallel Direct-Hop (critical-path projection)",
        headers=headers,
        params={"num_snapshots": base_spec.num_snapshots,
                "batch_size": base_spec.batch_size,
                "edge_scale": base_spec.edge_scale},
    )
    for dataset in datasets:
        workload = build_workload(base_spec.scaled(dataset=dataset))
        decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
        for algorithm in algorithms:
            ks = _run_kickstarter(workload, algorithm)
            parallel = ParallelDirectHop(
                decomp, get_algorithm(algorithm), workload.source,
                weight_fn=workload.weight_fn,
            ).run(use_pool=use_pool)
            longest = parallel.critical_path_seconds
            row = [
                dataset, algorithm, round(ks, 4), round(longest, 5),
                round(ks / longest, 1) if longest > 0 else float("inf"),
            ]
            if use_pool:
                row.append(round(parallel.pool_wall_seconds, 4))
            result.rows.append(row)
    result.notes.append(
        "paper shape: one to two orders of magnitude over sequential "
        "KickStarter (their Table 5: 51x-396x)"
    )
    return result


# ---------------------------------------------------------------------------
# Figure 11 — execution-time breakdown
# ---------------------------------------------------------------------------

def figure11(
    dataset: str = "TTW",
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Fig 11: per-phase breakdown, KickStarter vs CommonGraph."""
    base_spec = spec if spec is not None else WorkloadSpec()
    result = ExperimentResult(
        name="figure11",
        title=f"Figure 11 — execution-time breakdown ({dataset})",
        headers=[
            "algorithm", "system", "incr_add_s", "incr_del_s",
            "mut_add_s", "mut_del_s", "initial_s",
        ],
        params={"dataset": dataset,
                "num_snapshots": base_spec.num_snapshots,
                "batch_size": base_spec.batch_size,
                "edge_scale": base_spec.edge_scale},
    )
    workload = build_workload(base_spec.scaled(dataset=dataset))
    decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
    for algorithm in algorithms:
        session = StreamingSession(
            workload.evolving, get_algorithm(algorithm), workload.source,
            weight_fn=workload.weight_fn, keep_values=False,
        )
        ks = session.run().timer
        result.rows.append([
            algorithm, "KS",
            round(ks.seconds("incremental_add"), 4),
            round(ks.seconds("incremental_del"), 4),
            round(ks.seconds("mutation_add"), 4),
            round(ks.seconds("mutation_del"), 4),
            round(ks.seconds("initial_compute"), 4),
        ])
        ws = WorkSharingEvaluator(
            decomp, get_algorithm(algorithm), workload.source,
            weight_fn=workload.weight_fn,
        ).run(keep_values=False).timer
        result.rows.append([
            algorithm, "CG",
            round(ws.seconds("incremental_add"), 4),
            0.0, 0.0, 0.0,
            round(ws.seconds("initial_compute"), 4),
        ])
    result.notes.append(
        "paper shape: CommonGraph eliminates both mutation components and "
        "incremental deletions entirely"
    )
    return result


# ---------------------------------------------------------------------------
# Design ablations (DESIGN.md §5)
# ---------------------------------------------------------------------------

def ablation_steiner(
    dataset: str = "LJ",
    num_snapshots: int = 5,
    batch_size: int = 75,
    edge_scale: float = 0.25,
    seed: int = 0,
) -> ExperimentResult:
    """Schedule-construction ablation: direct-hop vs greedy vs exact.

    Costs are in additions (the paper's schedule metric); exact search
    is exponential, hence the small snapshot count.
    """
    workload = build_workload(WorkloadSpec(
        dataset=dataset, num_snapshots=num_snapshots, batch_size=batch_size,
        edge_scale=edge_scale, seed=seed,
    ))
    decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
    grid = TriangularGrid(decomp)
    result = ExperimentResult(
        name="ablation_steiner",
        title="Ablation — schedule construction (cost in additions)",
        headers=["strategy", "cost_additions", "stabilisations"],
        params={"dataset": dataset, "num_snapshots": num_snapshots,
                "batch_size": batch_size},
    )
    star = direct_hop_tree(grid)
    greedy_raw = greedy_steiner(grid, compress=False)
    greedy = greedy_steiner(grid, compress=True)
    agglomerative = agglomerative_schedule(grid)
    exact = exact_steiner(grid)
    for label, tree in (
        ("direct-hop", star),
        ("greedy (no bypass)", greedy_raw),
        ("greedy + bypass", greedy),
        ("agglomerative", agglomerative),
        ("exact + bypass", exact),
    ):
        result.rows.append([label, tree.cost(grid), tree.num_stabilisations()])
    return result


def ablation_overlay(
    dataset: str = "LJ",
    algorithm: str = "SSSP",
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Representation ablation: Δ-CSR overlay vs rebuilding each snapshot.

    Both run the same Direct-Hop schedule; "rebuild" materialises every
    snapshot's full CSR (the mutation-style cost the overlay avoids).
    """
    base_spec = spec if spec is not None else WorkloadSpec()
    workload = build_workload(base_spec.scaled(dataset=dataset))
    decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
    alg = get_algorithm(algorithm)

    overlay_result = DirectHopEvaluator(
        decomp, alg, workload.source, weight_fn=workload.weight_fn
    ).run(keep_values=False)

    # Rebuild variant: converge on Gc, then per snapshot rebuild the full
    # CSR before the incremental pass.
    t0 = time.perf_counter()
    base_csr = decomp.common_csr(workload.weight_fn)
    base_state = static_compute(base_csr, alg, workload.source)
    for index in range(decomp.num_snapshots):
        edges = decomp.snapshot_edges(index)
        full_csr = CSRGraph.from_edge_set(
            edges, decomp.num_vertices, weight_fn=workload.weight_fn
        )
        state = base_state.copy()
        batch = decomp.direct_hop_batch(index)
        src, dst = batch.arrays()
        incremental_additions(
            full_csr, alg, state, src, dst, workload.weight_fn(src, dst)
        )
    rebuild_seconds = time.perf_counter() - t0

    result = ExperimentResult(
        name="ablation_overlay",
        title=f"Ablation — overlay vs rebuild representation ({dataset}, {algorithm})",
        headers=["representation", "seconds"],
        params={"dataset": dataset, "algorithm": algorithm,
                "num_snapshots": base_spec.num_snapshots},
    )
    result.rows.append(["delta-CSR overlay", round(overlay_result.total_seconds, 4)])
    result.rows.append(["rebuild full CSR", round(rebuild_seconds, 4)])
    return result


def ablation_scheduler(
    dataset: str = "LJ",
    algorithm: str = "SSSP",
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Engine-mode ablation: sync vs async vs auto (§4.3 policy)."""
    base_spec = spec if spec is not None else WorkloadSpec()
    workload = build_workload(base_spec.scaled(dataset=dataset))
    decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
    result = ExperimentResult(
        name="ablation_scheduler",
        title=f"Ablation — engine scheduling mode ({dataset}, {algorithm})",
        headers=["mode", "direct_hop_s"],
        params={"dataset": dataset, "algorithm": algorithm,
                "num_snapshots": base_spec.num_snapshots,
                "batch_size": base_spec.batch_size},
    )
    for mode in ("sync", "async", "auto"):
        seconds = DirectHopEvaluator(
            decomp, get_algorithm(algorithm), workload.source,
            weight_fn=workload.weight_fn, mode=mode,
        ).run(keep_values=False).total_seconds
        result.rows.append([mode, round(seconds, 4)])
    return result


def ablation_batch_scale(
    dataset: str = "TTW",
    algorithm: str = "SSSP",
    batch_sizes: Sequence[int] = (75, 250, 750),
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Scale ablation: how batch size shifts the time ordering.

    At the faithful 1/1000 update scaling (batch 75) the per-batch
    interpreter overhead dominates and Direct-Hop's fewer
    stabilisations win on wall clock even though Work-Sharing streams
    fewer additions; as batches grow the per-addition work dominates
    and the orderings converge to the paper's work-dominated regime.
    """
    base_spec = spec if spec is not None else WorkloadSpec()
    result = ExperimentResult(
        name="ablation_batch_scale",
        title=f"Ablation — batch-size scaling ({dataset}, {algorithm})",
        headers=[
            "batch", "kickstarter_s", "direct_hop_s", "work_sharing_s",
            "dh_additions", "ws_additions",
        ],
        params={"dataset": dataset, "algorithm": algorithm,
                "num_snapshots": base_spec.num_snapshots},
    )
    for batch_size in batch_sizes:
        workload = build_workload(
            base_spec.scaled(dataset=dataset, batch_size=batch_size)
        )
        decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
        ks = _run_kickstarter(workload, algorithm)
        dh = _run_direct_hop(workload, algorithm, decomp)
        ws = _run_work_sharing(workload, algorithm, decomp)
        result.rows.append([
            batch_size, round(ks, 4), round(dh.work_seconds, 4),
            round(ws.work_seconds, 4),
            dh.additions_processed, ws.additions_processed,
        ])
    return result


def ablation_storage(
    datasets: Sequence[str] = ("LJ", "DL", "WEN", "TTW"),
    spec: Optional[WorkloadSpec] = None,
) -> ExperimentResult:
    """Storage ablation: the §4.1 space claim, quantified.

    Compares edges (and bytes) stored by (a) one full CSR per snapshot,
    (b) the common graph plus per-snapshot surplus CSRs, and (c) the
    common graph plus the Work-Sharing schedule's batch CSRs (shared
    batches stored once).
    """
    base_spec = spec if spec is not None else WorkloadSpec()
    result = ExperimentResult(
        name="ablation_storage",
        title="Ablation — snapshot storage (edges stored)",
        headers=[
            "graph", "per-snapshot CSRs", "common+surpluses",
            "common+schedule batches", "saving",
        ],
        params={"num_snapshots": base_spec.num_snapshots,
                "batch_size": base_spec.batch_size,
                "edge_scale": base_spec.edge_scale},
    )
    for dataset in datasets:
        workload = build_workload(base_spec.scaled(dataset=dataset))
        decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
        grid = TriangularGrid(decomp)
        schedule = greedy_steiner(grid)
        naive = decomp.snapshot_storage_edges()
        direct = decomp.storage_edges()
        shared = len(decomp.common) + schedule.cost(grid)
        result.rows.append([
            dataset, naive, direct, shared, f"{naive / shared:.1f}x",
        ])
    result.notes.append(
        "§4.1: 'the representation is space optimal as each edge in the "
        "system only gets represented once'"
    )
    return result


#: Registry used by the CLI harness.
EXPERIMENTS = {
    "figure1": figure1,
    "table4": table4,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "table5": table5,
    "figure11": figure11,
    "ablation_steiner": ablation_steiner,
    "ablation_overlay": ablation_overlay,
    "ablation_scheduler": ablation_scheduler,
    "ablation_batch_scale": ablation_batch_scale,
    "ablation_storage": ablation_storage,
}


def run_experiment(name: str, **kwargs: object) -> ExperimentResult:
    """Run a registered experiment by name."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)  # type: ignore[operator]
