"""Plain-text and Markdown rendering for experiment results.

Besides tables, :func:`render_chart` draws multi-series ASCII line
charts so the harness can render the paper's *figures* as figures, not
just as rows of numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = [
    "render_table",
    "render_markdown_table",
    "render_chart",
    "format_seconds",
    "format_speedup",
]


def format_seconds(value: float) -> str:
    """Human-scale seconds (μs/ms/s as appropriate)."""
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def format_speedup(value: float) -> str:
    return f"{value:.2f}x"


def _stringify(rows: Sequence[Sequence[object]]) -> List[List[str]]:
    return [[str(cell) for cell in row] for row in rows]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width ASCII table."""
    str_rows = _stringify(rows)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 64,
    height: int = 14,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Multi-series ASCII line chart.

    Each series gets a marker character; overlapping points show the
    later series' marker.  The y-axis starts at zero (the paper's
    figures do), the x-axis spans the data.
    """
    markers = "*o+x#@%&"
    points = [v for values in series.values() for v in values]
    if not points or not x_values:
        return f"{title}\n(no data)"
    y_max = max(points) or 1.0
    x_min, x_max = min(x_values), max(x_values)
    x_span = (x_max - x_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for k, (name, values) in enumerate(series.items()):
        marker = markers[k % len(markers)]
        for x, y in zip(x_values, values):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round(y / y_max * (height - 1)))
            grid[min(max(row, 0), height - 1)][min(max(col, 0), width - 1)] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}"
    for r, row in enumerate(grid):
        prefix = top_label.rjust(8) if r == 0 else ("0".rjust(8) if r == height - 1 else " " * 8)
        lines.append(f"{prefix} |{''.join(row)}|")
    lines.append(" " * 8 + "+" + "-" * width + "+")
    lines.append(
        " " * 9 + f"{x_min:g}".ljust(width - len(f"{x_max:g}")) + f"{x_max:g}"
    )
    legend = "   ".join(
        f"{markers[k % len(markers)]} {name}" for k, name in enumerate(series)
    )
    axis_note = ""
    if y_label or x_label:
        axis_note = f"   [{y_label or 'y'} vs {x_label or 'x'}]"
    lines.append(" " * 9 + legend + axis_note)
    return "\n".join(lines)


def render_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """GitHub-flavoured Markdown table."""
    str_rows = _stringify(rows)
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
