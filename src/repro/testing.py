"""Public testing utilities.

Downstream users writing custom :class:`~repro.MonotonicAlgorithm`
subclasses (or alternative engines) need a trustworthy oracle to test
against.  This module exposes the same one the package's own test suite
uses: a deliberately naive full-sweep fixpoint engine that is obviously
correct for monotonic algorithms, plus assertion helpers.

Example::

    from repro.testing import reference_compute_edgeset, assert_values_equal

    got = repro.static_compute(csr, MyAlgorithm(), source).values
    want = reference_compute_edgeset(edges, n, MyAlgorithm(), source, weight_fn)
    assert_values_equal(got, want, "MyAlgorithm")

It also re-exports the deterministic fault-injection harness
(:mod:`repro.faults`), so robustness tests against crashes, corruption
and task failure read naturally::

    from repro.testing import FaultPlan, fault_injection

    plan = FaultPlan(seed=3).fail_io(match="write:manifest.json", times=99)
    with fault_injection(plan):
        ...  # store.append "crashes" mid-write
    assert_recovers_clean(store.directory)

And the observability teardown: the :mod:`repro.obs` runtime is
process-global, so tests that :func:`repro.obs.configure` it must call
:func:`reset_observability` afterwards (a fixture finalizer is the
natural place).  :class:`~repro.obs.clock.FakeClock` is re-exported for
deterministic span durations.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Tuple, Union

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.faults import FaultPlan, InjectedFault, active_plan, corrupt_bytes
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import WeightFn
from repro.obs.clock import FakeClock

__all__ = [
    "reference_compute",
    "reference_compute_edgeset",
    "assert_values_equal",
    "assert_monotonic",
    # fault-injection harness
    "FaultPlan",
    "InjectedFault",
    "fault_injection",
    "corrupt_bytes",
    "assert_recovers_clean",
    # observability
    "FakeClock",
    "reset_observability",
]

#: Context manager activating a :class:`FaultPlan` for a scope.
fault_injection = active_plan


def reset_observability() -> None:
    """Tear the process-global observability runtime down (for tests).

    Disables the :mod:`repro.obs` runtime installed by
    :func:`repro.obs.configure` and clears every registered profiler
    hook, so one test's instrumentation cannot leak into the next.
    """
    from repro import obs

    obs.reset()


def reference_compute(
    edges: Iterable[Tuple[int, int, float]],
    num_vertices: int,
    alg: MonotonicAlgorithm,
    source: int,
) -> np.ndarray:
    """Ground-truth vertex values by naive fixpoint iteration.

    Bellman-Ford-style sweeps over the full edge list until no value
    changes.  Exponentially dumber than the real engines and exact for
    exactly that reason.
    """
    values = [alg.worst] * num_vertices
    values[source] = alg.source_value
    edge_list: List[Tuple[int, int, float]] = list(edges)
    changed = True
    while changed:
        changed = False
        for u, v, w in edge_list:
            proposal = float(
                alg.proposals(np.asarray([values[u]]), np.asarray([w]))[0]
            )
            if bool(alg.better(np.asarray([proposal]), np.asarray([values[v]]))[0]):
                values[v] = proposal
                changed = True
    return np.asarray(values, dtype=np.float64)


def reference_compute_edgeset(
    edges: EdgeSet,
    num_vertices: int,
    alg: MonotonicAlgorithm,
    source: int,
    weight_fn: WeightFn,
) -> np.ndarray:
    """Reference values for an edge set with deterministic weights."""
    src, dst = edges.arrays()
    weights = weight_fn(src, dst)
    triples = zip(src.tolist(), dst.tolist(), weights.tolist())
    return reference_compute(triples, num_vertices, alg, source)


def assert_values_equal(a: np.ndarray, b: np.ndarray, context: str = "") -> None:
    """Assert two vertex-value arrays are identical, with a useful diff."""
    __tracebackhide__ = True
    if not np.array_equal(a, b):
        diff = np.flatnonzero(a != b)
        raise AssertionError(
            f"{context}: values differ at {diff[:10]} "
            f"(a={a[diff[:10]]}, b={b[diff[:10]]})"
        )


def assert_recovers_clean(directory: Union[str, Path]) -> None:
    """Assert a (possibly torn) store recovers to a verify-clean state.

    Runs :meth:`SnapshotStore.recover_store` then a deep
    :meth:`SnapshotStore.verify_store`, raising ``AssertionError`` with
    the surviving problems if recovery was insufficient.
    """
    __tracebackhide__ = True
    from repro.evolving.store import SnapshotStore

    SnapshotStore.recover_store(directory)
    report = SnapshotStore.verify_store(directory, deep=True)
    if not report.ok:
        raise AssertionError(
            f"{directory}: store not clean after recovery: {report.problems}"
        )


def assert_monotonic(
    alg: MonotonicAlgorithm,
    weights: Iterable[float] = (1.0, 2.0, 5.0, 64.0),
    probes: Iterable[float] = (0.0, 0.5, 1.0, 3.0, 10.0),
) -> None:
    """Assert the algorithm's edge function satisfies the monotonicity
    contract on a grid of probe values: a better source value never
    yields a worse proposal.

    Raises ``AssertionError`` with the violating combination otherwise.
    """
    probe_list = sorted(probes)
    for w in weights:
        for lo, hi in zip(probe_list, probe_list[1:]):
            better_in = lo if alg.direction == "min" else hi
            worse_in = hi if alg.direction == "min" else lo
            p_better = alg.proposals(np.asarray([better_in]), np.asarray([w]))
            p_worse = alg.proposals(np.asarray([worse_in]), np.asarray([w]))
            if bool(alg.better(p_worse, p_better)[0]):
                raise AssertionError(
                    f"{alg.name}: not monotonic at weight={w}: "
                    f"val {worse_in} -> proposal {p_worse[0]} beats "
                    f"val {better_in} -> proposal {p_better[0]}"
                )
