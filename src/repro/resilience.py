"""Retry, backoff and deadline primitives.

Persistent storage and parallel execution both need a uniform answer to
"this operation failed, now what?".  This module provides it:

* :class:`RetryPolicy` — how many attempts, which exceptions are
  retryable, and an exponential-backoff delay schedule;
* :class:`Deadline` — a monotonic-clock budget that can be threaded
  through nested operations;
* :func:`retry_call` / :func:`with_retries` — run a callable under a
  policy, raising :class:`~repro.errors.RetryExhaustedError` (chaining
  the final underlying exception) once the attempts are spent;
* :class:`CircuitBreaker` — a closed/open/half-open short-circuit
  around a repeatedly failing dependency, so callers stop burning
  retries against something that is down and fall back immediately.

Everything is deterministic and injectable: the sleep function and the
clock are parameters, so tests never wait on real time, and the fault
injection harness (:mod:`repro.faults`) composes naturally — an
injected fault that fires once is healed by the first retry.
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time
from dataclasses import dataclass
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from repro.obs.clock import Clock, MonotonicClock

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "Deadline",
    "retry_call",
    "retry_call_async",
    "with_retries",
]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How an operation is retried: attempts, backoff, retryable errors.

    ``max_attempts`` counts the first try, so ``max_attempts=3`` means
    "try, then retry at most twice".  The delay before retry *k*
    (1-based) is ``min(base_delay * multiplier**(k-1), max_delay)``.
    Only exceptions matching ``retry_on`` are retried; anything else
    propagates immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, retry_number: int) -> float:
        """Backoff delay before the ``retry_number``-th retry (1-based)."""
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        return min(self.base_delay * self.multiplier ** (retry_number - 1),
                   self.max_delay)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` delays)."""
        return (self.delay(k) for k in range(1, self.max_attempts))


class Deadline:
    """A wall-clock budget measured on a monotonic clock.

    ``Deadline.after(2.0)`` expires two seconds from now;
    ``Deadline.never()`` never expires.  The clock is injectable for
    deterministic tests.
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(self, seconds: Optional[float], *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def after(cls, seconds: float, *,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds, clock=clock)

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0), or ``None`` if unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(f"deadline expired before {what}")

    def __repr__(self) -> str:
        remaining = self.remaining()
        budget = "unbounded" if remaining is None else f"{remaining:.3f}s left"
        return f"Deadline({budget})"


class CircuitBreaker:
    """A closed/open/half-open short-circuit around a failing dependency.

    State machine:

    * **closed** — calls flow through; ``failure_threshold`` consecutive
      failures trip the breaker *open*;
    * **open** — :meth:`before_call` refuses immediately with
      :class:`~repro.errors.CircuitOpenError` (carrying a
      ``retry_after`` hint) until ``reset_timeout`` seconds have passed,
      then the breaker moves to *half-open*;
    * **half-open** — up to ``half_open_max_probes`` probe calls are
      admitted; one success closes the breaker, one failure re-opens it
      for another full ``reset_timeout``.

    The caller drives the machine explicitly: :meth:`before_call` at the
    top of the protected operation, then :meth:`record_success` /
    :meth:`record_failure` with the outcome (:meth:`call` packages the
    three for plain synchronous callables).  Time comes from an injected
    :class:`~repro.obs.clock.Clock`, so tests crank a
    :class:`~repro.obs.clock.FakeClock` instead of sleeping; the
    ``on_transition`` callback (invoked outside the internal lock) lets
    the service mirror transitions into metrics.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        name: str = "breaker",
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_max_probes: int = 1,
        clock: Optional[Clock] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")
        if half_open_max_probes < 1:
            raise ValueError("half_open_max_probes must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max_probes = half_open_max_probes
        self._clock: Clock = clock if clock is not None else MonotonicClock()
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED  # guarded-by: _lock
        #: Consecutive failures since the last success.
        self._failures = 0  # guarded-by: _lock
        self._opened_at = 0.0  # guarded-by: _lock
        #: Probes admitted in the current half-open window.
        self._probes = 0  # guarded-by: _lock
        #: Every transition as ``"<from>-><to>"``, oldest first.
        self._transitions: List[str] = []  # guarded-by: _lock

    # -- state machine -------------------------------------------------------
    def _transition(self, to: str) -> Tuple[str, str]:  # holds-lock: _lock
        previous, self._state = self._state, to
        self._transitions.append(f"{previous}->{to}")
        return previous, to

    def _notify(self, fired: Optional[Tuple[str, str]]) -> None:
        """Run the transition callback outside the lock (deadlock-free)."""
        if fired is not None and self._on_transition is not None:
            self._on_transition(*fired)

    def before_call(self, what: str = "call") -> None:
        """Gate one protected call; raises :class:`CircuitOpenError` if shut.

        While open, refuses until ``reset_timeout`` has elapsed, then
        flips to half-open and admits up to ``half_open_max_probes``
        probes; surplus half-open calls are refused so a thundering herd
        cannot pile onto a barely-recovering dependency.
        """
        fired: Optional[Tuple[str, str]] = None
        try:
            with self._lock:
                if self._state == self.OPEN:
                    remaining = (self.reset_timeout
                                 - (self._clock.now() - self._opened_at))
                    if remaining > 0:
                        raise CircuitOpenError(
                            f"circuit {self.name!r} is open; refusing "
                            f"{what} for another {remaining:.3f}s",
                            retry_after=remaining,
                        )
                    fired = self._transition(self.HALF_OPEN)
                    self._probes = 0
                if self._state == self.HALF_OPEN:
                    if self._probes >= self.half_open_max_probes:
                        raise CircuitOpenError(
                            f"circuit {self.name!r} is half-open and its "
                            f"probe quota is taken; refusing {what}",
                            retry_after=self.reset_timeout,
                        )
                    self._probes += 1
        finally:
            self._notify(fired)

    def record_success(self) -> None:
        """The protected call worked: half-open closes, failures reset."""
        fired: Optional[Tuple[str, str]] = None
        with self._lock:
            self._failures = 0
            if self._state == self.HALF_OPEN:
                fired = self._transition(self.CLOSED)
                self._probes = 0
        self._notify(fired)

    def record_neutral(self) -> None:
        """Neither a success nor a failure of the *dependency*.

        Client errors and expired budgets say nothing about the health
        of the protected path, but an admitted half-open probe must
        still be returned — otherwise a stream of client errors could
        wedge the breaker half-open with its probe quota taken forever.
        """
        with self._lock:
            if self._state == self.HALF_OPEN and self._probes > 0:
                self._probes -= 1

    def record_failure(self) -> None:
        """The protected call failed: count it, trip open at the threshold."""
        fired: Optional[Tuple[str, str]] = None
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._opened_at = self._clock.now()
                fired = self._transition(self.OPEN)
                self._failures = 0
                self._probes = 0
        self._notify(fired)

    def call(self, fn: Callable[..., T], *args: Any,
             what: Optional[str] = None,
             failure_on: Tuple[Type[BaseException], ...] = (Exception,),
             **kwargs: Any) -> T:
        """Run ``fn`` through the breaker (gate, record, propagate)."""
        label = what or getattr(fn, "__qualname__", repr(fn))
        self.before_call(label)
        try:
            result = fn(*args, **kwargs)
        except failure_on:
            self.record_failure()
            raise
        self.record_success()
        return result

    # -- introspection -------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            if (self._state == self.OPEN
                    and self._clock.now() - self._opened_at
                    >= self.reset_timeout):
                # Probe window reached: report half-open without waiting
                # for the next before_call to make the transition.
                return self.HALF_OPEN
            return self._state

    def retry_after(self) -> float:
        """Seconds until the next probe is admitted (0 unless open)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(
                0.0,
                self.reset_timeout - (self._clock.now() - self._opened_at),
            )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe health payload for status endpoints and tests."""
        with self._lock:
            if self._state != self.OPEN:
                retry_after = 0.0
            else:
                retry_after = max(
                    0.0,
                    self.reset_timeout
                    - (self._clock.now() - self._opened_at),
                )
            return {
                "name": self.name,
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
                "retry_after": retry_after,
                "opens": sum(
                    1 for t in self._transitions if t.endswith("->" + self.OPEN)
                ),
                "transitions": list(self._transitions),
            }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name!r}, state={self.state!r})"


def retry_call(
    fn: Callable[..., T],
    *args,
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    deadline: Optional[Deadline] = None,
    label: Optional[str] = None,
    **kwargs,
) -> T:
    """Call ``fn(*args, **kwargs)`` under a retry policy.

    Raises :class:`RetryExhaustedError` (chaining the last underlying
    exception) when every attempt failed, or
    :class:`~repro.errors.DeadlineExceededError` if the deadline expires
    between attempts.  Non-retryable exceptions propagate unchanged.
    """
    policy = policy or RetryPolicy()
    what = label or getattr(fn, "__qualname__", repr(fn))
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None:
            deadline.check(what)
        try:
            return fn(*args, **kwargs)
        except policy.retry_on as exc:
            last = exc
            if attempt == policy.max_attempts:
                break
            delay = policy.delay(attempt)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    delay = min(delay, remaining)
            if delay > 0:
                sleep(delay)
    raise RetryExhaustedError(
        f"{what} failed after {policy.max_attempts} attempts: {last!r}"
    ) from last


async def retry_call_async(
    fn: Callable[..., Awaitable[T]],
    *args,
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    deadline: Optional[Deadline] = None,
    label: Optional[str] = None,
    **kwargs,
) -> T:
    """Asyncio counterpart of :func:`retry_call`.

    Awaits ``fn(*args, **kwargs)`` under the policy, backing off with
    ``await sleep(delay)`` so the event loop keeps serving other work
    between attempts.  The query service uses this around its executor
    dispatch.  Cancellation is never swallowed: a ``CancelledError``
    propagates immediately regardless of the policy.
    """
    policy = policy or RetryPolicy()
    what = label or getattr(fn, "__qualname__", repr(fn))
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None:
            deadline.check(what)
        try:
            return await fn(*args, **kwargs)
        except asyncio.CancelledError:
            raise
        except policy.retry_on as exc:
            last = exc
            if attempt == policy.max_attempts:
                break
            delay = policy.delay(attempt)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    delay = min(delay, remaining)
            if delay > 0:
                await sleep(delay)
    raise RetryExhaustedError(
        f"{what} failed after {policy.max_attempts} attempts: {last!r}"
    ) from last


def with_retries(
    policy: Optional[RetryPolicy] = None,
    *,
    sleep: Callable[[float], None] = time.sleep,
    deadline: Optional[Deadline] = None,
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`retry_call`.

    Example::

        @with_retries(RetryPolicy(max_attempts=5, base_delay=0.1))
        def flaky_write(path, data): ...
    """

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return retry_call(
                fn, *args, policy=policy, sleep=sleep, deadline=deadline,
                label=getattr(fn, "__qualname__", None), **kwargs,
            )

        return wrapper

    return decorate
