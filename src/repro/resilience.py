"""Retry, backoff and deadline primitives.

Persistent storage and parallel execution both need a uniform answer to
"this operation failed, now what?".  This module provides it:

* :class:`RetryPolicy` — how many attempts, which exceptions are
  retryable, and an exponential-backoff delay schedule;
* :class:`Deadline` — a monotonic-clock budget that can be threaded
  through nested operations;
* :func:`retry_call` / :func:`with_retries` — run a callable under a
  policy, raising :class:`~repro.errors.RetryExhaustedError` (chaining
  the final underlying exception) once the attempts are spent.

Everything is deterministic and injectable: the sleep function and the
clock are parameters, so tests never wait on real time, and the fault
injection harness (:mod:`repro.faults`) composes naturally — an
injected fault that fires once is healed by the first retry.
"""

from __future__ import annotations

import asyncio
import functools
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterator, Optional, Tuple, Type, TypeVar

from repro.errors import DeadlineExceededError, RetryExhaustedError

__all__ = [
    "RetryPolicy",
    "Deadline",
    "retry_call",
    "retry_call_async",
    "with_retries",
]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How an operation is retried: attempts, backoff, retryable errors.

    ``max_attempts`` counts the first try, so ``max_attempts=3`` means
    "try, then retry at most twice".  The delay before retry *k*
    (1-based) is ``min(base_delay * multiplier**(k-1), max_delay)``.
    Only exceptions matching ``retry_on`` are retried; anything else
    propagates immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, retry_number: int) -> float:
        """Backoff delay before the ``retry_number``-th retry (1-based)."""
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        return min(self.base_delay * self.multiplier ** (retry_number - 1),
                   self.max_delay)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule (``max_attempts - 1`` delays)."""
        return (self.delay(k) for k in range(1, self.max_attempts))


class Deadline:
    """A wall-clock budget measured on a monotonic clock.

    ``Deadline.after(2.0)`` expires two seconds from now;
    ``Deadline.never()`` never expires.  The clock is injectable for
    deterministic tests.
    """

    __slots__ = ("_clock", "_expires_at")

    def __init__(self, seconds: Optional[float], *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._expires_at = None if seconds is None else clock() + seconds

    @classmethod
    def after(cls, seconds: float, *,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds, clock=clock)

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires."""
        return cls(None)

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0), or ``None`` if unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(f"deadline expired before {what}")

    def __repr__(self) -> str:
        remaining = self.remaining()
        budget = "unbounded" if remaining is None else f"{remaining:.3f}s left"
        return f"Deadline({budget})"


def retry_call(
    fn: Callable[..., T],
    *args,
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = time.sleep,
    deadline: Optional[Deadline] = None,
    label: Optional[str] = None,
    **kwargs,
) -> T:
    """Call ``fn(*args, **kwargs)`` under a retry policy.

    Raises :class:`RetryExhaustedError` (chaining the last underlying
    exception) when every attempt failed, or
    :class:`~repro.errors.DeadlineExceededError` if the deadline expires
    between attempts.  Non-retryable exceptions propagate unchanged.
    """
    policy = policy or RetryPolicy()
    what = label or getattr(fn, "__qualname__", repr(fn))
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None:
            deadline.check(what)
        try:
            return fn(*args, **kwargs)
        except policy.retry_on as exc:
            last = exc
            if attempt == policy.max_attempts:
                break
            delay = policy.delay(attempt)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    delay = min(delay, remaining)
            if delay > 0:
                sleep(delay)
    raise RetryExhaustedError(
        f"{what} failed after {policy.max_attempts} attempts: {last!r}"
    ) from last


async def retry_call_async(
    fn: Callable[..., Awaitable[T]],
    *args,
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
    deadline: Optional[Deadline] = None,
    label: Optional[str] = None,
    **kwargs,
) -> T:
    """Asyncio counterpart of :func:`retry_call`.

    Awaits ``fn(*args, **kwargs)`` under the policy, backing off with
    ``await sleep(delay)`` so the event loop keeps serving other work
    between attempts.  The query service uses this around its executor
    dispatch.  Cancellation is never swallowed: a ``CancelledError``
    propagates immediately regardless of the policy.
    """
    policy = policy or RetryPolicy()
    what = label or getattr(fn, "__qualname__", repr(fn))
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        if deadline is not None:
            deadline.check(what)
        try:
            return await fn(*args, **kwargs)
        except asyncio.CancelledError:
            raise
        except policy.retry_on as exc:
            last = exc
            if attempt == policy.max_attempts:
                break
            delay = policy.delay(attempt)
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining is not None:
                    delay = min(delay, remaining)
            if delay > 0:
                await sleep(delay)
    raise RetryExhaustedError(
        f"{what} failed after {policy.max_attempts} attempts: {last!r}"
    ) from last


def with_retries(
    policy: Optional[RetryPolicy] = None,
    *,
    sleep: Callable[[float], None] = time.sleep,
    deadline: Optional[Deadline] = None,
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`retry_call`.

    Example::

        @with_retries(RetryPolicy(max_attempts=5, base_delay=0.1))
        def flaky_write(path, data): ...
    """

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return retry_call(
                fn, *args, policy=policy, sleep=sleep, deadline=deadline,
                label=getattr(fn, "__qualname__", None), **kwargs,
            )

        return wrapper

    return decorate
