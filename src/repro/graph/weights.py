"""Deterministic edge-weight functions.

In the evolving-graph model a weight is a fixed property of an edge
``(u, v)``: an edge deleted at snapshot *t* and re-added at snapshot
*t+k* has the same weight both times.  We therefore derive weights
deterministically from the edge endpoints (plus a seed) instead of
storing them alongside every edge set; any CSR materialised from any
snapshot, common graph, or delta batch automatically agrees on weights.

:class:`HashWeights` uses a SplitMix64-style integer mix, vectorised
with NumPy ``uint64`` arithmetic.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

__all__ = ["WeightFn", "UnitWeights", "HashWeights", "default_weights"]


class WeightFn(Protocol):
    """Callable mapping parallel ``(sources, targets)`` arrays to weights."""

    def __call__(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Return a float64 weight per edge."""


class UnitWeights:
    """All edges weigh 1.0 (used by BFS and unweighted queries)."""

    def __call__(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(sources).shape, dtype=np.float64)

    def __repr__(self) -> str:
        return "UnitWeights()"


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 finaliser over uint64 values."""
    with np.errstate(over="ignore"):
        x = (x + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return x


class HashWeights:
    """Deterministic pseudo-random integer weights in ``[1, max_weight]``.

    Parameters
    ----------
    max_weight:
        Inclusive upper bound for the weight values.
    seed:
        Mix seed; two :class:`HashWeights` with the same seed and bound
        agree on every edge.
    """

    def __init__(self, max_weight: int = 64, seed: int = 0) -> None:
        if max_weight < 1:
            raise ValueError("max_weight must be >= 1")
        self.max_weight = int(max_weight)
        self.seed = int(seed)

    def __call__(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        src = np.asarray(sources, dtype=np.uint64)
        dst = np.asarray(targets, dtype=np.uint64)
        with np.errstate(over="ignore"):
            code = (src << np.uint64(32)) | dst
            code = code ^ np.uint64(self.seed & 0xFFFFFFFFFFFFFFFF)
        mixed = _splitmix64(code)
        return (mixed % np.uint64(self.max_weight)).astype(np.float64) + 1.0

    def __repr__(self) -> str:
        return f"HashWeights(max_weight={self.max_weight}, seed={self.seed})"


def default_weights() -> WeightFn:
    """The weight function used by the benchmark harness (1..64)."""
    return HashWeights(max_weight=64, seed=0)
