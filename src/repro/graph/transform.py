"""Edge-set transformations.

Utilities for preparing real-world inputs: many public datasets are
undirected (symmetrise), contain self-loops (drop them), use sparse or
arbitrary vertex ids (relabel densely), or are analysed one region at a
time (induced subgraphs).  All operate on :class:`EdgeSet` so the
results plug straight into the evolving-graph pipeline.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.graph.edgeset import EdgeSet, encode_edges

__all__ = [
    "symmetrize",
    "remove_self_loops",
    "induced_subgraph",
    "relabel_dense",
    "reverse_edges",
]


def symmetrize(edges: EdgeSet) -> EdgeSet:
    """Add the reverse of every edge (undirected → directed encoding)."""
    src, dst = edges.arrays()
    return EdgeSet(
        np.concatenate([edges.codes, encode_edges(dst, src)])
    )


def reverse_edges(edges: EdgeSet) -> EdgeSet:
    """Flip every edge's direction."""
    src, dst = edges.arrays()
    return EdgeSet(encode_edges(dst, src))


def remove_self_loops(edges: EdgeSet) -> EdgeSet:
    """Drop edges whose endpoints coincide."""
    src, dst = edges.arrays()
    keep = src != dst
    return EdgeSet(edges.codes[keep], _trusted=True)


def induced_subgraph(edges: EdgeSet, vertices: np.ndarray) -> EdgeSet:
    """Edges whose *both* endpoints are in ``vertices``."""
    vertex_set = np.unique(np.asarray(vertices, dtype=np.int64))
    src, dst = edges.arrays()

    def member(ids: np.ndarray) -> np.ndarray:
        pos = np.searchsorted(vertex_set, ids)
        pos = np.clip(pos, 0, max(vertex_set.size - 1, 0))
        if vertex_set.size == 0:
            return np.zeros(ids.shape, dtype=bool)
        return vertex_set[pos] == ids

    keep = member(src) & member(dst)
    return EdgeSet(edges.codes[keep], _trusted=True)


def relabel_dense(edges: EdgeSet) -> Tuple[EdgeSet, Dict[int, int]]:
    """Relabel vertices to a dense ``0..k-1`` range.

    Returns the relabelled edge set and the old→new id mapping.  Useful
    after loading datasets with sparse ids so CSR arrays are sized by
    the number of *used* vertices.
    """
    src, dst = edges.arrays()
    used = np.unique(np.concatenate([src, dst]))
    new_src = np.searchsorted(used, src)
    new_dst = np.searchsorted(used, dst)
    mapping = {int(old): int(new) for new, old in enumerate(used.tolist())}
    return EdgeSet.from_arrays(new_src, new_dst), mapping
