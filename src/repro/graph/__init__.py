"""Graph substrates: edge sets, CSR, overlays, mutation, generation, I/O."""

from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet, MAX_VERTEX_ID, decode_edges, encode_edges
from repro.graph.generators import (
    DATASETS,
    DatasetSpec,
    erdos_renyi_edges,
    generate_dataset,
    rmat_edges,
)
from repro.graph.io import (
    load_edge_list,
    load_edge_set_npz,
    save_edge_list,
    save_edge_set_npz,
)
from repro.graph.mutable import MutableGraph, MutationCosts
from repro.graph.overlay import OverlayGraph
from repro.graph.stats import GraphStats, compute_stats, weakly_connected_labels
from repro.graph.transform import (
    induced_subgraph,
    relabel_dense,
    remove_self_loops,
    reverse_edges,
    symmetrize,
)
from repro.graph.weights import HashWeights, UnitWeights, WeightFn, default_weights

__all__ = [
    "CSRGraph",
    "EdgeSet",
    "MAX_VERTEX_ID",
    "encode_edges",
    "decode_edges",
    "OverlayGraph",
    "MutableGraph",
    "MutationCosts",
    "HashWeights",
    "UnitWeights",
    "WeightFn",
    "default_weights",
    "rmat_edges",
    "erdos_renyi_edges",
    "DatasetSpec",
    "DATASETS",
    "generate_dataset",
    "load_edge_list",
    "save_edge_list",
    "save_edge_set_npz",
    "load_edge_set_npz",
    "GraphStats",
    "compute_stats",
    "weakly_connected_labels",
    "symmetrize",
    "reverse_edges",
    "remove_self_loops",
    "induced_subgraph",
    "relabel_dense",
]
