"""Canonical edge sets with fast set algebra.

An :class:`EdgeSet` stores directed edges ``(u, v)`` as a sorted, unique
array of 64-bit codes ``(u << 32) | v``.  All of the CommonGraph
machinery (common-graph intersection, Triangular-Grid surplus sets,
delta batches) reduces to set algebra over these codes, which NumPy's
sorted-array routines execute in ``O(n log n)`` or better.

Edge weights are deliberately *not* stored here: in the evolving-graph
model of the paper an edge's weight is a fixed property of the edge
``(u, v)`` itself (an edge that is deleted and later re-added keeps its
weight), so weights are recovered from a deterministic
:mod:`repro.graph.weights` function when a CSR is materialised.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

import numpy as np

from repro.errors import EdgeSetError

__all__ = ["EdgeSet", "encode_edges", "decode_edges", "MAX_VERTEX_ID"]

#: Largest vertex id representable in the packed edge code.
MAX_VERTEX_ID = (1 << 31) - 1

_SHIFT = np.int64(32)
_MASK = np.int64((1 << 32) - 1)


def encode_edges(sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Pack ``(u, v)`` pairs into int64 codes ``(u << 32) | v``."""
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.shape != targets.shape:
        raise EdgeSetError("sources and targets must have the same shape")
    if sources.size and (
        sources.min() < 0
        or targets.min() < 0
        or sources.max() > MAX_VERTEX_ID
        or targets.max() > MAX_VERTEX_ID
    ):
        raise EdgeSetError(
            f"vertex ids must be in [0, {MAX_VERTEX_ID}]"
        )
    return (sources << _SHIFT) | targets


def decode_edges(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unpack int64 edge codes into ``(sources, targets)`` arrays."""
    codes = np.asarray(codes, dtype=np.int64)
    return (codes >> _SHIFT).astype(np.int64), (codes & _MASK).astype(np.int64)


class EdgeSet:
    """An immutable set of directed edges.

    Supports the standard set operators (``|``, ``-``, ``&``, ``^``),
    containment tests and iteration, all backed by sorted NumPy arrays.

    Instances are treated as immutable; the underlying ``codes`` array
    must not be modified by callers.
    """

    __slots__ = ("_codes",)

    def __init__(self, codes: np.ndarray | None = None, *,
                 _trusted: bool = False) -> None:
        if codes is None:
            self._codes = np.empty(0, dtype=np.int64)
        elif _trusted:
            self._codes = codes
        else:
            codes = np.asarray(codes, dtype=np.int64)
            self._codes = np.unique(codes)

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_arrays(cls, sources: np.ndarray, targets: np.ndarray) -> "EdgeSet":
        """Build from parallel source/target arrays (deduplicating)."""
        return cls(encode_edges(sources, targets))

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "EdgeSet":
        """Build from an iterable of ``(u, v)`` tuples."""
        pairs = list(pairs)
        if not pairs:
            return cls()
        arr = np.asarray(pairs, dtype=np.int64)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise EdgeSetError("pairs must be (u, v) tuples")
        return cls.from_arrays(arr[:, 0], arr[:, 1])

    @classmethod
    def empty(cls) -> "EdgeSet":
        return cls()

    # -- accessors ------------------------------------------------------
    @property
    def codes(self) -> np.ndarray:
        """Sorted unique int64 edge codes (do not mutate)."""
        return self._codes

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, targets)`` arrays in code order."""
        return decode_edges(self._codes)

    @property
    def sources(self) -> np.ndarray:
        return self.arrays()[0]

    @property
    def targets(self) -> np.ndarray:
        return self.arrays()[1]

    def max_vertex(self) -> int:
        """Largest vertex id referenced, or ``-1`` if empty."""
        if not len(self):
            return -1
        src, dst = self.arrays()
        return int(max(src.max(), dst.max()))

    # -- set protocol ---------------------------------------------------
    def __len__(self) -> int:
        return int(self._codes.size)

    def __bool__(self) -> bool:
        return self._codes.size > 0

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        src, dst = self.arrays()
        return iter(zip(src.tolist(), dst.tolist()))

    def __contains__(self, edge: Tuple[int, int]) -> bool:
        u, v = edge
        code = np.int64((int(u) << 32) | int(v))
        idx = np.searchsorted(self._codes, code)
        return bool(idx < self._codes.size and self._codes[idx] == code)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeSet):
            return NotImplemented
        return self._codes.size == other._codes.size and bool(
            np.array_equal(self._codes, other._codes)
        )

    def __hash__(self) -> int:
        return hash(self._codes.tobytes())

    # -- algebra ----------------------------------------------------------
    #
    # The codes arrays are always sorted and unique, so membership of a
    # small set in a large one is a binary search.  These fast paths
    # matter: the evolving-graph pipeline applies thousands of small
    # delta batches to multi-million-edge sets, and NumPy's
    # ``setdiff1d``/``union1d`` would re-sort the large array each time.

    def union(self, other: "EdgeSet") -> "EdgeSet":
        big, small = (self, other) if len(self) >= len(other) else (other, self)
        if len(small) == 0:
            return EdgeSet(big._codes, _trusted=True)
        if len(small) * 16 < len(big):
            fresh = small._codes[~big.contains_codes(small._codes)]
            if fresh.size == 0:
                return EdgeSet(big._codes, _trusted=True)
            positions = np.searchsorted(big._codes, fresh)
            return EdgeSet(np.insert(big._codes, positions, fresh), _trusted=True)
        return EdgeSet(np.union1d(self._codes, other._codes), _trusted=True)

    def difference(self, other: "EdgeSet") -> "EdgeSet":
        if len(self) == 0 or len(other) == 0:
            return EdgeSet(self._codes, _trusted=True)
        # Binary-search membership of self in other: O(n log m), never
        # re-sorting either side.
        keep = ~other.contains_codes(self._codes)
        return EdgeSet(self._codes[keep], _trusted=True)

    def intersection(self, other: "EdgeSet") -> "EdgeSet":
        small, big = (self, other) if len(self) <= len(other) else (other, self)
        if len(small) == 0:
            return EdgeSet()
        hits = big.contains_codes(small._codes)
        return EdgeSet(small._codes[hits], _trusted=True)

    def symmetric_difference(self, other: "EdgeSet") -> "EdgeSet":
        return EdgeSet(np.setxor1d(self._codes, other._codes), _trusted=True)

    __or__ = union
    __sub__ = difference
    __and__ = intersection
    __xor__ = symmetric_difference

    def isdisjoint(self, other: "EdgeSet") -> bool:
        return len(self.intersection(other)) == 0

    def issubset(self, other: "EdgeSet") -> bool:
        return len(self.difference(other)) == 0

    def issuperset(self, other: "EdgeSet") -> bool:
        return other.issubset(self)

    def contains_codes(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised membership test for an array of edge codes."""
        codes = np.asarray(codes, dtype=np.int64)
        idx = np.searchsorted(self._codes, codes)
        idx = np.clip(idx, 0, max(self._codes.size - 1, 0))
        if self._codes.size == 0:
            return np.zeros(codes.shape, dtype=bool)
        return self._codes[idx] == codes

    def __repr__(self) -> str:
        preview = ", ".join(f"({u},{v})" for u, v in list(self)[:4])
        more = ", ..." if len(self) > 4 else ""
        return f"EdgeSet(n={len(self)}, [{preview}{more}])"
