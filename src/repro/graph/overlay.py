"""Mutation-free snapshot representation: base CSR + Δ-batch CSRs.

This is the paper's key systems idea (§2.2 and §4.1): the CommonGraph
is stored once in CSR form and is *never* modified.  Each batch of edge
additions is stored as its own small CSR; a snapshot (or intermediate
common graph) is represented by the base plus the set of Δ CSRs on its
path through the Triangular Grid.  "Adding" a batch is an O(1)
composition, versus the O(E) compaction a mutable CSR pays.

:class:`OverlayGraph` is persistent: :meth:`with_delta` returns a new
overlay sharing all existing component CSRs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet

__all__ = ["OverlayGraph"]


class OverlayGraph:
    """A graph composed of a base CSR and zero or more delta CSRs.

    Implements the same ``gather`` protocol as :class:`CSRGraph`, so the
    push engines are agnostic to which representation they traverse.
    """

    __slots__ = ("base", "deltas")

    def __init__(self, base: CSRGraph, deltas: Sequence[CSRGraph] = ()) -> None:
        for d in deltas:
            if d.num_vertices != base.num_vertices:
                raise GraphError("delta vertex count differs from base")
        self.base = base
        self.deltas: Tuple[CSRGraph, ...] = tuple(deltas)

    # -- composition ------------------------------------------------------
    def with_delta(self, delta: CSRGraph) -> "OverlayGraph":
        """Return a new overlay with ``delta`` attached (no copying)."""
        if delta.num_vertices != self.base.num_vertices:
            raise GraphError("delta vertex count differs from base")
        return OverlayGraph(self.base, self.deltas + (delta,))

    @property
    def components(self) -> Tuple[CSRGraph, ...]:
        return (self.base,) + self.deltas

    # -- accessors ----------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.base.num_vertices

    @property
    def num_edges(self) -> int:
        return sum(c.num_edges for c in self.components)

    def edge_set(self) -> EdgeSet:
        """Union of all component edge sets."""
        result = self.base.edge_set()
        for d in self.deltas:
            result = result | d.edge_set()
        return result

    def degrees(self) -> np.ndarray:
        total = self.base.degrees().copy()
        for d in self.deltas:
            total += d.degrees()
        return total

    def neighbors(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of a vertex's out-edges across components."""
        targets = [c.indices[c.indptr[vertex]:c.indptr[vertex + 1]] for c in self.components]
        weights = [c.weights[c.indptr[vertex]:c.indptr[vertex + 1]] for c in self.components]
        return np.concatenate(targets), np.concatenate(weights)

    # -- engine protocol ----------------------------------------------------
    def gather(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat out-edges of the frontier across all components."""
        srcs, dsts, ws = [], [], []
        for component in self.components:
            s, d, w = component.gather(frontier)
            if s.size:
                srcs.append(s)
                dsts.append(d)
                ws.append(w)
        if not srcs:
            empty_i = np.empty(0, dtype=np.int64)
            return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
        return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(ws)

    def flatten(self) -> CSRGraph:
        """Materialise a single CSR equal to this overlay (for testing)."""
        srcs, dsts, ws = [], [], []
        for component in self.components:
            s, d, w = component.edge_arrays()
            srcs.append(s)
            dsts.append(d)
            ws.append(w)
        return CSRGraph.from_edges(
            np.concatenate(srcs),
            np.concatenate(dsts),
            self.num_vertices,
            weights=np.concatenate(ws),
        )

    def __repr__(self) -> str:
        return (
            f"OverlayGraph(V={self.num_vertices}, E={self.num_edges}, "
            f"deltas={len(self.deltas)})"
        )
