"""Synthetic graph generators and scaled stand-ins for the paper's inputs.

The paper evaluates on LiveJournal (70M edges), DBpediaLinks (170M),
WikipediaLinks (400M) and Twitter (1.5B edges).  Graphs of that size are
out of reach for a pure-Python reproduction, so we substitute RMAT
graphs scaled down by ~1000x that preserve (a) the power-law degree
structure real social/web graphs exhibit, (b) the relative size ordering
of the four inputs, and (c) approximately their average degrees.  The
paper's claims are about relative costs between evaluation strategies,
which depend on these structural properties rather than raw scale; see
DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import GraphError
from repro.graph.edgeset import EdgeSet, encode_edges

__all__ = [
    "rmat_edges",
    "erdos_renyi_edges",
    "DatasetSpec",
    "DATASETS",
    "generate_dataset",
]


def rmat_edges(
    scale: int,
    num_edges: int,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    allow_self_loops: bool = False,
) -> EdgeSet:
    """Generate an RMAT (Kronecker) edge set with ``2**scale`` vertices.

    Duplicate edges are discarded and regenerated until ``num_edges``
    distinct edges exist (or the graph is saturated).  The quadrant
    probabilities default to the Graph500 values, yielding the skewed
    degree distribution characteristic of social and web graphs.
    """
    if not 0 < a + b + c < 1:
        raise GraphError("RMAT probabilities must satisfy 0 < a+b+c < 1")
    if scale < 1:
        raise GraphError("scale must be >= 1")
    num_vertices = 1 << scale
    max_possible = num_vertices * (num_vertices - (0 if allow_self_loops else 1))
    if num_edges > max_possible:
        raise GraphError("requested more edges than the graph can hold")

    rng = np.random.default_rng(seed)
    collected = np.empty(0, dtype=np.int64)
    want = num_edges
    while collected.size < num_edges:
        batch = max(want + want // 4 + 16, 1024)
        src = np.zeros(batch, dtype=np.int64)
        dst = np.zeros(batch, dtype=np.int64)
        for _ in range(scale):
            r = rng.random(batch)
            src = src << 1
            dst = dst << 1
            # quadrant choice: a=top-left, b=top-right, c=bottom-left
            right = (r >= a) & (r < a + b)
            down = (r >= a + b) & (r < a + b + c)
            both = r >= a + b + c
            dst += (right | both).astype(np.int64)
            src += (down | both).astype(np.int64)
        if not allow_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        codes = encode_edges(src, dst)
        collected = np.union1d(collected, codes)
        want = num_edges - collected.size
    if collected.size > num_edges:
        drop = rng.choice(collected.size, size=collected.size - num_edges, replace=False)
        collected = np.delete(collected, drop)
    return EdgeSet(collected)


def erdos_renyi_edges(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    allow_self_loops: bool = False,
) -> EdgeSet:
    """Generate a uniform random directed edge set (no duplicates)."""
    max_possible = num_vertices * (num_vertices - (0 if allow_self_loops else 1))
    if num_edges > max_possible:
        raise GraphError("requested more edges than the graph can hold")
    rng = np.random.default_rng(seed)
    collected = np.empty(0, dtype=np.int64)
    want = num_edges
    while collected.size < num_edges:
        batch = max(want + want // 4 + 16, 1024)
        src = rng.integers(0, num_vertices, size=batch, dtype=np.int64)
        dst = rng.integers(0, num_vertices, size=batch, dtype=np.int64)
        if not allow_self_loops:
            keep = src != dst
            src, dst = src[keep], dst[keep]
        collected = np.union1d(collected, encode_edges(src, dst))
        want = num_edges - collected.size
    if collected.size > num_edges:
        drop = rng.choice(collected.size, size=collected.size - num_edges, replace=False)
        collected = np.delete(collected, drop)
    return EdgeSet(collected)


@dataclass(frozen=True)
class DatasetSpec:
    """A named synthetic dataset standing in for one of the paper's inputs.

    ``paper_edges`` records the size of the original input so the scale
    factor is explicit in reports.
    """

    name: str
    scale: int  # vertices = 2**scale
    num_edges: int
    paper_name: str
    paper_edges: int
    seed: int

    @property
    def num_vertices(self) -> int:
        return 1 << self.scale

    @property
    def avg_degree(self) -> float:
        return self.num_edges / self.num_vertices


#: Scaled stand-ins for Table 2 of the paper (edges scaled ~1/1000,
#: preserving relative ordering and approximate average degree).
DATASETS: Dict[str, DatasetSpec] = {
    "LJ": DatasetSpec("LJ", 12, 70_000, "LiveJournal", 70_000_000, seed=11),
    "DL": DatasetSpec("DL", 13, 170_000, "DBpediaLinks", 170_000_000, seed=13),
    "WEN": DatasetSpec("WEN", 13, 400_000, "WikipediaLinks", 400_000_000, seed=17),
    "TTW": DatasetSpec("TTW", 14, 1_500_000, "Twitter", 1_500_000_000, seed=19),
}


_DATASET_CACHE: Dict[tuple, EdgeSet] = {}


def generate_dataset(name: str, edge_scale: float = 1.0) -> EdgeSet:
    """Generate a named dataset's edge set.

    ``edge_scale`` < 1 shrinks the edge count proportionally; the
    benchmark harness uses this to provide a fast smoke-test profile.
    Results are cached per (name, edge_scale) — EdgeSets are immutable,
    and the benchmark harness materialises the same dataset many times.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    key = (name, float(edge_scale))
    cached = _DATASET_CACHE.get(key)
    if cached is None:
        num_edges = max(1, int(spec.num_edges * edge_scale))
        cached = rmat_edges(spec.scale, num_edges, seed=spec.seed)
        _DATASET_CACHE[key] = cached
    return cached
