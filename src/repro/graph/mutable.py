"""Mutable graph with in-place, row-local mutation (streaming baseline).

This models the graph-update path of KickStarter/Ligra-style streaming
systems, whose costs the paper measures in Figure 1 (bottom) and the
mutation components of Figure 11.  Mutation cost must scale with the
*update batch* (the paper's Figure 1 shows mutation cost growing with
batch size), so updates are row-local and copy-on-write:

* the pristine graph stays in flat CSR form (and its transpose);
* the first update touching a vertex's adjacency row copies that row
  out of the CSR into an override table; subsequent edits rewrite only
  that row.

**Additions** append to the source's out-row and the target's in-row —
two row copies.  **Deletions** must first *locate* the edge in both
rows (a scan) and then compact each row — making a deletion inherently
more expensive than an addition, which is exactly the asymmetry the
paper measures (and that the CommonGraph representation sidesteps by
never mutating at all).

Traversal (``gather``) runs vectorised over the pristine CSR for
untouched rows and falls back to the override table for touched ones,
so the mutation bookkeeping also taxes every subsequent traversal — as
it does in real dynamic-graph stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import UnitWeights, WeightFn
from repro.utils import Stopwatch

__all__ = ["MutableGraph", "MutationCosts"]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


@dataclass
class MutationCosts:
    """Accumulated graph-mutation costs, split by operation kind."""

    add: Stopwatch = field(default_factory=Stopwatch)
    delete: Stopwatch = field(default_factory=Stopwatch)
    #: Adjacency-row elements copied while applying additions/deletions.
    elements_moved_add: int = 0
    elements_moved_delete: int = 0

    @property
    def add_seconds(self) -> float:
        return self.add.seconds

    @property
    def delete_seconds(self) -> float:
        return self.delete.seconds

    def reset(self) -> None:
        self.add.reset()
        self.delete.reset()
        self.elements_moved_add = 0
        self.elements_moved_delete = 0


class _RowStore:
    """One direction of the graph: flat CSR + copy-on-write row overrides."""

    def __init__(self, csr: CSRGraph) -> None:
        self.csr = csr
        self.rows: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def row(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """Current ``(targets, weights)`` of a row (view or override)."""
        override = self.rows.get(vertex)
        if override is not None:
            return override
        return self.csr.neighbors(vertex)

    def materialise(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """Copy the row into the override table (idempotent)."""
        override = self.rows.get(vertex)
        if override is None:
            targets, weights = self.csr.neighbors(vertex)
            override = (targets.copy(), weights.copy())
            self.rows[vertex] = override
        return override

    def append(self, vertex: int, target: int, weight: float) -> int:
        """Append one edge to a row; returns elements copied."""
        targets, weights = self.materialise(vertex)
        self.rows[vertex] = (
            np.append(targets, np.int64(target)),
            np.append(weights, np.float64(weight)),
        )
        return targets.size + 1

    def remove(self, vertex: int, target: int) -> int:
        """Scan a row for ``target`` and compact it out; returns elements
        scanned plus copied (the deletion's row-local cost)."""
        targets, weights = self.materialise(vertex)
        hits = np.flatnonzero(targets == target)
        if hits.size == 0:
            raise GraphError(f"edge ({vertex}, {target}) not present")
        idx = int(hits[0])
        self.rows[vertex] = (np.delete(targets, idx), np.delete(weights, idx))
        return 2 * targets.size - 1  # scan + compaction copy

    def gather(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat ``(rows, targets, weights)`` of the frontier's rows."""
        if not self.rows:
            return self.csr.gather(frontier)
        dirty_mask = np.fromiter(
            (int(v) in self.rows for v in frontier), dtype=bool, count=frontier.size
        )
        clean = frontier[~dirty_mask]
        srcs, dsts, ws = [], [], []
        if clean.size:
            s, d, w = self.csr.gather(clean)
            srcs.append(s)
            dsts.append(d)
            ws.append(w)
        for v in frontier[dirty_mask]:
            targets, weights = self.rows[int(v)]
            if targets.size:
                srcs.append(np.full(targets.size, v, dtype=np.int64))
                dsts.append(targets)
                ws.append(weights)
        if not srcs:
            return _EMPTY_I, _EMPTY_I.copy(), _EMPTY_F
        return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(ws)

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All current edges as flat arrays (rows, targets, weights)."""
        n = self.csr.num_vertices
        all_rows = np.arange(n, dtype=np.int64)
        if not self.rows:
            s, d, w = self.csr.edge_arrays()
            return s, d, w
        return self.gather(all_rows)


class MutableGraph:
    """A directed graph supporting in-place add/delete batches.

    Exposes the same ``gather`` protocol as :class:`CSRGraph` plus
    ``gather_in`` over the maintained transpose (the incremental
    deletion algorithm repairs trimmed vertices through in-edges).
    """

    def __init__(
        self,
        base: CSRGraph,
        weight_fn: Optional[WeightFn] = None,
    ) -> None:
        self._weight_fn: WeightFn = weight_fn if weight_fn is not None else UnitWeights()
        self.num_vertices = base.num_vertices
        self._out = _RowStore(base)
        self._in = _RowStore(base.transpose())
        self._num_edges = base.num_edges
        self.costs = MutationCosts()

    # -- construction -----------------------------------------------------
    @classmethod
    def from_edge_set(
        cls,
        edges: EdgeSet,
        num_vertices: int,
        weight_fn: Optional[WeightFn] = None,
    ) -> "MutableGraph":
        base = CSRGraph.from_edge_set(edges, num_vertices, weight_fn=weight_fn)
        return cls(base, weight_fn=weight_fn)

    # -- accessors ----------------------------------------------------------
    @property
    def weight_fn(self) -> WeightFn:
        return self._weight_fn

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def edge_set(self) -> EdgeSet:
        src, dst, _ = self._out.edge_arrays()
        return EdgeSet.from_arrays(src, dst)

    def snapshot_csr(self) -> CSRGraph:
        """Materialise the current graph as a single pristine CSR."""
        src, dst, w = self._out.edge_arrays()
        return CSRGraph.from_edges(src, dst, self.num_vertices, weights=w)

    def neighbors(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of one vertex's out-edges."""
        return self._out.row(vertex)

    # -- engine protocol ------------------------------------------------------
    def gather(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Out-edges of the frontier."""
        return self._out.gather(np.asarray(frontier, dtype=np.int64))

    def gather_in(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """In-edges of the frontier as ``(origins, frontier_vertices, weights)``."""
        rows, origins, weights = self._in.gather(np.asarray(frontier, dtype=np.int64))
        return origins, rows, weights

    # -- mutation -----------------------------------------------------------
    def add_batch(self, additions: EdgeSet) -> None:
        """Insert a batch of edges (row-local, out-row and in-row each)."""
        with self.costs.add:
            src, dst = additions.arrays()
            if src.size and (
                src.max() >= self.num_vertices or dst.max() >= self.num_vertices
            ):
                raise GraphError("edge endpoint out of range")
            weights = self._weight_fn(src, dst)
            moved = 0
            for u, v, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
                moved += self._out.append(u, v, w)
                moved += self._in.append(v, u, w)
            self._num_edges += int(src.size)
            self.costs.elements_moved_add += moved

    def delete_batch(self, deletions: EdgeSet) -> None:
        """Remove a batch of edges.

        Each deletion scans and compacts the source's out-row *and* the
        target's in-row — inherently costlier than the append an
        addition needs, which reproduces the paper's mutation-cost
        asymmetry (Figure 1, bottom).
        """
        with self.costs.delete:
            src, dst = deletions.arrays()
            moved = 0
            for u, v in zip(src.tolist(), dst.tolist()):
                moved += self._out.remove(u, v)
                moved += self._in.remove(v, u)
            self._num_edges -= int(src.size)
            self.costs.elements_moved_delete += moved

    def __repr__(self) -> str:
        return (
            f"MutableGraph(V={self.num_vertices}, E={self.num_edges}, "
            f"dirty_rows={len(self._out.rows) + len(self._in.rows)})"
        )
