"""Immutable Compressed-Sparse-Row graph.

This is the storage format used for the common graph and for every
delta batch (the paper stores the CommonGraph and each Δ batch in CSR
form so snapshots are *composed*, never mutated; see §4.1).

The engine-facing protocol is :meth:`CSRGraph.gather`: given a frontier
of active vertices, return the flat ``(sources, targets, weights)``
arrays of all their out-edges with no Python-level loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.edgeset import EdgeSet, decode_edges, encode_edges
from repro.graph.weights import UnitWeights, WeightFn
from repro.utils import concat_ranges

__all__ = ["CSRGraph"]


class CSRGraph:
    """Directed graph in CSR form with per-edge float weights.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertex ids are ``0..num_vertices-1``.
    indptr:
        ``int64`` array of length ``num_vertices + 1``.
    indices:
        ``int64`` array of edge targets, grouped by source.
    weights:
        ``float64`` array parallel to ``indices``.
    """

    __slots__ = ("num_vertices", "indptr", "indices", "weights")

    def __init__(
        self,
        num_vertices: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if indptr.shape != (num_vertices + 1,):
            raise GraphError("indptr must have length num_vertices + 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphError("indptr must start at 0 and end at num_edges")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if weights.shape != indices.shape:
            raise GraphError("weights must be parallel to indices")
        if indices.size and (indices.min() < 0 or indices.max() >= num_vertices):
            raise GraphError("edge target out of range")
        self.num_vertices = int(num_vertices)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        sources: np.ndarray,
        targets: np.ndarray,
        num_vertices: int,
        weights: Optional[np.ndarray] = None,
        weight_fn: Optional[WeightFn] = None,
    ) -> "CSRGraph":
        """Build a CSR from parallel edge arrays.

        Exactly one of ``weights`` (explicit array) or ``weight_fn``
        (deterministic function of the endpoints) may be given; with
        neither, all weights are 1.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise GraphError("sources and targets must have the same shape")
        if sources.size and (sources.min() < 0 or sources.max() >= num_vertices):
            raise GraphError("edge source out of range")
        if weights is not None and weight_fn is not None:
            raise GraphError("pass either weights or weight_fn, not both")
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        targets = targets[order]
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)[order]
        else:
            fn = weight_fn if weight_fn is not None else UnitWeights()
            weights = fn(sources, targets)
        counts = np.bincount(sources, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_vertices, indptr, targets, weights)

    @classmethod
    def from_edge_set(
        cls,
        edges: EdgeSet,
        num_vertices: int,
        weight_fn: Optional[WeightFn] = None,
    ) -> "CSRGraph":
        """Build a CSR from an :class:`EdgeSet` (weights from ``weight_fn``)."""
        src, dst = edges.arrays()
        return cls.from_edges(src, dst, num_vertices, weight_fn=weight_fn)

    @classmethod
    def empty(cls, num_vertices: int) -> "CSRGraph":
        return cls(
            num_vertices,
            np.zeros(num_vertices + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )

    # -- basic accessors --------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Bytes held by the CSR arrays (indptr + indices + weights)."""
        return int(self.indptr.nbytes + self.indices.nbytes + self.weights.nbytes)

    def out_degree(self, vertex: int) -> int:
        return int(self.indptr[vertex + 1] - self.indptr[vertex])

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.indptr)

    def neighbors(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` views of one vertex's out-edges."""
        lo, hi = self.indptr[vertex], self.indptr[vertex + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges as flat ``(sources, targets, weights)`` arrays."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())
        return sources, self.indices.copy(), self.weights.copy()

    def edge_set(self) -> EdgeSet:
        """The set of edges (weights dropped)."""
        sources, targets, _ = self.edge_arrays()
        return EdgeSet.from_arrays(sources, targets)

    # -- engine protocol --------------------------------------------------
    def gather(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat out-edges of the frontier: ``(sources, targets, weights)``.

        ``frontier`` is an array of vertex ids; the result has one entry
        per out-edge of a frontier vertex, with sources repeated.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        starts = self.indptr[frontier]
        stops = self.indptr[frontier + 1]
        eidx = concat_ranges(starts, stops)
        sources = np.repeat(frontier, stops - starts)
        return sources, self.indices[eidx], self.weights[eidx]

    # -- derived graphs ---------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """Reverse every edge (weights preserved)."""
        sources, targets, weights = self.edge_arrays()
        return CSRGraph.from_edges(
            targets, sources, self.num_vertices, weights=weights
        )

    def __repr__(self) -> str:
        return f"CSRGraph(V={self.num_vertices}, E={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.weights, other.weights)
        )

    def sorted_copy(self) -> "CSRGraph":
        """Copy with each adjacency row sorted by target id."""
        src, dst, w = self.edge_arrays()
        code = encode_edges(src, dst)
        order = np.argsort(code, kind="stable")
        src2, dst2 = decode_edges(code[order])
        return CSRGraph.from_edges(src2, dst2, self.num_vertices, weights=w[order])
