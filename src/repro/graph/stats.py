"""Structural graph statistics.

Summaries used by the CLI (``python -m repro info --detailed``), the
examples, and workload sanity checks: degree distributions, weak
connectivity, and reachability from a source.  Connectivity is computed
with vectorised label propagation (no recursion, no Python-level BFS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph

__all__ = ["GraphStats", "compute_stats", "weakly_connected_labels", "reach_count"]


def weakly_connected_labels(graph: CSRGraph) -> np.ndarray:
    """Weakly-connected component label per vertex (min vertex id wins).

    Iterative min-label propagation across both edge directions;
    converges in O(diameter) rounds, each a vectorised scatter.
    """
    n = graph.num_vertices
    labels = np.arange(n, dtype=np.int64)
    src, dst, _ = graph.edge_arrays()
    # Treat edges as undirected for weak connectivity.
    a = np.concatenate([src, dst])
    b = np.concatenate([dst, src])
    while True:
        proposed = labels.copy()
        np.minimum.at(proposed, b, labels[a])
        # Pointer-jump to each vertex's current root for fast collapse.
        proposed = np.minimum(proposed, proposed[proposed])
        if np.array_equal(proposed, labels):
            return labels
        labels = proposed


def reach_count(graph: CSRGraph, source: int) -> int:
    """Number of vertices reachable from ``source`` (including itself)."""
    from repro.algorithms.suite import BFS
    from repro.kickstarter.engine import static_compute

    values = static_compute(graph, BFS(), source).values
    return int(np.isfinite(values).sum())


@dataclass(frozen=True)
class GraphStats:
    """A structural summary of one graph."""

    num_vertices: int
    num_edges: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int
    isolated_vertices: int
    num_components: int
    largest_component: int

    def as_rows(self) -> list:
        """Rows for :func:`repro.bench.reporting.render_table`."""
        return [
            ["vertices", self.num_vertices],
            ["edges", self.num_edges],
            ["avg out-degree", round(self.avg_out_degree, 2)],
            ["max out-degree", self.max_out_degree],
            ["max in-degree", self.max_in_degree],
            ["isolated vertices", self.isolated_vertices],
            ["weak components", self.num_components],
            ["largest component", self.largest_component],
        ]


def compute_stats(graph: CSRGraph) -> GraphStats:
    """Compute a :class:`GraphStats` summary for a CSR graph."""
    out_degrees = graph.degrees()
    src, dst, _ = graph.edge_arrays()
    in_degrees = np.bincount(dst, minlength=graph.num_vertices)
    touched = np.zeros(graph.num_vertices, dtype=bool)
    touched[src] = True
    touched[dst] = True
    labels = weakly_connected_labels(graph)
    # Components over non-isolated vertices plus one per isolated vertex.
    _, counts = np.unique(labels, return_counts=True)
    return GraphStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_out_degree=float(out_degrees.mean()) if graph.num_vertices else 0.0,
        max_out_degree=int(out_degrees.max()) if graph.num_vertices else 0,
        max_in_degree=int(in_degrees.max()) if graph.num_vertices else 0,
        isolated_vertices=int((~touched).sum()),
        num_components=int(counts.size),
        largest_component=int(counts.max()) if counts.size else 0,
    )


def degree_histogram(graph: CSRGraph, bins: int = 10) -> Dict[str, int]:
    """Log-ish binned out-degree histogram (for CLI display)."""
    degrees = graph.degrees()
    edges = np.unique(
        np.concatenate([[0, 1, 2], np.geomspace(3, max(degrees.max(), 3) + 1, bins)])
    ).astype(np.int64)
    counts, _ = np.histogram(degrees, bins=np.append(edges, edges[-1] + 1))
    return {
        (f"{lo}" if hi == lo + 1 else f"{lo}-{hi - 1}"): int(c)
        for lo, hi, c in zip(edges, np.append(edges[1:], edges[-1] + 1), counts)
        if c
    }
