"""Graph and evolving-graph persistence.

Two formats are supported:

* **Edge-list text** — one ``u v`` pair per line, ``#`` comments; the
  common interchange format for public graph datasets (SNAP, KONECT).
* **NPZ bundles** — compact binary storage of an edge set or of a full
  evolving graph (base snapshot plus all delta batches).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import GraphError
from repro.graph.edgeset import EdgeSet

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "save_edge_set_npz",
    "load_edge_set_npz",
]

PathLike = Union[str, Path]


def load_edge_list(path: PathLike) -> EdgeSet:
    """Read a ``u v`` per line text edge list (``#`` starts a comment)."""
    sources = []
    targets = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) < 2:
                raise GraphError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
            except ValueError as exc:
                raise GraphError(f"{path}:{lineno}: non-integer vertex id") from exc
    if not sources:
        return EdgeSet.empty()
    return EdgeSet.from_arrays(
        np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)
    )


def save_edge_list(edges: EdgeSet, path: PathLike) -> None:
    """Write an edge set as a ``u v`` per line text file."""
    src, dst = edges.arrays()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# directed edge list, one 'u v' pair per line\n")
        for u, v in zip(src.tolist(), dst.tolist()):
            handle.write(f"{u} {v}\n")


def save_edge_set_npz(edges: EdgeSet, path: PathLike) -> None:
    """Save an edge set as a compressed ``.npz`` file."""
    np.savez_compressed(path, codes=edges.codes)


def load_edge_set_npz(path: PathLike) -> EdgeSet:
    """Load an edge set written by :func:`save_edge_set_npz`."""
    with np.load(path) as data:
        if "codes" not in data:
            raise GraphError(f"{path}: not an edge-set bundle (missing 'codes')")
        return EdgeSet(data["codes"])
