"""Monotonic vertex-value algorithms (the class KickStarter supports).

A monotonic algorithm maintains one value per vertex.  An edge
``(u, v)`` with weight ``w`` *proposes* a value for ``v`` computed from
``Val(u)`` and ``w`` (the paper's ``EdgeFunction``, Table 3); the vertex
keeps the best proposal seen, where "best" is a fixed direction
(minimise or maximise).  Monotonicity — a better upstream value never
yields a worse proposal — is what makes incremental *addition*
processing trivially correct and what the trim-and-repair deletion
algorithm relies on.

Subclasses provide four pieces of data and one vectorised function:

* ``direction`` — ``"min"`` or ``"max"``;
* ``worst`` — the identity value under the reduction (``inf`` for min,
  typically ``0``/``-inf`` for max);
* ``source_value`` — the value pinned at the query source;
* ``proposals(src_values, weights)`` — vectorised edge function.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import AlgorithmError

__all__ = ["MonotonicAlgorithm"]


class MonotonicAlgorithm(ABC):
    """Base class for Table 3 algorithms.

    The class is stateless: engines own the vertex-value arrays and call
    back into the algorithm for proposals and reductions.
    """

    #: Short name used in reports and the registry.
    name: str = "?"
    #: ``"min"`` if smaller values are better, ``"max"`` otherwise.
    direction: str = "min"
    #: The neutral (worst possible) vertex value.
    worst: float = np.inf
    #: Value pinned at the source vertex.
    source_value: float = 0.0
    #: Whether edge weights influence proposals (BFS ignores them).
    uses_weights: bool = True

    @abstractmethod
    def proposals(self, src_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Vectorised edge function: value proposed along each edge."""

    # -- derived helpers ---------------------------------------------------
    def __init__(self) -> None:
        if self.direction not in ("min", "max"):
            raise AlgorithmError(f"direction must be 'min' or 'max', got {self.direction!r}")

    def initial_values(self, num_vertices: int, source: int) -> np.ndarray:
        """Fresh value array: everything ``worst`` except the source."""
        if not 0 <= source < num_vertices:
            raise AlgorithmError(f"source {source} out of range [0, {num_vertices})")
        values = np.full(num_vertices, self.worst, dtype=np.float64)
        values[source] = self.source_value
        return values

    def reduce_at(self, values: np.ndarray, targets: np.ndarray, proposals: np.ndarray) -> None:
        """Scatter-reduce proposals into ``values`` at ``targets`` in place."""
        if self.direction == "min":
            np.minimum.at(values, targets, proposals)
        else:
            np.maximum.at(values, targets, proposals)

    def better(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise: is ``a`` strictly better than ``b``?"""
        return np.less(a, b) if self.direction == "min" else np.greater(a, b)

    def best(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise best of two value arrays."""
        return np.minimum(a, b) if self.direction == "min" else np.maximum(a, b)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
