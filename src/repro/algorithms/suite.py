"""The five benchmark algorithms of the paper (Table 3).

==========  =====================================================  =========
Algorithm   EdgeFunction for edge ``(u, v)``                       Reduction
==========  =====================================================  =========
BFS         ``Val(u) + 1``                                         min
SSSP        ``Val(u) + wt(u, v)``                                  min
SSWP        ``min(Val(u), wt(u, v))``                              max
SSNP        ``max(Val(u), wt(u, v))``                              min
Viterbi     ``Val(u) / wt(u, v)``                                  max
==========  =====================================================  =========

All five are monotonic: an improved upstream value can only improve the
proposal, so incremental additions never require retraction.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm

__all__ = ["BFS", "SSSP", "SSWP", "SSNP", "Viterbi"]


class BFS(MonotonicAlgorithm):
    """Breadth-first search: hop distance from the source."""

    name = "BFS"
    direction = "min"
    worst = np.inf
    source_value = 0.0
    uses_weights = False

    def proposals(self, src_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return src_values + 1.0


class SSSP(MonotonicAlgorithm):
    """Single-source shortest path (non-negative weights)."""

    name = "SSSP"
    direction = "min"
    worst = np.inf
    source_value = 0.0

    def proposals(self, src_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return src_values + weights


class SSWP(MonotonicAlgorithm):
    """Single-source widest path: maximise the minimum edge weight."""

    name = "SSWP"
    direction = "max"
    worst = 0.0
    source_value = np.inf

    def proposals(self, src_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.minimum(src_values, weights)


class SSNP(MonotonicAlgorithm):
    """Single-source narrowest path: minimise the maximum edge weight."""

    name = "SSNP"
    direction = "min"
    worst = np.inf
    source_value = 0.0

    def proposals(self, src_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.maximum(src_values, weights)


class Viterbi(MonotonicAlgorithm):
    """Viterbi-style path score, per the paper: maximise ``Val(u)/wt``.

    With weights >= 1 the score decays along a path, so this behaves as
    a maximum-reliability query with reciprocal edge weights.
    """

    name = "Viterbi"
    direction = "max"
    worst = 0.0
    source_value = 1.0

    def proposals(self, src_values: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return src_values / weights
