"""Monotonic graph algorithms (Table 3 of the paper)."""

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.registry import (
    ALGORITHMS,
    algorithm_names,
    get_algorithm,
    register_algorithm,
)
from repro.algorithms.suite import BFS, SSNP, SSSP, SSWP, Viterbi

__all__ = [
    "MonotonicAlgorithm",
    "BFS",
    "SSSP",
    "SSWP",
    "SSNP",
    "Viterbi",
    "get_algorithm",
    "register_algorithm",
    "algorithm_names",
    "ALGORITHMS",
]
