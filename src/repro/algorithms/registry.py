"""Name-based lookup for the monotonic algorithm suite."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.suite import BFS, SSNP, SSSP, SSWP, Viterbi
from repro.errors import AlgorithmError

__all__ = ["get_algorithm", "register_algorithm", "algorithm_names", "ALGORITHMS"]

ALGORITHMS: Dict[str, Type[MonotonicAlgorithm]] = {
    cls.name.lower(): cls for cls in (BFS, SSSP, SSWP, SSNP, Viterbi)
}


def register_algorithm(cls: Type[MonotonicAlgorithm]) -> Type[MonotonicAlgorithm]:
    """Register a user-defined monotonic algorithm (decorator-friendly)."""
    key = cls.name.lower()
    if key in ALGORITHMS and ALGORITHMS[key] is not cls:
        raise AlgorithmError(f"algorithm name {cls.name!r} already registered")
    ALGORITHMS[key] = cls
    return cls


def get_algorithm(name: str) -> MonotonicAlgorithm:
    """Instantiate an algorithm by (case-insensitive) name."""
    try:
        return ALGORITHMS[name.lower()]()
    except KeyError:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; available: {algorithm_names()}"
        ) from None


def algorithm_names() -> List[str]:
    """Registered algorithm names in display form."""
    return sorted(cls.name for cls in ALGORITHMS.values())
