"""Consistent hashing of query sources onto replicas.

The fleet router spreads queries across replicas *by source vertex*:
the same source always lands on the same replica, so that replica's
memoizing planner keeps the converged node states for that source warm
(`node_cache` affinity).  A plain ``source % n`` mapping would reshuffle
almost every source whenever a replica joins or leaves; consistent
hashing moves only the ejected replica's share.

The ring is deterministic — SHA-1 of ``"<replica>#<vnode>"`` for ring
positions and of ``"src:<source>"`` for keys — so a seeded test (and a
restarted router) always computes the same layout.  Each replica owns
``vnodes`` virtual points to smooth the load split.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from repro.errors import FleetError

__all__ = ["ConsistentHashRing"]


def _position(token: str) -> int:
    """A stable 64-bit ring position for ``token``."""
    digest = hashlib.sha1(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """A deterministic consistent-hash ring over replica names."""

    def __init__(self, members: Iterable[str] = (), *,
                 vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._positions: List[int] = []
        self._members: Dict[str, bool] = {}
        for name in members:
            self.add(name)

    # -- membership ----------------------------------------------------------
    def add(self, name: str) -> None:
        """Add ``name``; idempotent so a re-entering replica is safe."""
        if name in self._members:
            return
        self._members[name] = True
        for k in range(self.vnodes):
            self._points.append((_position(f"{name}#{k}"), name))
        self._points.sort()
        self._positions = [point for point, _ in self._points]

    def remove(self, name: str) -> None:
        """Remove ``name``; idempotent so a double ejection is safe."""
        if name not in self._members:
            return
        del self._members[name]
        self._points = [(p, n) for p, n in self._points if n != name]
        self._positions = [point for point, _ in self._points]

    def members(self) -> Tuple[str, ...]:
        return tuple(sorted(self._members))

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def __len__(self) -> int:
        return len(self._members)

    # -- lookup --------------------------------------------------------------
    def owner(self, source: int) -> str:
        """The replica owning query source ``source``."""
        return self.owners(source, 1)[0]

    def owners(self, source: int, count: int) -> List[str]:
        """Up to ``count`` *distinct* replicas for ``source``, in
        failover order: the owner first, then the next distinct replicas
        walking clockwise around the ring.  The router retries a failed
        query down this list so a re-routed source still lands
        deterministically.
        """
        if not self._members:
            raise FleetError("hash ring is empty: no replicas in rotation")
        want = min(count, len(self._members))
        start = bisect.bisect_left(self._positions, _position(f"src:{source}"))
        ordered: List[str] = []
        for offset in range(len(self._points)):
            _, name = self._points[(start + offset) % len(self._points)]
            if name not in ordered:
                ordered.append(name)
                if len(ordered) == want:
                    break
        return ordered

    def assignment(self, sources: Iterable[int]) -> Dict[str, int]:
        """How many of ``sources`` each member owns (for tests/status)."""
        counts: Dict[str, int] = dict.fromkeys(self._members, 0)
        for source in sources:
            counts[self.owner(source)] += 1
        return counts

    def __repr__(self) -> str:
        return (f"ConsistentHashRing(members={len(self._members)}, "
                f"vnodes={self.vnodes})")
