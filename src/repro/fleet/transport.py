"""Async JSON-lines transport from the router to one replica.

The router lives on an event loop, so it cannot reuse the blocking
:class:`~repro.service.client.ServiceClient`.  This module provides the
asyncio counterpart, deliberately minimal: **one connection per
request**.  That costs a loopback TCP handshake per forward but buys
exact failure semantics — a dead, hung or partitioned replica affects
only the request in flight, there is no shared connection whose state
must be reconciled after an error, and concurrent forwards to the same
replica can never interleave frames.

Fault surface: every forward passes
:func:`repro.faults.service_check` with label
``route:<replica>:<op>`` *before* any byte is sent.  A chaos plan can
therefore partition the router from one replica
(``fail_service(match="route:replica-1:*")``) or make one replica look
hung (``delay_service(..., match="route:replica-2:query")``) without
touching the replica process itself — the failure is injected on the
wire, which is where real partitions live.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro import faults
from repro.errors import ProtocolError, ServiceUnavailableError
from repro.resilience import Deadline
from repro.service import protocol

__all__ = ["ReplicaTransport"]


class ReplicaTransport:
    """Forward single requests to one replica over fresh connections."""

    def __init__(self, name: str, host: str, port: int, *,
                 connect_timeout: float = 2.0,
                 max_line_bytes: int = 1 << 20) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.max_line_bytes = max_line_bytes

    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def request(self, doc: Dict[str, Any],
                      deadline: Deadline) -> Dict[str, Any]:
        """Send one request document, await its response document.

        Raises :class:`ServiceUnavailableError` when the replica cannot
        be reached or drops the connection mid-request (the router
        treats either as replica failure and fails over), and
        :class:`~repro.errors.DeadlineExceededError` when the caller's
        budget dies first.  Protocol-level garbage raises
        :class:`ProtocolError` — a replica speaking garbage is as
        ejectable as a dead one.
        """
        op = str(doc.get("op", "?"))
        deadline.check(f"route to {self.name}")
        # The partition/hang injection point: before any byte is sent,
        # so an injected partition drops the request exactly like a
        # network that ate the SYN.  An injected delay sleeps inside
        # the hook, so it runs in an executor — a "hung replica" must
        # stall only this forward, never the router's event loop.
        if faults.has_active_plan():
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, faults.service_check, "route", f"{self.name}:{op}"
                )
            except OSError as exc:  # InjectedFault: the wire ate the request
                raise ServiceUnavailableError(
                    f"replica {self.name} ({self.address()}) is "
                    f"partitioned from the router: {exc}"
                ) from exc
        budget = deadline.remaining()
        connect_budget = self.connect_timeout
        if budget is not None:
            connect_budget = min(connect_budget, budget)
        reader: Optional[asyncio.StreamReader] = None
        writer: Optional[asyncio.StreamWriter] = None
        try:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(
                        self.host, self.port, limit=self.max_line_bytes,
                    ),
                    timeout=connect_budget,
                )
            except asyncio.TimeoutError:
                raise ServiceUnavailableError(
                    f"replica {self.name} ({self.address()}) did not "
                    f"accept a connection within {connect_budget:.3f}s"
                ) from None
            except (ConnectionError, OSError) as exc:
                raise ServiceUnavailableError(
                    f"replica {self.name} ({self.address()}) refused "
                    f"the connection: {exc}"
                ) from exc
            writer.write(protocol.encode_line(doc))
            try:
                await asyncio.wait_for(writer.drain(),
                                       timeout=deadline.remaining())
                line = await asyncio.wait_for(reader.readline(),
                                              timeout=deadline.remaining())
            except asyncio.TimeoutError:
                deadline.check(f"response from {self.name}")
                raise ServiceUnavailableError(
                    f"replica {self.name} ({self.address()}) timed out "
                    f"mid-request"
                ) from None
            except (ConnectionError, OSError) as exc:
                raise ServiceUnavailableError(
                    f"replica {self.name} ({self.address()}) dropped "
                    f"the connection mid-request: {exc}"
                ) from exc
            if not line:
                raise ServiceUnavailableError(
                    f"replica {self.name} ({self.address()}) closed "
                    f"the connection without answering"
                )
            response = protocol.decode_line(line)
            if not isinstance(response.get("ok"), bool):
                raise ProtocolError(
                    f"replica {self.name} sent a response without an "
                    f"'ok' field"
                )
            return response
        finally:
            if writer is not None:
                writer.close()

    def __repr__(self) -> str:
        return f"ReplicaTransport({self.name!r}, {self.address()})"
