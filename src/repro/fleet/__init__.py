"""repro.fleet — a replicated query fleet behind one router.

The single-instance service (:mod:`repro.service`) already survives
overload, crashes of its parallel tasks, and graceful restarts.  This
package scales that to N replicas without giving up the determinism
the paper's snapshot representation buys:

* :mod:`repro.fleet.hashring` — consistent hashing of query sources
  onto replicas, so each replica's memoizing planner stays warm for
  the sources it owns;
* :mod:`repro.fleet.transport` — the router-side async transport, one
  fresh connection per forward, with the chaos harness's
  partition/hang injection point on the wire;
* :mod:`repro.fleet.router` — the front end: affinity-routed queries
  with breaker-gated failover, serialized ingest fan-out with
  receipt-consistency verification (divergence quarantines the
  replica), and health-driven rotation;
* :mod:`repro.fleet.supervisor` — process/store lifecycle: rolling
  restarts over PR 5's graceful drain, resync of lagging replicas
  from a donor's SnapshotStore, rebuild of diverged ones.

``python -m repro route --store DIR --replicas N`` runs a whole fleet
from the command line.
"""

from repro.fleet.hashring import ConsistentHashRing
from repro.fleet.router import FleetRouter, FleetRunner, Replica, RouterConfig
from repro.fleet.supervisor import FleetSupervisor, ManagedReplica
from repro.fleet.transport import ReplicaTransport

__all__ = [
    "ConsistentHashRing",
    "FleetRouter",
    "FleetRunner",
    "FleetSupervisor",
    "ManagedReplica",
    "Replica",
    "ReplicaTransport",
    "RouterConfig",
]
