"""Fleet lifecycle: bring up replicas, roll them, resync laggards.

The :class:`FleetSupervisor` owns what the router deliberately does
not: *processes and stores*.  The router only observes replicas over
TCP and votes them in or out of rotation; the supervisor creates the
replica stores (each replica gets its own copy of the base
SnapshotStore — fan-out and receipt consistency are only meaningful
when the replicas really are independent), starts each replica's
:class:`~repro.service.server.ServiceRunner`, and drives the two
recovery workflows the fleet needs:

* **Rolling restart** — one replica at a time: mark it draining at the
  router (no new work routes to it), run PR 5's graceful drain (its
  in-flight requests finish), restart it over the same store
  directory, resync it if ingests advanced the fleet meanwhile, and
  only then restore it to rotation.  Queries keep flowing to the other
  replicas throughout.
* **Resync** — a restarted or quarantined replica catches up from a
  healthy donor's SnapshotStore: the missing batches are read straight
  from the donor's store directory and replayed through the lagging
  replica's own ingest lane, so the catch-up path exercises exactly
  the code the live path does.  A replica whose history *diverged*
  (it is ahead of the fleet, or its batches disagree) cannot be
  replayed into agreement; :meth:`resync` refuses and the operator
  rebuilds it with :meth:`rebuild_replica` — a fresh store copied from
  the donor.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import FleetError, ResyncStalledError
from repro.evolving.store import SnapshotStore
from repro.fleet.router import FleetRouter, FleetRunner, RouterConfig
from repro.graph.edgeset import decode_edges
from repro.resilience import Deadline
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, ServiceRunner
from repro.service.state import ServiceState, WeightFn

__all__ = ["FleetSupervisor", "ManagedReplica"]


def _batch_pairs(edges) -> List[List[int]]:
    """An EdgeSet as the wire-format ``[[u, v], ...]`` pair list."""
    sources, targets = decode_edges(edges.codes)
    return [[int(u), int(v)] for u, v in zip(sources.tolist(),
                                             targets.tolist())]


class ManagedReplica:
    """One replica the supervisor owns: a store directory + a runner."""

    def __init__(self, name: str, store_dir: Path) -> None:
        self.name = name
        self.store_dir = store_dir
        self.runner: Optional[ServiceRunner] = None

    @property
    def port(self) -> Optional[int]:
        return None if self.runner is None else self.runner.port

    @property
    def running(self) -> bool:
        return self.runner is not None

    def __repr__(self) -> str:
        return (f"ManagedReplica({self.name!r}, port={self.port}, "
                f"store={self.store_dir})")


class FleetSupervisor:
    """Own N replicas and their router; drive restarts and resyncs."""

    def __init__(
        self,
        base_store: Union[str, Path],
        root: Union[str, Path],
        *,
        replicas: int = 3,
        weight_fn: Optional[WeightFn] = None,
        window: Optional[int] = None,
        service_config: Optional[Callable[[str], ServiceConfig]] = None,
        router_config: Optional[RouterConfig] = None,
        host: str = "127.0.0.1",
        resync_max_rounds: int = 16,
        resync_deadline_s: Optional[float] = 30.0,
    ) -> None:
        if replicas < 1:
            raise FleetError("a fleet needs at least one replica")
        if resync_max_rounds < 1:
            raise FleetError("resync_max_rounds must be >= 1")
        self.base_store = Path(base_store)
        self.root = Path(root)
        self.host = host
        self.weight_fn = weight_fn
        self.window = window
        #: Tip-chase budget: a resync may replay batches for at most
        #: this many rounds / seconds before :class:`ResyncStalledError`.
        self.resync_max_rounds = resync_max_rounds
        self.resync_deadline_s = resync_deadline_s
        #: Per-replica config factory (replicas may want distinct admission
        #: bounds in tests); defaults to a fresh default config each.
        self._service_config = service_config or (lambda name: ServiceConfig())
        self._router_config = router_config
        self.replicas: Dict[str, ManagedReplica] = {}
        for index in range(replicas):
            name = f"replica-{index}"
            store_dir = self.root / name / "store"
            store_dir.parent.mkdir(parents=True, exist_ok=True)
            shutil.copytree(self.base_store, store_dir)
            self.replicas[name] = ManagedReplica(name, store_dir)
        #: Next suffix for a provisioned replica's name (never reused, so
        #: a retired replica's metrics/receipts cannot be confused with a
        #: later one's).
        self._next_index = replicas
        self.router_runner: Optional[FleetRunner] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "FleetSupervisor":
        """Start every replica, then the router over them."""
        for replica in self.replicas.values():
            self._start_replica(replica)
        router = FleetRouter(
            [(name, self.host, replica.port)
             for name, replica in self.replicas.items()],
            self._router_config,
        )
        self.router_runner = FleetRunner(router).start()
        return self

    def stop(self) -> None:
        """Tear the whole fleet down (router first, then replicas)."""
        if self.router_runner is not None:
            self.router_runner.stop()
            self.router_runner = None
        for replica in self.replicas.values():
            self._stop_replica(replica)

    def __enter__(self) -> "FleetSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def router_port(self) -> int:
        if self.router_runner is None or self.router_runner.port is None:
            raise FleetError("the fleet router is not running")
        return self.router_runner.port

    def client(self, **kwargs: Any) -> ServiceClient:
        """A client speaking to the fleet router."""
        return ServiceClient(self.host, self.router_port, **kwargs)

    def replica_client(self, name: str, **kwargs: Any) -> ServiceClient:
        """A client speaking directly to one replica (tests, resync)."""
        replica = self._replica(name)
        if replica.port is None:
            raise FleetError(f"replica {name!r} is not running")
        return ServiceClient(self.host, replica.port, **kwargs)

    # -- replica process management -----------------------------------------
    def _replica(self, name: str) -> ManagedReplica:
        try:
            return self.replicas[name]
        except KeyError:
            raise FleetError(f"unknown replica {name!r}") from None

    def _start_replica(self, replica: ManagedReplica) -> None:
        state = ServiceState(
            SnapshotStore(replica.store_dir),
            weight_fn=self.weight_fn,
            window=self.window,
        )
        config = self._service_config(replica.name)
        config.host = self.host
        config.port = 0  # always an ephemeral port; the router is retargeted
        replica.runner = ServiceRunner(state, config).start()

    def _stop_replica(self, replica: ManagedReplica) -> None:
        if replica.runner is None:
            return
        runner = replica.runner
        replica.runner = None
        try:
            runner.stop()
        finally:
            runner.state.close()

    def kill_replica(self, name: str) -> None:
        """Non-graceful stop (the chaos 'crash'): in-flight work dies.

        The store directory survives, exactly like a real crash — the
        replica restarts from durable state via :meth:`restart_replica`.
        """
        replica = self._replica(name)
        if self.router_runner is not None:
            self.router_runner.eject(name, "killed")
        self._stop_replica(replica)

    def tip(self, name: str) -> int:
        """A replica's current absolute version, asked over its service."""
        with self.replica_client(name) as client:
            status = client.status()
        return int(status.get("window_last",
                              status.get("num_snapshots", 0) - 1))

    # -- resync -------------------------------------------------------------
    def _donor(self, exclude: str) -> str:
        """A healthy in-rotation replica to copy history from."""
        if self.router_runner is None:
            raise FleetError("the fleet router is not running")
        self.router_runner.probe()  # refresh health first
        rotation = [
            name for name, replica
            in self.router_runner.router.replicas.items()
            if replica.in_rotation and name != exclude
            and self.replicas[name].running
        ]
        if not rotation:
            raise FleetError(
                f"no healthy donor available to resync {exclude!r}"
            )
        return rotation[0]

    def resync(self, name: str, donor: Optional[str] = None, *,
               deadline: Optional[Deadline] = None) -> int:
        """Catch ``name`` up to the donor's tip; returns the new tip.

        Missing batches are read from the donor's SnapshotStore on disk
        and replayed through the lagging replica's own ingest lane.
        Refuses (``FleetError``) when the replica is *ahead* of the
        donor — that is divergence, not lag, and only
        :meth:`rebuild_replica` can reconcile it.  When ``deadline``
        expires mid-replay, :class:`ResyncStalledError` carries the
        batches already replayed (they are durable — a later resync
        resumes from the tip reached, not from scratch).
        """
        replica = self._replica(name)
        if not replica.running:
            raise FleetError(f"cannot resync {name!r}: it is not running")
        donor_name = donor if donor is not None else self._donor(name)
        donor_store = SnapshotStore(self.replicas[donor_name].store_dir)
        donor_tip = donor_store.num_snapshots - 1
        tip = self.tip(name)
        if tip > donor_tip:
            raise FleetError(
                f"replica {name!r} is ahead of donor {donor_name!r} "
                f"({tip} > {donor_tip}): its history diverged; rebuild it"
            )
        if tip == donor_tip:
            return tip
        replayed = 0
        with self.replica_client(name) as client:
            for index in range(tip, donor_tip):
                if deadline is not None and deadline.expired():
                    raise ResyncStalledError(
                        f"resync of {name!r} ran out of time after "
                        f"replaying {replayed} of {donor_tip - tip} "
                        f"batches (tip {tip + replayed})",
                        progress={
                            "replica": name,
                            "donor": donor_name,
                            "batches_replayed": replayed,
                            "batches_missing": donor_tip - tip - replayed,
                            "tip": tip + replayed,
                        },
                    )
                batch = donor_store.read_batch(index)
                client.ingest(
                    additions=_batch_pairs(batch.additions),
                    deletions=_batch_pairs(batch.deletions),
                )
                replayed += 1
        return self.tip(name)

    def _resync_and_restore(self, name: str, *,
                            max_rounds: Optional[int] = None,
                            deadline: Optional[Deadline] = None) -> int:
        """Resync until the replica holds the fleet tip, then restore.

        Under live ingest load the fleet tip can advance between our
        resync and the restore call; the router then (correctly)
        refuses the restore, and we catch up again.  Each round is much
        faster than one fan-out, so the chase normally converges in a
        round or two — but ingest *can* outrun it indefinitely, so the
        chase is bounded by ``max_rounds`` and ``deadline`` (supervisor
        defaults) and surfaces :class:`ResyncStalledError` with the
        partial progress when either budget is spent.
        """
        rounds = max_rounds if max_rounds is not None else self.resync_max_rounds
        if deadline is None:
            deadline = (Deadline.after(self.resync_deadline_s)
                        if self.resync_deadline_s is not None
                        else Deadline.never())
        last_refusal: Optional[FleetError] = None
        tip: Optional[int] = None
        completed = 0
        for _ in range(rounds):
            if deadline.expired():
                break
            tip = self.resync(name, deadline=deadline)
            completed += 1
            if self.router_runner is None:
                return tip
            try:
                self.router_runner.restore(name, version=tip)
                return tip
            except FleetError as exc:
                last_refusal = exc
                continue
        raise ResyncStalledError(
            f"replica {name!r} could not catch the fleet tip within "
            f"{completed} resync rounds (cap {rounds}, "
            f"{deadline!r}): {last_refusal}",
            progress={
                "replica": name,
                "rounds_completed": completed,
                "rounds_cap": rounds,
                "tip": tip,
                "deadline_expired": deadline.expired(),
                "last_refusal": (None if last_refusal is None
                                 else str(last_refusal)),
            },
        )

    def rebuild_replica(self, name: str) -> int:
        """Replace a diverged replica's store with a donor copy."""
        replica = self._replica(name)
        donor_name = self._donor(name)
        self._stop_replica(replica)
        shutil.rmtree(replica.store_dir)
        shutil.copytree(self.replicas[donor_name].store_dir,
                        replica.store_dir)
        self._start_replica(replica)
        self._retarget(name)
        return self._resync_and_restore(name)

    def _retarget(self, name: str) -> None:
        """Point the router at a replica's (new) listening port."""
        replica = self._replica(name)
        if self.router_runner is None or replica.port is None:
            return
        self.router_runner.set_address(name, self.host, replica.port)

    # -- restart workflows ---------------------------------------------------
    def restart_replica(self, name: str, *,
                        graceful: bool = True) -> Dict[str, Any]:
        """Drain (or stop), restart, resync, restore one replica.

        The graceful path is one step of a rolling restart: the router
        stops routing new work to the replica first, PR 5's drain lets
        its in-flight requests finish, and the replica re-enters
        rotation only once its store tip matches the fleet's again.
        Returns a small report for tests and the CLI.
        """
        replica = self._replica(name)
        report: Dict[str, Any] = {"replica": name, "graceful": graceful}
        if self.router_runner is not None:
            if graceful:
                self.router_runner.mark_draining(name)
            else:
                self.router_runner.eject(name, "restart")
        if replica.runner is not None:
            runner = replica.runner
            replica.runner = None
            try:
                if graceful:
                    report["drain"] = runner.drain()
                else:
                    runner.stop()
            finally:
                runner.state.close()
        self._start_replica(replica)
        self._retarget(name)
        report["tip"] = self._resync_and_restore(name)
        return report

    def rolling_restart(self) -> List[Dict[str, Any]]:
        """Gracefully restart every replica, one at a time."""
        return [self.restart_replica(name) for name in self.replicas]

    def recover_replica(self, name: str) -> Dict[str, Any]:
        """Bring a killed replica back: start, resync, restore."""
        replica = self._replica(name)
        if replica.running:
            raise FleetError(f"replica {name!r} is already running")
        self._start_replica(replica)
        self._retarget(name)
        return {"replica": name, "tip": self._resync_and_restore(name)}

    # -- elasticity ----------------------------------------------------------
    @staticmethod
    def _clone_store(donor_dir: Path, store_dir: Path) -> None:
        """Copy a donor's SnapshotStore that may be ingesting *right now*.

        The manifest is copied FIRST: batch files are immutable once the
        manifest references them, so every file the copied manifest
        names already exists with final contents — batches the donor
        appends after this point are simply absent from the clone, which
        is a consistent (merely older) store.  A plain ``copytree``
        would read the directory listing first and could pair a *newer*
        manifest with a listing that predates its newest batch file.
        """
        store_dir.mkdir(parents=True, exist_ok=True)
        for relative in ("manifest.json", "manifest.json.bak"):
            source = donor_dir / relative
            if source.exists():
                shutil.copy2(source, store_dir / relative)
        for source in sorted(donor_dir.iterdir()):
            if source.name.startswith("manifest.json"):
                continue
            if source.is_file():
                shutil.copy2(source, store_dir / source.name)

    def provision_replica(self, donor: Optional[str] = None, *,
                          deadline: Optional[Deadline] = None
                          ) -> Dict[str, Any]:
        """Grow the fleet by one replica: clone, start, resync, restore.

        The paper's mutation-free sharing is what makes this cheap — a
        new replica is a donor-store copy plus a receipt-ordered replay
        of whatever landed since the copy, not a recomputation.  On any
        failure the half-built replica is fully rolled back (router
        membership, process, store directory) so the fleet is never left
        half-configured.
        """
        donor_name = donor if donor is not None else self._donor(exclude="")
        name = f"replica-{self._next_index}"
        self._next_index += 1
        store_dir = self.root / name / "store"
        self._clone_store(self.replicas[donor_name].store_dir, store_dir)
        replica = ManagedReplica(name, store_dir)
        self.replicas[name] = replica
        routed = False
        try:
            self._start_replica(replica)
            if self.router_runner is not None:
                if replica.port is None:
                    raise FleetError(
                        f"replica {name!r} failed to bind a port")
                self.router_runner.add_replica(name, self.host, replica.port)
                routed = True
            tip = self._resync_and_restore(name, deadline=deadline)
        except BaseException:
            if routed and self.router_runner is not None:
                try:
                    self.router_runner.remove_replica(name)
                except FleetError:
                    pass
            self._stop_replica(replica)
            del self.replicas[name]
            shutil.rmtree(self.root / name, ignore_errors=True)
            raise
        return {"replica": name, "donor": donor_name, "tip": tip}

    def retire_replica(self, name: Optional[str] = None) -> Dict[str, Any]:
        """Shrink the fleet by one replica: drain, retire, delete.

        With no ``name``, retires the youngest (highest-numbered)
        running replica — the natural inverse of :meth:`provision_replica`.
        The replica is marked draining at the router first so no new
        work routes to it, its in-flight requests finish via the
        graceful drain, and only then do the process and store go away.
        """
        if name is None:
            candidates = [candidate for candidate, replica
                          in self.replicas.items() if replica.running]
            if not candidates:
                raise FleetError("no running replica to retire")
            name = max(candidates,
                       key=lambda value: int(value.rsplit("-", 1)[-1]))
        replica = self._replica(name)
        if len(self.replicas) <= 1:
            raise FleetError("refusing to retire the last replica")
        report: Dict[str, Any] = {"replica": name}
        if self.router_runner is not None and replica.running:
            self.router_runner.mark_draining(name)
        if replica.runner is not None:
            runner = replica.runner
            replica.runner = None
            try:
                report["drain"] = runner.drain()
            finally:
                runner.state.close()
        if self.router_runner is not None:
            self.router_runner.remove_replica(name)
        del self.replicas[name]
        shutil.rmtree(self.root / name, ignore_errors=True)
        return report

    def heal_replica(self, name: str) -> Dict[str, Any]:
        """Bring one unhealthy replica back by the cheapest working path.

        Stopped → :meth:`recover_replica`; lagging → resync + restore;
        diverged (resync refuses) → :meth:`rebuild_replica`.  A stalled
        resync propagates — the caller retries after its cooldown with
        the durable partial progress already banked.
        """
        replica = self._replica(name)
        if not replica.running:
            report = self.recover_replica(name)
            report["healed"] = "recover"
            return report
        try:
            tip = self._resync_and_restore(name)
            return {"replica": name, "tip": tip, "healed": "resync"}
        except ResyncStalledError:
            raise
        except FleetError:
            tip = self.rebuild_replica(name)
            return {"replica": name, "tip": tip, "healed": "rebuild"}

    def fleet_status(self) -> Dict[str, Any]:
        """The router's status document (one network round trip)."""
        with self.client() as client:
            return client.status()

    def __repr__(self) -> str:
        running = sum(1 for replica in self.replicas.values()
                      if replica.running)
        return (f"FleetSupervisor(replicas={len(self.replicas)}, "
                f"running={running}, root={self.root})")
