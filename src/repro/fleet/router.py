"""The fleet front end: one router, N ``GraphService`` replicas.

Request lifecycle::

    client line ──> validate (protocol) ──> dispatch
        query / temporal
               ──> consistent-hash owner of the source vertex
                   ──> per-replica circuit breaker ──> forward
                   ──> on replica failure: eject + fail over to the
                   next ring owner, caller's Deadline still honoured
        ingest ──> serialised fan-out to every replica in rotation
                   ──> receipt-consistency check (same batch => same
                   version everywhere); a diverging or missing receipt
                   quarantines that replica until it is resynced
        update ──> serialised fan-out of one single-edge live-tip
                   update (same order as ingests); receipts must agree
                   on ``(tip_version, overlay_depth)`` — the durable
                   tip plus how deep the pending overlay log is —
                   since deterministic compaction keeps replicas in
                   lockstep; divergence quarantines, a refusal every
                   replica agrees on passes through unchanged
        status ──> fleet health: per-replica state, ring, receipts

Design points:

* **Cache affinity** — queries are routed by consistent hashing on the
  source vertex (:class:`~repro.fleet.hashring.ConsistentHashRing`), so
  repeated and overlapping queries for one source keep hitting the same
  replica's memoizing planner instead of spraying cold caches.
* **Receipt consistency** — the paper's mutation-free snapshot
  representation makes replicas deterministic: the same batch appended
  to the same store tip yields the same absolute version on every
  replica.  The router verifies exactly that on every fan-out; a
  replica whose receipt diverges (or that missed the batch) no longer
  matches the fleet's history and is *quarantined* — out of rotation
  until the supervisor resyncs it from a healthy replica's
  SnapshotStore.
* **Health-driven failover** — a replica that cannot be reached is
  ejected and its hash range implicitly reassigned (the ring simply
  loses its points); the failed query retries on the next ring owner
  under the same deadline.  Per-replica circuit breakers stop the
  router from hammering a dead replica with connection attempts.
* **Sheds pass through, draining does not** — a genuine overload shed
  from a replica is backpressure the caller must see (fleet
  conservation counts it as an answer); a ``draining`` shed means the
  replica is being rolled, so the router reroutes instead of bouncing
  the caller off a shutdown in progress.
* **Lifecycle mirroring** — ``status`` exposes the same
  ``live`` / ``ready`` / ``draining`` vocabulary as a single replica,
  where ``ready`` means "at least one replica in rotation".
"""

from __future__ import annotations

import asyncio
import random
import threading
from collections import Counter as TallyCounter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FleetError,
    ProtocolError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.fleet.hashring import ConsistentHashRing
from repro.fleet.transport import ReplicaTransport
from repro.obs.clock import Clock
from repro.resilience import CircuitBreaker, Deadline
from repro.service import protocol

__all__ = ["FleetRouter", "FleetRunner", "Replica", "RouterConfig"]

#: Replica states as the router tracks them.  ``ready`` is the only
#: in-rotation state; the others say *why* a replica is out and what it
#: takes to come back (probe for ``unhealthy``, supervisor resync for
#: ``quarantined``, supervisor restore for ``draining``).
REPLICA_STATES = ("ready", "unhealthy", "quarantined", "draining")


@dataclass
class RouterConfig:
    """Tunables of one fleet router."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick an ephemeral port
    #: Per-request wall-clock budget (``None`` = unbounded); a client
    #: ``timeout_ms`` can only shrink it.  The budget covers *every*
    #: failover attempt of the request, not each one separately.
    request_timeout: Optional[float] = 30.0
    #: Budget for establishing one replica connection.
    connect_timeout: float = 2.0
    #: Virtual points per replica on the hash ring.
    vnodes: int = 64
    #: Consecutive forward failures before a replica's breaker opens.
    breaker_failure_threshold: int = 3
    #: Seconds an open replica breaker waits before admitting a probe.
    breaker_reset_timeout: float = 1.0
    #: Seconds between background health probes (``None`` disables the
    #: probe task; the supervisor or tests call :meth:`probe` directly).
    #: Deprecated spelling — prefer :attr:`probe_interval_s`.
    health_interval: Optional[float] = None
    #: Seconds between background health probes (canonical name).  Wins
    #: over ``health_interval`` when both are set.
    probe_interval_s: Optional[float] = None
    #: Per-cycle jitter as a fraction of the interval: each probe sleeps
    #: ``interval * (1 + jitter * u)`` with ``u`` uniform in [0, 1), so N
    #: routers/autopilots started together drift apart instead of
    #: synchronizing probe storms against the same replicas.
    probe_jitter: float = 0.2
    #: Seed for the jitter stream (``None`` = derive from the router's
    #: listening port, which already differs per router).
    probe_jitter_seed: Optional[int] = None
    #: Hard cap on one request line.
    max_line_bytes: int = 1 << 20
    #: Injected time source for the breakers (tests pass ``FakeClock``).
    clock: Optional[Clock] = None

    def probe_interval(self) -> Optional[float]:
        """The effective probe interval (canonical name wins)."""
        if self.probe_interval_s is not None:
            return self.probe_interval_s
        return self.health_interval


class Replica:
    """The router's view of one replica (event-loop-confined)."""

    def __init__(self, name: str, host: str, port: int, *,
                 connect_timeout: float, max_line_bytes: int,
                 breaker: CircuitBreaker) -> None:
        self.name = name
        self.transport = ReplicaTransport(
            name, host, port, connect_timeout=connect_timeout,
            max_line_bytes=max_line_bytes,
        )
        self.state = "ready"
        self.reason: Optional[str] = None
        self.breaker = breaker
        #: Last ingest receipt version this replica agreed to.
        self.version: Optional[int] = None

    @property
    def in_rotation(self) -> bool:
        return self.state == "ready"

    def set_address(self, host: str, port: int) -> None:
        self.transport = ReplicaTransport(
            self.name, host, port,
            connect_timeout=self.transport.connect_timeout,
            max_line_bytes=self.transport.max_line_bytes,
        )

    def snapshot(self) -> Dict[str, Any]:
        return {
            "address": self.transport.address(),
            "state": self.state,
            "reason": self.reason,
            "version": self.version,
            "breaker": self.breaker.snapshot(),
        }

    def __repr__(self) -> str:
        return (f"Replica({self.name!r}, {self.transport.address()}, "
                f"{self.state})")


class FleetRouter:
    """Route queries by source affinity, fan ingests to every replica."""

    def __init__(self, replicas: Sequence[Tuple[str, str, int]],
                 config: Optional[RouterConfig] = None) -> None:
        self.config = config or RouterConfig()
        if not replicas:
            raise FleetError("a fleet needs at least one replica")
        names = [name for name, _, _ in replicas]
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate replica names in {names}")
        self.replicas: Dict[str, Replica] = {
            name: Replica(
                name, host, port,
                connect_timeout=self.config.connect_timeout,
                max_line_bytes=self.config.max_line_bytes,
                breaker=self._make_breaker(name),
            )
            for name, host, port in replicas
        }
        self.ring = ConsistentHashRing(names, vnodes=self.config.vnodes)
        #: Absolute version of the last fleet-agreed ingest receipt.
        self.fleet_version: Optional[int] = None
        #: Pending live-tip updates per the last agreed update receipt
        #: (0 after any ingest or compaction — both fold the log).
        self.fleet_overlay_depth: int = 0
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {
            "connections": 0, "requests": 0, "queries": 0, "temporals": 0,
            "ingests": 0, "updates": 0, "answered": 0, "shed": 0,
            "errors": 0, "failovers": 0, "ejections": 0, "rebalances": 0,
            "receipt_divergences": 0, "probes": 0,
        }
        #: Last autopilot status payload published via
        #: :meth:`set_autopilot`; surfaced verbatim in ``status``.
        self.autopilot: Optional[Dict[str, Any]] = None
        self._ingest_lock: Optional[asyncio.Lock] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._health_task: Optional["asyncio.Task[None]"] = None
        self._live = False
        self._unregister_collector = lambda: None

    def _make_breaker(self, name: str) -> CircuitBreaker:
        def record_transition(previous: str, to: str) -> None:
            obs.counter_inc("repro_breaker_transitions_total",
                            breaker=f"replica:{name}", to=to)

        return CircuitBreaker(
            f"replica:{name}",
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout,
            clock=self.config.clock,
            on_transition=record_transition,
        )

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self._ingest_lock = asyncio.Lock()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=self.config.max_line_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._live = True
        self._unregister_collector = obs.register_collector(
            self._collect_metrics
        )
        await self._initial_sync()
        interval = self.config.probe_interval()
        if interval is not None:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop(interval)
            )

    async def _initial_sync(self) -> None:
        """Learn the fleet tip: probe every replica's status once.

        The highest reachable tip becomes ``fleet_version``; replicas
        behind it are quarantined as lagging (they need a resync before
        they may serve), unreachable ones are ejected as unhealthy.
        A router that reaches nobody still starts — it serves status
        and answers queries with ``ServiceUnavailableError`` until a
        probe or the supervisor brings replicas back.
        """
        deadline = Deadline.after(self.config.connect_timeout * 2)
        tips: Dict[str, int] = {}
        for name, replica in self.replicas.items():
            try:
                status = await replica.transport.request(
                    {"op": "status"}, deadline
                )
            except (ServiceError, DeadlineExceededError):
                self._eject(name, "unreachable")
                continue
            tips[name] = int(status.get("window_last",
                                        status.get("num_snapshots", 0) - 1))
        if not tips:
            return
        tip = max(tips.values())
        self.fleet_version = tip
        for name, version in tips.items():
            self.replicas[name].version = version
            if version != tip:
                self._quarantine(name, "lagging")

    def request_stop(self) -> None:
        """Stop accepting and drop open connections (idempotent)."""
        if self._stop is not None:
            self._stop.set()

    async def wait_closed(self) -> None:
        assert self._stop is not None and self._server is not None
        await self._stop.wait()
        if self._health_task is not None:
            self._health_task.cancel()
        self._server.close()
        for writer in list(self._writers):
            writer.close()
        await self._server.wait_closed()
        self._live = False
        self._unregister_collector()

    async def run(self) -> None:
        await self.start()
        await self.wait_closed()

    async def _health_loop(self, interval: float) -> None:
        seed = self.config.probe_jitter_seed
        rng = random.Random(seed if seed is not None else self.port)
        while True:
            await asyncio.sleep(
                interval * (1.0 + self.config.probe_jitter * rng.random())
            )
            try:
                await self.probe()
            except ReproError:
                # A probe sweep that fails wholesale (e.g. every replica
                # mid-restart) must not kill the health task; the next
                # tick retries and the per-replica state already records
                # what is out.
                continue

    def _lifecycle_payload(self) -> Dict[str, Any]:
        return {
            "live": self._live,
            "ready": self._live and bool(self._rotation()),
            "draining": False,
        }

    def _collect_metrics(self, registry: "obs.MetricsRegistry") -> None:
        """Scrape-time bridge: replica health and breakers → gauges."""
        def gauge(name: str, value: float, **labels: str) -> None:
            obs.instruments.family(registry, name).labels(**labels).set(value)

        for name, replica in self.replicas.items():
            gauge("repro_fleet_replica_up", 1 if replica.in_rotation else 0,
                  replica=name)

    # -- rotation management -------------------------------------------------
    def _rotation(self) -> List[str]:
        return [name for name, replica in self.replicas.items()
                if replica.in_rotation]

    def _replica(self, name: str) -> Replica:
        try:
            return self.replicas[name]
        except KeyError:
            raise FleetError(f"unknown replica {name!r}") from None

    def _leave_rotation(self, name: str, state: str, reason: str) -> None:
        replica = self._replica(name)
        was_in_rotation = replica.in_rotation
        replica.state = state
        replica.reason = reason
        if was_in_rotation:
            self.ring.remove(name)
            self.counters["ejections"] += 1
            self.counters["rebalances"] += 1
            obs.counter_inc("repro_fleet_ejections_total",
                            replica=name, reason=reason)
            obs.counter_inc("repro_fleet_rebalance_total")

    def _eject(self, name: str, reason: str) -> None:
        """Out of rotation; a successful health probe brings it back."""
        self._leave_rotation(name, "unhealthy", reason)

    def _quarantine(self, name: str, reason: str) -> None:
        """Out of rotation; only a supervisor resync brings it back —
        the replica's store no longer matches the fleet's history."""
        self._leave_rotation(name, "quarantined", reason)

    async def eject(self, name: str, reason: str = "operator") -> None:
        self._eject(name, reason)

    async def mark_draining(self, name: str) -> None:
        """Rolling-restart step 1: route nothing new to this replica."""
        self._leave_rotation(name, "draining", "draining")

    async def restore(self, name: str,
                      version: Optional[int] = None) -> None:
        """Bring a replica back into rotation (after probe or resync).

        Holds the ingest lock: the tip comparison is only meaningful
        once no fan-out is in flight — otherwise a replica could rejoin
        while a batch it never saw is mid-air, and the *next* batch
        would quarantine it straight back out.
        """
        replica = self._replica(name)
        assert self._ingest_lock is not None
        async with self._ingest_lock:
            if self.fleet_overlay_depth and self._rotation():
                # Pending live-tip updates exist only in the in-rotation
                # replicas' overlays — no durable store a resync could
                # have copied them from.  Fold them fleet-wide first, so
                # the returning replica only has to match the durable
                # tip.  The flush advances the fleet tip; the caller's
                # resync/restore loop chases it.
                deadline = Deadline.after(self.config.connect_timeout * 2)
                await self._fanout_update(
                    self._forward_doc(
                        {"op": "update", "kind": "compact"}, deadline
                    ),
                    deadline,
                )
            if version is not None:
                replica.version = version
            if (self.fleet_version is not None
                    and replica.version is not None
                    and replica.version != self.fleet_version):
                raise FleetError(
                    f"refusing to restore {name}: its tip "
                    f"{replica.version} does not match fleet tip "
                    f"{self.fleet_version}; resync it first"
                )
            if not replica.in_rotation:
                replica.state = "ready"
                replica.reason = None
                self.ring.add(name)
                self.counters["rebalances"] += 1
                obs.counter_inc("repro_fleet_rebalance_total")

    async def set_address(self, name: str, host: str, port: int) -> None:
        self._replica(name).set_address(host, port)

    async def add_replica(self, name: str, host: str, port: int) -> None:
        """Grow-path step 1: make the router aware of a new replica.

        The replica joins *quarantined*, not in rotation — it was just
        cloned from a donor and has to prove (resync + :meth:`restore`)
        that it holds the fleet tip before any work routes to it.  That
        keeps membership changes single-phased: either the replica
        completes the whole provision workflow and enters rotation, or
        it stays invisible to request routing.
        """
        if name in self.replicas:
            raise FleetError(f"replica {name!r} already exists")
        replica = Replica(
            name, host, port,
            connect_timeout=self.config.connect_timeout,
            max_line_bytes=self.config.max_line_bytes,
            breaker=self._make_breaker(name),
        )
        replica.state = "quarantined"
        replica.reason = "provisioning"
        self.replicas[name] = replica

    async def remove_replica(self, name: str) -> None:
        """Forget a replica entirely (retire, or grow rollback).

        Holds the ingest lock so a fan-out in flight settles its
        receipts against the membership it started with.
        """
        replica = self._replica(name)
        assert self._ingest_lock is not None
        async with self._ingest_lock:
            if replica.in_rotation:
                self.ring.remove(name)
                self.counters["rebalances"] += 1
                obs.counter_inc("repro_fleet_rebalance_total")
            del self.replicas[name]

    async def set_autopilot(self, payload: Optional[Dict[str, Any]]) -> None:
        """Publish the autopilot's status into the router status doc."""
        self.autopilot = payload

    async def probe(self) -> Dict[str, str]:
        """One health sweep: try to bring ``unhealthy`` replicas back.

        An unhealthy replica that answers status, reports itself live
        and ready, and sits exactly at the fleet tip re-enters rotation;
        quarantined and draining replicas are left to the supervisor
        (their stores need resync / their drain needs to finish).
        Returns the per-replica verdicts for tests and the CLI.
        """
        self.counters["probes"] += 1
        verdicts: Dict[str, str] = {}
        for name, replica in self.replicas.items():
            if replica.state != "unhealthy":
                verdicts[name] = replica.state
                continue
            deadline = Deadline.after(self.config.connect_timeout)
            try:
                status = await replica.transport.request(
                    {"op": "status"}, deadline
                )
            except (ServiceError, DeadlineExceededError):
                verdicts[name] = "unhealthy"
                continue
            lifecycle = status.get("lifecycle", {})
            tip = int(status.get("window_last",
                                 status.get("num_snapshots", 0) - 1))
            replica.version = tip
            if not (status.get("ok") and lifecycle.get("ready")):
                verdicts[name] = "unhealthy"
            elif self.fleet_version is not None and tip != self.fleet_version:
                self._quarantine(name, "lagging")
                verdicts[name] = "quarantined"
            else:
                try:
                    await self.restore(name, version=tip)
                except FleetError:
                    # The fleet tip moved while we probed: the replica
                    # is now behind after all.  Resync territory.
                    self._quarantine(name, "lagging")
                    verdicts[name] = "quarantined"
                    continue
                replica.breaker.record_success()
                verdicts[name] = "ready"
        return verdicts

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, self._error_response(
                        None, ProtocolError(
                            "request line exceeds "
                            f"{self.config.max_line_bytes} bytes"
                        )))
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                await self._send(writer, response)
                if response.get("op") == "shutdown" and response.get("ok"):
                    self.request_stop()
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _send(self, writer: asyncio.StreamWriter,
                    response: Dict[str, Any]) -> None:
        writer.write(protocol.encode_line(response))
        await writer.drain()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        self.counters["requests"] += 1
        request_id = None
        try:
            doc = protocol.decode_line(line)
            request_id = doc.get("id")
            protocol.validate_request(doc)
            response = await self._dispatch(doc)
        except ReproError as exc:
            response = self._error_response(request_id, exc)
        except Exception as exc:  # never let a handler kill the router
            response = self._error_response(request_id, exc)
        if request_id is not None:
            response["id"] = request_id
        return response

    def _error_response(self, request_id: Optional[Any],
                        exc: BaseException) -> Dict[str, Any]:
        response: Dict[str, Any] = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
        if isinstance(exc, ServiceOverloadedError):
            self.counters["shed"] += 1
            response["overloaded"] = True
            response["retry_after_ms"] = exc.retry_after_ms
        else:
            self.counters["errors"] += 1
            obs.counter_inc("repro_errors_total")
        if isinstance(exc, ServiceUnavailableError):
            response["unavailable"] = True
        if request_id is not None:
            response["id"] = request_id
        return response

    # -- dispatch ------------------------------------------------------------
    async def _dispatch(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        op = doc["op"]
        if op == "ping":
            return {"ok": True, "op": "ping", "fleet": True}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "status":
            return self._handle_status()
        if op == "ingest":
            return await self._handle_ingest(doc)
        if op == "update":
            return await self._handle_update(doc)
        # query and temporal are both source-affine reads: route them by
        # the same consistent hash so a temporal batch lands on the
        # replica whose planner cache already holds that source's ranges.
        return await self._handle_query(doc)

    def _request_deadline(self, doc: Dict[str, Any]) -> Deadline:
        budget = self.config.request_timeout
        timeout_ms = doc.get("timeout_ms")
        if timeout_ms is not None:
            client_budget = timeout_ms / 1000.0
            budget = (client_budget if budget is None
                      else min(budget, client_budget))
        return (Deadline.after(budget) if budget is not None
                else Deadline.never())

    def _forward_doc(self, doc: Dict[str, Any],
                     deadline: Deadline) -> Dict[str, Any]:
        """The request as forwarded: no client id, remaining budget."""
        forward = {key: value for key, value in doc.items() if key != "id"}
        remaining = deadline.remaining()
        if remaining is not None:
            forward["timeout_ms"] = max(1, int(remaining * 1000))
        return forward

    def _handle_status(self) -> Dict[str, Any]:
        obs.counter_inc("repro_fleet_requests_total", op="status")
        return {
            "ok": True,
            "op": "status",
            "fleet": {
                "replicas": {
                    name: replica.snapshot()
                    for name, replica in self.replicas.items()
                },
                "rotation": sorted(self._rotation()),
                "fleet_version": self.fleet_version,
                "fleet_overlay_depth": self.fleet_overlay_depth,
                "vnodes": self.config.vnodes,
            },
            "autopilot": self.autopilot,
            "server": dict(self.counters),
            "lifecycle": self._lifecycle_payload(),
            "observability": obs.describe(),
        }

    # -- queries -------------------------------------------------------------
    async def _handle_query(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        op = doc["op"]
        self.counters["temporals" if op == "temporal" else "queries"] += 1
        obs.counter_inc("repro_fleet_requests_total", op=op)
        source = doc["source"]
        deadline = self._request_deadline(doc)
        tried: Set[str] = set()
        failovers = 0
        last_error: Optional[BaseException] = None
        with obs.phase_span("router", op, label=f"src:{source}"):
            # Each pass recomputes the owner list: an ejection mid-loop
            # reassigns the source's hash range to the survivors.
            for _ in range(len(self.replicas) + 1):
                deadline.check(f"route query for source {source}")
                rotation = self._rotation()
                candidates = [
                    name for name in (
                        self.ring.owners(source, len(rotation))
                        if rotation else []
                    )
                    if name not in tried
                ]
                if not candidates:
                    break
                name = candidates[0]
                replica = self.replicas[name]
                try:
                    replica.breaker.before_call(f"query via {name}")
                except CircuitOpenError as exc:
                    # The breaker remembers this replica failing
                    # recently; skip it without another connection
                    # attempt, but leave it in rotation — the breaker's
                    # own half-open probe decides when to try again.
                    tried.add(name)
                    last_error = exc
                    continue
                try:
                    response = await replica.transport.request(
                        self._forward_doc(doc, deadline), deadline
                    )
                except DeadlineExceededError:
                    # The caller's budget died; that says nothing
                    # definitive about the replica.
                    replica.breaker.record_neutral()
                    raise
                except (ServiceUnavailableError, ProtocolError) as exc:
                    replica.breaker.record_failure()
                    self._eject(name, "unreachable")
                    tried.add(name)
                    failovers += 1
                    last_error = exc
                    self.counters["failovers"] += 1
                    obs.counter_inc("repro_fleet_failover_total")
                    continue
                replica.breaker.record_success()
                if (not response.get("ok") and response.get("overloaded")
                        and response.get("draining")):
                    # The replica is being rolled: reroute instead of
                    # bouncing the caller off a shutdown in progress.
                    self._eject(name, "draining")
                    tried.add(name)
                    failovers += 1
                    self.counters["failovers"] += 1
                    obs.counter_inc("repro_fleet_failover_total")
                    continue
                if not response.get("ok"):
                    if response.get("overloaded"):
                        self.counters["shed"] += 1
                    else:
                        self.counters["errors"] += 1
                else:
                    self.counters["answered"] += 1
                response["replica"] = name
                if failovers:
                    response["failovers"] = failovers
                return response
        raise ServiceUnavailableError(
            f"no replica in rotation could answer the query for source "
            f"{source} (tried {sorted(tried) or 'none'}): {last_error!r}"
        )

    # -- ingest --------------------------------------------------------------
    async def _handle_ingest(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        protocol.parse_ingest_batch(doc)  # reject garbage before fan-out
        obs.counter_inc("repro_fleet_requests_total", op="ingest")
        deadline = self._request_deadline(doc)
        assert self._ingest_lock is not None
        # Serialised: receipts can only be strictly consecutive if
        # batches reach every replica in one global order.
        async with self._ingest_lock:
            rotation = self._rotation()
            if not rotation:
                raise ServiceUnavailableError(
                    "no replicas in rotation to ingest into"
                )
            forward = self._forward_doc(doc, deadline)
            with obs.phase_span("router", "ingest",
                                replicas=len(rotation)):
                legs = await asyncio.gather(*(
                    self._ingest_leg(name, forward, deadline)
                    for name in rotation
                ))
            return self._settle_receipts(rotation, legs)

    async def _ingest_leg(
        self, name: str, forward: Dict[str, Any], deadline: Deadline,
    ) -> Tuple[str, Optional[Dict[str, Any]], Optional[BaseException], float]:
        """One fan-out leg: ``(name, response, error, elapsed)``."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        replica = self.replicas[name]
        try:
            replica.breaker.before_call(f"ingest via {name}")
        except CircuitOpenError as exc:
            return name, None, exc, loop.time() - started
        try:
            response = await replica.transport.request(forward, deadline)
        except (ServiceError, DeadlineExceededError) as exc:
            replica.breaker.record_failure()
            return name, None, exc, loop.time() - started
        replica.breaker.record_success()
        return name, response, None, loop.time() - started

    def _settle_receipts(
        self,
        rotation: List[str],
        legs: List[Tuple[str, Optional[Dict[str, Any]],
                         Optional[BaseException], float]],
    ) -> Dict[str, Any]:
        """Verify fan-out receipts; quarantine divergent replicas.

        The consistency law: every replica that applied the batch must
        report the same absolute version, and that version must be the
        fleet's next consecutive receipt.  Violators leave rotation —
        a replica whose history no longer matches the fleet's cannot be
        allowed to answer queries.
        """
        receipts: Dict[str, Dict[str, Any]] = {}
        shed: Optional[Dict[str, Any]] = None
        failed: List[str] = []
        for name, response, error, _elapsed in legs:
            if error is not None:
                # Unknown whether the batch landed on this replica —
                # its store may or may not carry it.  Quarantine: only
                # a resync can reconcile it with the fleet history.
                failed.append(name)
                continue
            if response.get("ok"):
                receipts[name] = response
            elif response.get("overloaded"):
                shed = response  # admission refused: batch NOT applied
            else:
                failed.append(name)
        if not receipts:
            if shed is not None and not failed:
                # Every replica shed the batch: nothing was applied
                # anywhere, the fleet is still consistent — pass the
                # backpressure through untouched.
                self.counters["shed"] += 1
                return dict(shed)
            for name in failed:
                self._quarantine(name, "ingest_failed")
            raise FleetError(
                f"ingest reached no replica (failed: {sorted(failed)}); "
                "fleet needs supervisor attention"
            )
        # At least one replica applied the batch: anyone who didn't is
        # now behind the fleet history.
        for name, response, error, _elapsed in legs:
            if name in receipts:
                continue
            reason = ("ingest_failed" if error is not None or shed is None
                      else "missed_ingest")
            self._quarantine(name, reason)
        versions = {name: receipt.get("version")
                    for name, receipt in receipts.items()}
        tally = TallyCounter(versions.values())
        expected = (None if self.fleet_version is None
                    else self.fleet_version + 1)
        if expected is not None and expected in tally:
            agreed = expected
        else:
            agreed = tally.most_common(1)[0][0]
        for name, version in versions.items():
            if version != agreed:
                self.counters["receipt_divergences"] += 1
                self._quarantine(name, "divergence")
                del receipts[name]
        if not receipts:
            raise FleetError(
                f"ingest receipts diverged beyond reconciliation "
                f"({versions}); fleet needs supervisor attention"
            )
        self.fleet_version = int(agreed)
        # Every replica folds its pending live-tip updates before
        # appending an ingested batch, so an agreed ingest receipt
        # means the overlay log is empty fleet-wide.
        self.fleet_overlay_depth = 0
        for name in receipts:
            self.replicas[name].version = int(agreed)
        elapsed = [leg_elapsed for name, _, _, leg_elapsed in legs
                   if name in receipts]
        if len(elapsed) > 1:
            obs.observe("repro_fleet_fanout_lag_seconds",
                        max(elapsed) - min(elapsed))
        self.counters["ingests"] += 1
        self.counters["answered"] += 1
        reference = next(receipts[name] for name in rotation
                         if name in receipts)
        response = dict(reference)
        response.update({
            "ok": True,
            "op": "ingest",
            "replicas": len(receipts),
            "fleet_version": self.fleet_version,
        })
        return response

    # -- live-tip updates ----------------------------------------------------
    async def _handle_update(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        protocol.parse_update(doc)  # reject garbage before fan-out
        obs.counter_inc("repro_fleet_requests_total", op="update")
        deadline = self._request_deadline(doc)
        assert self._ingest_lock is not None
        # Serialised with ingests: overlay receipts only agree if every
        # replica sees updates and batches in one global order.
        async with self._ingest_lock:
            return await self._fanout_update(
                self._forward_doc(doc, deadline), deadline
            )

    async def _fanout_update(self, forward: Dict[str, Any],
                             deadline: Deadline) -> Dict[str, Any]:
        """Fan one update to the rotation (ingest lock must be held)."""
        rotation = self._rotation()
        if not rotation:
            raise ServiceUnavailableError(
                "no replicas in rotation to update"
            )
        with obs.phase_span("router", "update", replicas=len(rotation)):
            legs = await asyncio.gather(*(
                self._ingest_leg(name, forward, deadline)
                for name in rotation
            ))
        return self._settle_update_receipts(rotation, legs)

    def _settle_update_receipts(
        self,
        rotation: List[str],
        legs: List[Tuple[str, Optional[Dict[str, Any]],
                         Optional[BaseException], float]],
    ) -> Dict[str, Any]:
        """Verify update receipts; quarantine divergent replicas.

        The consistency law for the live tip: every replica that
        applied the update must agree on ``(tip_version,
        overlay_depth)``.  The overlay ``seq`` is deliberately *not*
        compared — it is monotonic per overlay instance and resets when
        a replica restarts, while the durable tip plus pending depth
        pins the actual stream position.  Deterministic count-based
        compaction folds at the same stream point everywhere, so a
        depth mismatch means a replica missed an update (or folded on
        its own) and no longer matches the fleet's history.
        """
        receipts: Dict[str, Dict[str, Any]] = {}
        errored: Dict[str, Dict[str, Any]] = {}
        shed: Optional[Dict[str, Any]] = None
        failed: List[str] = []
        for name, response, error, _elapsed in legs:
            if error is not None:
                failed.append(name)
            elif response.get("ok"):
                receipts[name] = response
            elif response.get("overloaded"):
                shed = response  # live lane refused: update NOT applied
            else:
                errored[name] = response
        if not receipts:
            if not failed:
                # Nothing was applied anywhere — the fleet is still
                # consistent.  A deterministic refusal (insert of a
                # present edge, live tip disabled) passes through; so
                # does unanimous backpressure.
                if errored:
                    self.counters["errors"] += 1
                    return dict(next(iter(errored.values())))
                assert shed is not None
                self.counters["shed"] += 1
                return dict(shed)
            for name in failed:
                self._quarantine(name, "update_failed")
            raise FleetError(
                f"update reached no replica (failed: {sorted(failed)}); "
                "fleet needs supervisor attention"
            )
        # At least one replica absorbed the update: anyone who didn't
        # is now behind the fleet's update stream.
        for name, response, error, _elapsed in legs:
            if name in receipts:
                continue
            reason = ("update_failed" if error is not None
                      else "missed_update")
            self._quarantine(name, reason)
        keys = {
            name: (receipt.get("tip_version"),
                   receipt.get("overlay_depth"))
            for name, receipt in receipts.items()
        }
        tally = TallyCounter(keys.values())
        agreed = tally.most_common(1)[0][0]
        for name, key in keys.items():
            if key != agreed:
                self.counters["receipt_divergences"] += 1
                self._quarantine(name, "divergence")
                del receipts[name]
        if not receipts:
            raise FleetError(
                f"update receipts diverged beyond reconciliation "
                f"({keys}); fleet needs supervisor attention"
            )
        tip, depth = agreed
        if tip is not None:
            self.fleet_version = int(tip)
            for name in receipts:
                self.replicas[name].version = int(tip)
        self.fleet_overlay_depth = int(depth or 0)
        self.counters["updates"] += 1
        self.counters["answered"] += 1
        reference = next(receipts[name] for name in rotation
                         if name in receipts)
        response = dict(reference)
        response.update({
            "ok": True,
            "op": "update",
            "replicas": len(receipts),
            "fleet_version": self.fleet_version,
        })
        return response


class FleetRunner:
    """Run a :class:`FleetRouter` on a background thread.

    Mirrors :class:`~repro.service.server.ServiceRunner`, plus
    thread-safe control methods (:meth:`eject`, :meth:`restore`,
    :meth:`mark_draining`, :meth:`set_address`, :meth:`probe`) that the
    supervisor and tests use to drive rotation changes — each one runs
    the corresponding coroutine on the router's own event loop, which
    is what keeps the router free of locks.
    """

    def __init__(self, router: FleetRouter) -> None:
        self.router = router
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "FleetRunner":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-fleet-router", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("fleet router failed to start within 30s")
        if self._startup_error is not None:
            raise ServiceError(
                f"fleet router failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=30)

    def call(self, factory, timeout: float = 30.0):
        """Run ``factory()`` (a coroutine) on the router's event loop."""
        if self._loop is None:
            raise ServiceError("the fleet router never started")
        future = asyncio.run_coroutine_threadsafe(factory(), self._loop)
        return future.result(timeout=timeout)

    def eject(self, name: str, reason: str = "operator") -> None:
        self.call(lambda: self.router.eject(name, reason))

    def mark_draining(self, name: str) -> None:
        self.call(lambda: self.router.mark_draining(name))

    def restore(self, name: str, version: Optional[int] = None) -> None:
        self.call(lambda: self.router.restore(name, version=version))

    def set_address(self, name: str, host: str, port: int) -> None:
        self.call(lambda: self.router.set_address(name, host, port))

    def add_replica(self, name: str, host: str, port: int) -> None:
        self.call(lambda: self.router.add_replica(name, host, port))

    def remove_replica(self, name: str) -> None:
        self.call(lambda: self.router.remove_replica(name))

    def set_autopilot(self, payload: Optional[Dict[str, Any]]) -> None:
        self.call(lambda: self.router.set_autopilot(payload))

    def probe(self) -> Dict[str, str]:
        return self.call(self.router.probe)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.router.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.port = self.router.port
        self._started.set()
        await self.router.wait_closed()

    def __enter__(self) -> "FleetRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
