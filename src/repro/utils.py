"""Small shared utilities: vectorised range concatenation and timers.

These helpers are deliberately dependency-free (NumPy only) and are used
throughout the graph engines, where ``concat_ranges`` is the core trick
that makes frontier-based edge gathering a vectorised operation instead
of a Python loop.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

import numpy as np

__all__ = ["concat_ranges", "Stopwatch", "PhaseTimer"]


def concat_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], stops[k])`` for all ``k``, vectorised.

    Equivalent to ``np.concatenate([np.arange(a, b) for a, b in
    zip(starts, stops)])`` but without a Python-level loop.  Empty ranges
    (``stops[k] <= starts[k]``) contribute nothing.

    Parameters
    ----------
    starts, stops:
        Integer arrays of equal length describing half-open ranges.

    Returns
    -------
    numpy.ndarray
        ``int64`` array with the concatenated range values.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    if starts.shape != stops.shape:
        raise ValueError("starts and stops must have the same shape")
    lengths = stops - starts
    mask = lengths > 0
    if not mask.any():
        return np.empty(0, dtype=np.int64)
    starts = starts[mask]
    lengths = lengths[mask]
    ends = np.cumsum(lengths)
    out = np.ones(int(ends[-1]), dtype=np.int64)
    out[0] = starts[0]
    # At each boundary between consecutive ranges, jump from the last
    # element of the previous range to the start of the next one.
    out[ends[:-1]] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


class Stopwatch:
    """Accumulating stopwatch; ``with sw: ...`` adds elapsed seconds."""

    def __init__(self) -> None:
        self.seconds = 0.0
        self.calls = 0
        self._t0 = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.seconds += time.perf_counter() - self._t0
        self.calls += 1

    def reset(self) -> None:
        self.seconds = 0.0
        self.calls = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Stopwatch(seconds={self.seconds:.6f}, calls={self.calls})"


@dataclass
class PhaseTimer:
    """Named phase timers, e.g. ``mutation_add`` / ``incremental_del``.

    Used by the benchmark harness to reproduce the execution-time
    breakdown of Figure 11 in the paper.
    """

    phases: Dict[str, Stopwatch] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str) -> Iterator[Stopwatch]:
        sw = self.phases.setdefault(name, Stopwatch())
        with sw:
            yield sw

    def seconds(self, name: str) -> float:
        sw = self.phases.get(name)
        return sw.seconds if sw is not None else 0.0

    def total(self) -> float:
        return sum(sw.seconds for sw in self.phases.values())

    def as_dict(self) -> Dict[str, float]:
        return {name: sw.seconds for name, sw in self.phases.items()}

    def merge(self, other: "PhaseTimer") -> None:
        """Add ``other``'s accumulated times into this timer."""
        for name, sw in other.phases.items():
            mine = self.phases.setdefault(name, Stopwatch())
            mine.seconds += sw.seconds
            mine.calls += sw.calls
