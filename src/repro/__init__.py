"""CommonGraph: graph analytics on evolving data.

A full reproduction of *CommonGraph: Graph Analytics on Evolving Data*
(Afarin, Gao, Rahman, Abu-Ghazaleh, Gupta — ASPLOS 2023), including the
KickStarter-style streaming substrate it extends and compares against.

Quickstart::

    import repro

    base = repro.rmat_edges(scale=10, num_edges=8_000, seed=1)
    evolving = repro.generate_evolving_graph(
        num_vertices=1 << 10, base=base, num_snapshots=8, batch_size=100,
    )
    decomp = repro.CommonGraphDecomposition.from_evolving(evolving)
    result = repro.DirectHopEvaluator(
        decomp, repro.SSSP(), source=0, weight_fn=repro.default_weights()
    ).run()
    print(result.snapshot_values[3])  # SSSP distances on snapshot 3
"""

from repro.analysis import (
    METRICS,
    TrendReport,
    TrendTracker,
    detect_changes,
    evaluate_metric,
    metric_names,
    vertex_value,
)
from repro.algorithms import (
    ALGORITHMS,
    BFS,
    SSNP,
    SSSP,
    SSWP,
    MonotonicAlgorithm,
    Viterbi,
    algorithm_names,
    get_algorithm,
    register_algorithm,
)
from repro.core import (
    TaskOutcome,
    CommonGraphDecomposition,
    agglomerative_schedule,
    DirectHopEvaluator,
    EvolvingQueryResult,
    ParallelDirectHop,
    ParallelResult,
    ParallelWorkSharing,
    ParallelWorkSharingResult,
    ScheduleTree,
    TriangularGrid,
    WorkSharingEvaluator,
    build_schedule,
    direct_hop_tree,
    exact_steiner,
    greedy_steiner,
)
from repro.errors import (
    AlgorithmError,
    DeadlineExceededError,
    DeltaError,
    EdgeSetError,
    EngineError,
    GraphError,
    IntegrityError,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
    ScheduleError,
    SnapshotError,
)
from repro.evolving import (
    DeltaBatch,
    EvolvingGraph,
    RecoveryReport,
    SnapshotStore,
    UpdateStreamGenerator,
    VerifyReport,
    VersionController,
    generate_evolving_graph,
)
from repro.faults import FaultPlan, InjectedFault, corrupt_bytes
from repro.resilience import Deadline, RetryPolicy, retry_call, with_retries
from repro.graph import (
    DATASETS,
    GraphStats,
    compute_stats,
    induced_subgraph,
    relabel_dense,
    remove_self_loops,
    reverse_edges,
    symmetrize,
    weakly_connected_labels,
    CSRGraph,
    DatasetSpec,
    EdgeSet,
    HashWeights,
    MutableGraph,
    OverlayGraph,
    UnitWeights,
    default_weights,
    erdos_renyi_edges,
    generate_dataset,
    load_edge_list,
    rmat_edges,
    save_edge_list,
)
from repro.kickstarter import (
    EngineCounters,
    StreamingResult,
    StreamingSession,
    VertexState,
    incremental_additions,
    pull_until_stable,
    push_until_stable,
    static_compute,
    static_compute_pull,
    trim_and_repair,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algorithms
    "MonotonicAlgorithm",
    "BFS",
    "SSSP",
    "SSWP",
    "SSNP",
    "Viterbi",
    "get_algorithm",
    "register_algorithm",
    "algorithm_names",
    "ALGORITHMS",
    # graph substrates
    "EdgeSet",
    "CSRGraph",
    "OverlayGraph",
    "MutableGraph",
    "HashWeights",
    "UnitWeights",
    "default_weights",
    "rmat_edges",
    "erdos_renyi_edges",
    "generate_dataset",
    "DatasetSpec",
    "DATASETS",
    "load_edge_list",
    "save_edge_list",
    "GraphStats",
    "compute_stats",
    "weakly_connected_labels",
    "symmetrize",
    "reverse_edges",
    "remove_self_loops",
    "induced_subgraph",
    "relabel_dense",
    # evolving graphs
    "DeltaBatch",
    "EvolvingGraph",
    "SnapshotStore",
    "UpdateStreamGenerator",
    "generate_evolving_graph",
    "VersionController",
    # kickstarter substrate
    "static_compute",
    "static_compute_pull",
    "push_until_stable",
    "pull_until_stable",
    "incremental_additions",
    "trim_and_repair",
    "StreamingSession",
    "StreamingResult",
    "VertexState",
    "EngineCounters",
    # commongraph core
    "CommonGraphDecomposition",
    "TriangularGrid",
    "ScheduleTree",
    "direct_hop_tree",
    "greedy_steiner",
    "agglomerative_schedule",
    "exact_steiner",
    "build_schedule",
    "DirectHopEvaluator",
    "WorkSharingEvaluator",
    "ParallelDirectHop",
    "ParallelResult",
    "ParallelWorkSharing",
    "ParallelWorkSharingResult",
    "TaskOutcome",
    "EvolvingQueryResult",
    # analysis
    "TrendTracker",
    "TrendReport",
    "detect_changes",
    "METRICS",
    "evaluate_metric",
    "metric_names",
    "vertex_value",
    # errors
    "ReproError",
    "GraphError",
    "EdgeSetError",
    "DeltaError",
    "SnapshotError",
    "IntegrityError",
    "ScheduleError",
    "AlgorithmError",
    "EngineError",
    "ResilienceError",
    "RetryExhaustedError",
    "DeadlineExceededError",
    # resilience & fault injection
    "RetryPolicy",
    "Deadline",
    "retry_call",
    "with_retries",
    "FaultPlan",
    "InjectedFault",
    "corrupt_bytes",
    "VerifyReport",
    "RecoveryReport",
]
