"""Exception hierarchy for the CommonGraph reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """Malformed graph input (bad vertex ids, ragged arrays, ...)."""


class EdgeSetError(GraphError):
    """Invalid edge-set construction or operation."""


class DeltaError(ReproError):
    """Invalid delta batch (e.g. adding an edge that already exists)."""


class SnapshotError(ReproError):
    """Snapshot index out of range or inconsistent snapshot state."""


class IntegrityError(SnapshotError):
    """Persisted data failed checksum or consistency verification.

    Subclasses :class:`SnapshotError` so existing callers that guard
    store access with ``except SnapshotError`` also catch corruption.
    """


class ResilienceError(ReproError):
    """Failure of a resilience primitive (retries, deadlines, recovery)."""


class RetryExhaustedError(ResilienceError):
    """An operation kept failing after every allowed retry attempt.

    The final underlying exception is chained as ``__cause__``.
    """


class DeadlineExceededError(ResilienceError):
    """A deadline expired before the operation completed."""


class CircuitOpenError(ResilienceError):
    """A circuit breaker refused the call without attempting it.

    Raised while the breaker is *open* — the protected dependency kept
    failing, so calls short-circuit instead of burning retries against
    it.  ``retry_after`` (seconds, possibly 0) hints when the breaker
    will next allow a probe.
    """

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceError(ReproError):
    """Failure inside the live query service (bad request, bad state)."""


class ProtocolError(ServiceError):
    """Malformed service request or response (framing, fields, types)."""


class ServiceUnavailableError(ServiceError):
    """The service could not be reached at all.

    Raised by the client when the TCP connection dropped and every
    reconnect attempt (capped, jittered backoff) was exhausted, and by
    the fleet router when no replica in rotation could take a request.
    Distinct from :class:`ServiceOverloadedError`: an overloaded service
    answered and asked for backoff; an unavailable one never answered.
    """


class FleetError(ServiceError):
    """Failure inside the multi-replica fleet layer.

    Raised for fleet-level conditions — an empty hash ring, a
    fan-out with no surviving receipt, an unknown replica name —
    rather than failures of any single replica (those surface as the
    replica's own error and drive ejection/quarantine instead).
    """


class ResyncStalledError(FleetError):
    """A resync could not catch the fleet tip within its budget.

    Continuous ingest advances the fleet tip while a lagging replica
    replays history, so an unbounded catch-up loop could chase that tip
    forever.  The supervisor bounds the chase with a round cap and a
    deadline and raises this error when either is spent.  ``progress``
    is the partial-progress report — the replica, the rounds completed,
    the tip it reached, and the batches replayed — so the caller can
    surface how far the resync got and resume it later.
    """

    def __init__(self, message: str, *,
                 progress: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.progress: Dict[str, Any] = dict(progress or {})


class ServiceOverloadedError(ServiceError):
    """The service shed the request instead of queueing it unboundedly.

    Carried over the wire as an ``ok: false`` response with
    ``"overloaded": true`` and a ``retry_after_ms`` hint; the client
    helper honours the hint with a capped, jittered backoff.
    """

    def __init__(self, message: str, *, retry_after_ms: int = 0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class LintError(ReproError):
    """Static-analysis configuration problem (bad annotation, bad baseline).

    Raised for *misuse of the analyzer itself* — an unparseable
    annotation comment, a baseline entry without a justification, an
    unknown rule name in an ``allow`` pragma.  Findings in analysed
    code are reported, never raised.
    """


class ObservabilityError(ReproError):
    """Misuse of the observability subsystem (:mod:`repro.obs`).

    Raised for configuration and registration mistakes — re-registering
    a metric under a different type, unknown label names, a negative
    counter increment, an invalid sampling rate.  The instrumentation
    hot path itself never raises: a disabled runtime is a no-op, not an
    error.
    """


class ScheduleError(ReproError):
    """Invalid query-evaluation schedule (not a tree, missing leaves, ...)."""


class AlgorithmError(ReproError):
    """Unknown algorithm name or invalid algorithm configuration."""


class EngineError(ReproError):
    """Engine misuse, e.g. evaluating before initialisation."""
