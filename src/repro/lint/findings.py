"""Finding records produced by the lint engine.

A :class:`Finding` pins one rule violation to a file, line and column.
Its *fingerprint* deliberately excludes the line/column — baselined
findings must survive unrelated edits that shift code up or down — and,
since v2, the path as well: moving a module (``repro/service/x.py`` →
``repro/fleet/x.py``) does not invalidate a justified baseline entry.
The identity of a finding is ``(rule, context, message)`` where
``context`` is the enclosing ``Class.method`` qualname; messages are
written to name their subject (op, instrument, lock), which keeps the
triple unique in practice, and the baseline writer de-duplicates the
rare collision.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``path`` is package-relative and POSIX-style (``repro/core/...``)
    so fingerprints are stable across checkouts and platforms.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    context: str = ""
    #: Non-empty when the finding was suppressed, and how:
    #: ``"baseline"`` or ``"inline-allow"``.
    suppressed_by: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Location- and path-independent identity for baseline matching."""
        payload = "|".join((self.rule, self.context, self.message))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "fingerprint": self.fingerprint,
        }
        if self.suppressed_by:
            doc["suppressed_by"] = self.suppressed_by
        return doc

    def render(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        ctx = f" [{self.context}]" if self.context else ""
        return f"{where}: {self.rule}: {self.message}{ctx}"
