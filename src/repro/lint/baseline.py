"""Baseline handling: grandfathered findings with mandatory justifications.

The baseline file (``lint-baseline.json`` at the repository root)
records findings that are *known and provably benign*.  Every entry
must carry a non-empty ``justification`` — a baseline is a ledger of
accepted risk, not a mute button — and entries are matched by the
location-independent :attr:`~repro.lint.findings.Finding.fingerprint`
so unrelated edits never invalidate them.

Workflow: ``python -m repro lint --update-baseline`` rewrites the file
from the current findings, preserving justifications of entries that
still match and stamping new entries with a ``FIXME`` placeholder that
the author must replace (the engine refuses to load placeholders).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding

__all__ = [
    "BaselineEntry",
    "PLACEHOLDER_JUSTIFICATION",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

PLACEHOLDER_JUSTIFICATION = "FIXME: justify why this finding is benign"

#: v2 fingerprints hash ``(rule, context, message)`` — path-independent,
#: so renames don't invalidate entries.  v1 files (which hashed the path
#: too) are accepted and migrated on load; the next ``--update-baseline``
#: rewrites them as v2.
_VERSION = 2
_LEGACY_VERSIONS = (1,)


def _v2_fingerprint(rule: str, context: str, message: str) -> str:
    payload = "|".join((rule, context, message))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding plus the reason it is acceptable."""

    rule: str
    path: str
    context: str
    message: str
    fingerprint: str
    justification: str

    def as_dict(self) -> Dict[str, str]:
        return dataclasses.asdict(self)


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse and validate a baseline file.

    Raises :class:`LintError` for schema problems, duplicate
    fingerprints, and entries whose justification is missing, empty or
    still the ``FIXME`` placeholder.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    version = payload.get("version") if isinstance(payload, dict) else None
    if version not in (_VERSION, *_LEGACY_VERSIONS):
        raise LintError(
            f"baseline {path} must be a JSON object with 'version': {_VERSION}"
        )
    legacy = version != _VERSION
    entries: List[BaselineEntry] = []
    seen: Dict[str, int] = {}
    for position, doc in enumerate(payload.get("entries", [])):
        if not isinstance(doc, dict):
            raise LintError(f"baseline {path}: entry {position} is not an object")
        missing = {"rule", "path", "message", "fingerprint"} - set(doc)
        if missing:
            raise LintError(
                f"baseline {path}: entry {position} lacks {sorted(missing)}"
            )
        justification = str(doc.get("justification", "")).strip()
        if not justification or justification == PLACEHOLDER_JUSTIFICATION:
            raise LintError(
                f"baseline {path}: entry {position} "
                f"({doc['rule']} in {doc['path']}) has no justification; "
                "every grandfathered finding must explain why it is benign"
            )
        if legacy:
            # v1 hashed the path into the fingerprint; recompute the v2
            # identity from the recorded fields.  Entries that collapse
            # onto one v2 fingerprint (same defect recorded under two
            # paths) merge silently — the first justification wins.
            fingerprint = _v2_fingerprint(
                str(doc["rule"]), str(doc.get("context", "")),
                str(doc["message"]),
            )
            if fingerprint in seen:
                continue
        else:
            fingerprint = str(doc["fingerprint"])
            if fingerprint in seen:
                raise LintError(
                    f"baseline {path}: duplicate fingerprint {fingerprint} "
                    f"(entries {seen[fingerprint]} and {position})"
                )
        seen[fingerprint] = position
        entries.append(BaselineEntry(
            rule=str(doc["rule"]),
            path=str(doc["path"]),
            context=str(doc.get("context", "")),
            message=str(doc["message"]),
            fingerprint=fingerprint,
            justification=justification,
        ))
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into ``(active, baselined, stale_entries)``.

    ``stale_entries`` are baseline entries that matched nothing — the
    underlying code was fixed, so the entry should be deleted (the
    report surfaces them; ``--update-baseline`` drops them).
    """
    by_fingerprint = {entry.fingerprint: entry for entry in entries}
    active: List[Finding] = []
    baselined: List[Finding] = []
    matched = set()
    for finding in findings:
        entry = by_fingerprint.get(finding.fingerprint)
        if entry is not None:
            matched.add(entry.fingerprint)
            baselined.append(
                dataclasses.replace(finding, suppressed_by="baseline")
            )
        else:
            active.append(finding)
    stale = [
        entry for entry in entries if entry.fingerprint not in matched
    ]
    return active, baselined, stale


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    previous: Sequence[BaselineEntry] = (),
) -> List[BaselineEntry]:
    """Write a baseline covering ``findings``.

    Justifications of still-matching previous entries are preserved;
    new entries get the ``FIXME`` placeholder, which the engine refuses
    to load — forcing the author to justify before the baseline is
    usable.
    """
    keep = {entry.fingerprint: entry.justification for entry in previous}
    entries = []
    written = set()
    for finding in findings:
        # Path-independent fingerprints can collide when the same
        # defect appears in several files; one entry covers them all.
        if finding.fingerprint in written:
            continue
        written.add(finding.fingerprint)
        entries.append(BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            context=finding.context,
            message=finding.message,
            fingerprint=finding.fingerprint,
            justification=keep.get(
                finding.fingerprint, PLACEHOLDER_JUSTIFICATION
            ),
        ))
    payload = {
        "version": _VERSION,
        "entries": [entry.as_dict() for entry in entries],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return entries
