"""Baseline handling: grandfathered findings with mandatory justifications.

The baseline file (``lint-baseline.json`` at the repository root)
records findings that are *known and provably benign*.  Every entry
must carry a non-empty ``justification`` — a baseline is a ledger of
accepted risk, not a mute button — and entries are matched by the
location-independent :attr:`~repro.lint.findings.Finding.fingerprint`
so unrelated edits never invalidate them.

Workflow: ``python -m repro lint --update-baseline`` rewrites the file
from the current findings, preserving justifications of entries that
still match and stamping new entries with a ``FIXME`` placeholder that
the author must replace (the engine refuses to load placeholders).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.errors import LintError
from repro.lint.findings import Finding

__all__ = [
    "BaselineEntry",
    "PLACEHOLDER_JUSTIFICATION",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]

PLACEHOLDER_JUSTIFICATION = "FIXME: justify why this finding is benign"

_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding plus the reason it is acceptable."""

    rule: str
    path: str
    context: str
    message: str
    fingerprint: str
    justification: str

    def as_dict(self) -> Dict[str, str]:
        return dataclasses.asdict(self)


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse and validate a baseline file.

    Raises :class:`LintError` for schema problems, duplicate
    fingerprints, and entries whose justification is missing, empty or
    still the ``FIXME`` placeholder.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise LintError(
            f"baseline {path} must be a JSON object with 'version': {_VERSION}"
        )
    entries: List[BaselineEntry] = []
    seen: Dict[str, int] = {}
    for position, doc in enumerate(payload.get("entries", [])):
        if not isinstance(doc, dict):
            raise LintError(f"baseline {path}: entry {position} is not an object")
        missing = {"rule", "path", "message", "fingerprint"} - set(doc)
        if missing:
            raise LintError(
                f"baseline {path}: entry {position} lacks {sorted(missing)}"
            )
        justification = str(doc.get("justification", "")).strip()
        if not justification or justification == PLACEHOLDER_JUSTIFICATION:
            raise LintError(
                f"baseline {path}: entry {position} "
                f"({doc['rule']} in {doc['path']}) has no justification; "
                "every grandfathered finding must explain why it is benign"
            )
        fingerprint = str(doc["fingerprint"])
        if fingerprint in seen:
            raise LintError(
                f"baseline {path}: duplicate fingerprint {fingerprint} "
                f"(entries {seen[fingerprint]} and {position})"
            )
        seen[fingerprint] = position
        entries.append(BaselineEntry(
            rule=str(doc["rule"]),
            path=str(doc["path"]),
            context=str(doc.get("context", "")),
            message=str(doc["message"]),
            fingerprint=fingerprint,
            justification=justification,
        ))
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into ``(active, baselined, stale_entries)``.

    ``stale_entries`` are baseline entries that matched nothing — the
    underlying code was fixed, so the entry should be deleted (the
    report surfaces them; ``--update-baseline`` drops them).
    """
    by_fingerprint = {entry.fingerprint: entry for entry in entries}
    active: List[Finding] = []
    baselined: List[Finding] = []
    matched = set()
    for finding in findings:
        entry = by_fingerprint.get(finding.fingerprint)
        if entry is not None:
            matched.add(entry.fingerprint)
            baselined.append(
                dataclasses.replace(finding, suppressed_by="baseline")
            )
        else:
            active.append(finding)
    stale = [
        entry for entry in entries if entry.fingerprint not in matched
    ]
    return active, baselined, stale


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    previous: Sequence[BaselineEntry] = (),
) -> List[BaselineEntry]:
    """Write a baseline covering ``findings``.

    Justifications of still-matching previous entries are preserved;
    new entries get the ``FIXME`` placeholder, which the engine refuses
    to load — forcing the author to justify before the baseline is
    usable.
    """
    keep = {entry.fingerprint: entry.justification for entry in previous}
    entries = [
        BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            context=finding.context,
            message=finding.message,
            fingerprint=finding.fingerprint,
            justification=keep.get(
                finding.fingerprint, PLACEHOLDER_JUSTIFICATION
            ),
        )
        for finding in findings
    ]
    payload = {
        "version": _VERSION,
        "entries": [entry.as_dict() for entry in entries],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return entries
