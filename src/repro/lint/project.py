"""Phase 1 of the two-phase analyzer: the whole-program index.

The per-module rules (lock-discipline, determinism, …) only ever see
one AST at a time.  The contract rules added for the project-wide
invariants — wire-protocol agreement, instrument agreement, global
lock order — need to see *every* module at once.  This module builds
that view:

* a **symbol table** — every class and function in the scanned tree,
  keyed by module-relative path and qualname, with per-module import
  maps so dotted references resolve across modules;
* a **string-literal vocabulary index** — every string constant and
  where it appears, which is how the contract rules connect an op or
  instrument *name* to the call sites that speak it;
* a **call graph with lock summaries** — per function: the calls it
  makes, the locks it acquires (``with <lock>:``, ``.acquire()``, and
  the ``# holds-lock:`` pragmas), and every ``await`` together with
  the thread locks held around it.

Resolution is deliberately best-effort and *under*-approximating:
a call or lock the index cannot resolve contributes nothing, so the
contract rules never hallucinate an edge — the cost is that exotic
indirection (dynamic dispatch tables, getattr) is invisible to them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.rules.base import dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import ModuleUnit

__all__ = [
    "Acquisition",
    "AwaitSite",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "LiteralSite",
    "LockEdge",
    "LockKey",
    "ModuleInfo",
    "ProgramIndex",
    "build_program_index",
]


#: Constructors that produce *thread* locks — holding one of these
#: across an ``await`` stalls every other event-loop task.
THREAD_LOCK_CTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
}

#: Constructors that produce *asyncio* locks — cooperative, safe to
#: hold across ``await``, but still deadlock-prone under a cycle.
ASYNC_LOCK_CTORS = {
    "asyncio.Lock",
    "asyncio.Condition",
    "asyncio.Semaphore",
    "asyncio.BoundedSemaphore",
}


@dataclass(frozen=True)
class LockKey:
    """Class-scoped identity of one lock attribute.

    Two instances of the same class share a key: classic lock-order
    analysis works on lock *classes*, which is exactly the granularity
    the deadlock argument needs (any two instances acquired in
    conflicting orders by two threads can deadlock).
    """

    module: str  #: relpath of the module declaring the lock
    owner: str   #: declaring class name, or "" for a module-level lock
    attr: str    #: attribute / variable name of the lock object
    kind: str    #: "thread" | "async"

    @property
    def label(self) -> str:
        where = self.owner if self.owner else self.module
        return f"{where}.{self.attr}"


@dataclass(frozen=True)
class Acquisition:
    """One ``with <lock>:`` (or ``.acquire()``) site inside a function."""

    lock: LockKey
    line: int
    held: Tuple[LockKey, ...]  #: locks already held at this site


@dataclass(frozen=True)
class CallSite:
    """One call expression plus the locks held around it."""

    target: str  #: dotted callee text, e.g. "self.planner.evaluate"
    line: int
    held: Tuple[LockKey, ...]


@dataclass(frozen=True)
class AwaitSite:
    """One ``await`` plus the *thread* locks held around it."""

    line: int
    thread_locks: Tuple[LockKey, ...]


@dataclass
class FunctionInfo:
    """Phase-1 summary of one function or method."""

    module: str
    qualname: str          #: "Class.method" or "function"
    name: str
    owner: str             #: enclosing class name, "" for module level
    is_async: bool
    lineno: int
    calls: List[CallSite] = field(default_factory=list)
    acquisitions: List[Acquisition] = field(default_factory=list)
    awaits: List[AwaitSite] = field(default_factory=list)
    #: Locks declared held on entry via ``# holds-lock:`` pragmas.
    holds: Tuple[LockKey, ...] = ()
    #: Local variables assigned from a resolvable constructor call.
    local_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """Phase-1 summary of one class."""

    module: str
    name: str
    lineno: int
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` → dotted constructor / annotation text.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: ``self.<attr>`` → "thread" | "async" for lock-typed attributes.
    lock_attrs: Dict[str, str] = field(default_factory=dict)

    def lock_key(self, attr: str) -> Optional[LockKey]:
        kind = self.lock_attrs.get(attr)
        if kind is None:
            return None
        return LockKey(self.module, self.name, attr, kind)


@dataclass
class ModuleInfo:
    """Phase-1 summary of one module."""

    relpath: str
    dotted: str  #: import path, e.g. "repro.service.state"
    #: local name → dotted target ("repro.service.state" or
    #: "repro.service.state.ServiceState" or "threading").
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level lock variables → "thread" | "async".
    module_locks: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class LiteralSite:
    """One occurrence of a string constant."""

    module: str
    line: int
    context: str


@dataclass(frozen=True)
class LockEdge:
    """Directed "acquired-while-holding" evidence between two locks."""

    src: LockKey
    dst: LockKey
    module: str
    line: int
    via: str = ""  #: callee qualname when the edge is interprocedural

    def render(self) -> str:
        site = f"{self.module}:{self.line}"
        if self.via:
            return (f"{self.src.label} -> {self.dst.label} "
                    f"(via call to {self.via} at {site})")
        return f"{self.src.label} -> {self.dst.label} (at {site})"


def _module_dotted(relpath: str) -> str:
    parts = relpath[:-3].split("/") if relpath.endswith(".py") else \
        relpath.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class ProgramIndex:
    """The cross-module view the project-scoped rules consume."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: dotted module path → relpath, for import resolution.
        self.by_dotted: Dict[str, str] = {}
        #: class name → every ClassInfo with that name (project-wide).
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        #: every string constant → where it appears.
        self.literals: Dict[str, List[LiteralSite]] = {}

    # -- symbol lookups --------------------------------------------------
    def functions(self) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        for module in self.modules.values():
            out.extend(module.functions.values())
            for cls in module.classes.values():
                out.extend(cls.methods.values())
        return out

    def function_at(self, relpath: str, qualname: str) -> Optional[FunctionInfo]:
        module = self.modules.get(relpath)
        if module is None:
            return None
        if qualname in module.functions:
            return module.functions[qualname]
        if "." in qualname:
            cls_name, _, meth = qualname.partition(".")
            cls = module.classes.get(cls_name)
            if cls is not None:
                return cls.methods.get(meth)
        return None

    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        relpath = self.by_dotted.get(dotted)
        return self.modules.get(relpath) if relpath is not None else None

    def expand(self, module: ModuleInfo, dotted: str) -> str:
        """Rewrite the leading import alias of ``dotted`` to its target."""
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_class(self, name: str,
                      module: ModuleInfo) -> Optional[ClassInfo]:
        """Best-effort class resolution for ``name`` seen in ``module``."""
        dotted = self.expand(module, name)
        if "." in dotted:
            mod_path, _, cls_name = dotted.rpartition(".")
            target = self.resolve_module(mod_path)
            if target is not None:
                found = target.classes.get(cls_name)
                if found is not None:
                    return found
        else:
            found = module.classes.get(dotted)
            if found is not None:
                return found
        # Unique project-wide name as a last resort: good enough for
        # the small, flat class namespace this codebase keeps.
        tail = dotted.rpartition(".")[2]
        candidates = self.classes_by_name.get(tail, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_call(self, fn: FunctionInfo,
                     call: CallSite) -> Optional[FunctionInfo]:
        """Resolve one call site to a project function, or ``None``."""
        module = self.modules.get(fn.module)
        if module is None:
            return None
        target = call.target
        if target.startswith("self."):
            if not fn.owner:
                return None
            cls = module.classes.get(fn.owner)
            if cls is None:
                return None
            rest = target[len("self."):]
            if "." not in rest:
                return cls.methods.get(rest)
            attr, _, meth = rest.partition(".")
            if "." in meth:
                return None  # deeper chains are out of scope
            attr_type = cls.attr_types.get(attr)
            if attr_type is None:
                return None
            attr_cls = self.resolve_class(attr_type, module)
            return attr_cls.methods.get(meth) if attr_cls else None
        if "." not in target:
            found = module.functions.get(target)
            if found is not None:
                return found
            cls = self.resolve_class(target, module)
            if cls is not None and target in module.imports or \
                    cls is not None and target in module.classes:
                return cls.methods.get("__init__")
            return None
        head, _, rest = target.partition(".")
        if head in fn.local_types and "." not in rest:
            cls = self.resolve_class(fn.local_types[head], module)
            return cls.methods.get(rest) if cls else None
        dotted = self.expand(module, target)
        mod_path, _, leaf = dotted.rpartition(".")
        targets: List[Tuple[str, str]] = [(mod_path, leaf)]
        # "pkg.Class.method" — one more split.
        if "." in mod_path:
            outer, _, cls_name = mod_path.rpartition(".")
            targets.append((outer, f"{cls_name}.{leaf}"))
        for mod_dotted, symbol in targets:
            mod = self.resolve_module(mod_dotted)
            if mod is None:
                continue
            if "." in symbol:
                cls_name, _, meth = symbol.partition(".")
                cls = mod.classes.get(cls_name)
                if cls is not None:
                    return cls.methods.get(meth)
                continue
            if symbol in mod.functions:
                return mod.functions[symbol]
            cls = mod.classes.get(symbol)
            if cls is not None:
                return cls.methods.get("__init__")
        return None

    # -- lock graph ------------------------------------------------------
    def transitive_acquisitions(self) -> Dict[int, Set[LockKey]]:
        """Fixed point of "locks a call to this function may acquire".

        Keyed by ``id(FunctionInfo)``; includes locks acquired by every
        resolvable callee, transitively.
        """
        functions = self.functions()
        acquired: Dict[int, Set[LockKey]] = {
            id(fn): {acq.lock for acq in fn.acquisitions}
            for fn in functions
        }
        callees: Dict[int, List[int]] = {}
        for fn in functions:
            resolved = []
            for call in fn.calls:
                callee = self.resolve_call(fn, call)
                if callee is not None:
                    resolved.append(id(callee))
            callees[id(fn)] = resolved
        changed = True
        while changed:
            changed = False
            for fn in functions:
                mine = acquired[id(fn)]
                before = len(mine)
                for callee_id in callees[id(fn)]:
                    mine |= acquired.get(callee_id, set())
                if len(mine) != before:
                    changed = True
        return acquired

    def lock_edges(self) -> List[LockEdge]:
        """Every direct and interprocedural acquired-while-holding edge."""
        edges: Dict[Tuple[LockKey, LockKey], LockEdge] = {}

        def add(edge: LockEdge) -> None:
            if edge.src == edge.dst:
                return  # re-entry is lock-discipline's concern, not order
            key = (edge.src, edge.dst)
            existing = edges.get(key)
            if existing is None or (edge.module, edge.line) < (
                    existing.module, existing.line):
                edges[key] = edge

        transitive = self.transitive_acquisitions()
        for fn in self.functions():
            for acq in fn.acquisitions:
                for held in acq.held:
                    add(LockEdge(held, acq.lock, fn.module, acq.line))
            for call in fn.calls:
                if not call.held:
                    continue
                callee = self.resolve_call(fn, call)
                if callee is None:
                    continue
                for lock in transitive.get(id(callee), ()):
                    for held in call.held:
                        add(LockEdge(held, lock, fn.module, call.line,
                                     via=callee.qualname))
        return sorted(
            edges.values(),
            key=lambda e: (e.src.label, e.dst.label, e.module, e.line),
        )

    def lock_cycles(self) -> List[List[LockEdge]]:
        """Strongly-connected lock-order components, as edge lists.

        Each cycle is reported once, as the sorted list of in-component
        edges — deterministic, so findings fingerprint stably.
        """
        edges = self.lock_edges()
        graph: Dict[LockKey, List[LockKey]] = {}
        for edge in edges:
            graph.setdefault(edge.src, []).append(edge.dst)
            graph.setdefault(edge.dst, [])
        components = _strongly_connected(graph)
        cycles: List[List[LockEdge]] = []
        for component in components:
            if len(component) < 2:
                continue
            members = set(component)
            cycle_edges = [e for e in edges
                           if e.src in members and e.dst in members]
            if cycle_edges:
                cycles.append(cycle_edges)
        cycles.sort(key=lambda es: tuple(e.render() for e in es))
        return cycles


def _strongly_connected(
    graph: Dict[LockKey, List[LockKey]]
) -> List[List[LockKey]]:
    """Iterative Tarjan SCC over the lock digraph (tiny, but no recursion)."""
    index: Dict[LockKey, int] = {}
    lowlink: Dict[LockKey, int] = {}
    on_stack: Set[LockKey] = set()
    stack: List[LockKey] = []
    counter = [0]
    components: List[List[LockKey]] = []

    for root in sorted(graph, key=lambda k: k.label):
        if root in index:
            continue
        work: List[Tuple[LockKey, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = graph.get(node, [])
            advanced = False
            for position in range(child_idx, len(children)):
                child = children[position]
                if child not in index:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: List[LockKey] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component, key=lambda k: k.label))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


def build_program_index(modules: Sequence["ModuleUnit"]) -> ProgramIndex:
    """Phase 1: summarise every module into one :class:`ProgramIndex`."""
    program = ProgramIndex()
    for unit in modules:
        info = ModuleInfo(relpath=unit.relpath,
                          dotted=_module_dotted(unit.relpath))
        program.modules[unit.relpath] = info
        program.by_dotted[info.dotted] = unit.relpath
    for unit in modules:
        builder = _ModuleBuilder(program, unit)
        builder.collect_structure()
    # Lock-attribute typing must be complete across *all* classes before
    # any function body is summarised: `with self.planner._lock:` in one
    # module resolves through a class declared in another.
    for unit in modules:
        builder = _ModuleBuilder(program, unit)
        builder.collect_bodies()
        builder.collect_literals()
    return program


class _ModuleBuilder:
    """Two-pass per-module collector feeding one :class:`ProgramIndex`."""

    def __init__(self, program: ProgramIndex, unit: "ModuleUnit") -> None:
        self.program = program
        self.unit = unit
        self.info = program.modules[unit.relpath]

    # -- pass A: imports, classes, lock attributes, signatures -----------
    def collect_structure(self) -> None:
        info = self.info
        for node in ast.walk(self.unit.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.partition(".")[0]
                    info.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.imports[local] = f"{base}.{alias.name}" if base \
                        else alias.name
        for stmt in self.unit.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._collect_class(stmt)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.functions[stmt.name] = FunctionInfo(
                    module=info.relpath, qualname=stmt.name, name=stmt.name,
                    owner="", is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    lineno=stmt.lineno,
                )
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._collect_module_lock(stmt)

    def _import_base(self, node: ast.ImportFrom) -> Optional[str]:
        if not node.level:
            return node.module or ""
        # Relative import: resolve against this module's package.
        parts = self.info.dotted.split(".") if self.info.dotted else []
        is_package = self.unit.relpath.endswith("__init__.py")
        up = node.level - (1 if is_package else 0)
        if up > len(parts):
            return None
        base_parts = parts[:len(parts) - up] if up else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _collect_class(self, node: ast.ClassDef) -> None:
        cls = ClassInfo(module=self.info.relpath, name=node.name,
                        lineno=node.lineno)
        self.info.classes[node.name] = cls
        self.program.classes_by_name.setdefault(node.name, []).append(cls)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{node.name}.{item.name}"
                cls.methods[item.name] = FunctionInfo(
                    module=self.info.relpath, qualname=qualname,
                    name=item.name, owner=node.name,
                    is_async=isinstance(item, ast.AsyncFunctionDef),
                    lineno=item.lineno,
                )
                self._collect_attr_types(cls, item)
            elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                kind = self._lock_kind_of(self._assigned_value(item))
                for name in self._assigned_names(item):
                    if kind is not None:
                        cls.lock_attrs[name] = kind

    def _collect_attr_types(self, cls: ClassInfo,
                            fn: ast.AST) -> None:
        """``self.X = ...`` assignments: lock kinds and attribute types."""
        params: Dict[str, str] = {}
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if arg.annotation is not None:
                    annotated = _annotation_text(arg.annotation)
                    if annotated:
                        params[arg.arg] = annotated
        for node in ast.walk(fn):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = self._assigned_value(node)
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                attr = target.attr
                kind = self._lock_kind_of(value)
                if kind is not None:
                    cls.lock_attrs.setdefault(attr, kind)
                    continue
                if isinstance(value, ast.Call):
                    ctor = dotted_name(value.func)
                    if ctor:
                        cls.attr_types.setdefault(attr, ctor)
                elif isinstance(value, ast.Name) and value.id in params:
                    cls.attr_types.setdefault(attr, params[value.id])
                if (isinstance(node, ast.AnnAssign)
                        and node.annotation is not None):
                    annotated = _annotation_text(node.annotation)
                    if annotated:
                        cls.attr_types.setdefault(attr, annotated)

    def _collect_module_lock(self, stmt: ast.stmt) -> None:
        kind = self._lock_kind_of(self._assigned_value(stmt))
        if kind is None:
            return
        for name in self._assigned_names(stmt):
            self.info.module_locks[name] = kind

    @staticmethod
    def _assigned_value(stmt: ast.stmt) -> Optional[ast.expr]:
        return stmt.value if isinstance(stmt, (ast.Assign, ast.AnnAssign)) \
            else None

    @staticmethod
    def _assigned_names(stmt: ast.stmt) -> List[str]:
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        return [t.id for t in targets if isinstance(t, ast.Name)]

    def _lock_kind_of(self, value: Optional[ast.expr]) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        ctor = dotted_name(value.func)
        if ctor is None:
            return None
        expanded = self.program.expand(self.info, ctor)
        if expanded in THREAD_LOCK_CTORS:
            return "thread"
        if expanded in ASYNC_LOCK_CTORS:
            return "async"
        return None

    # -- pass B: function bodies -----------------------------------------
    def collect_bodies(self) -> None:
        annotations = self.unit.annotations

        def summarise(fn_node: ast.AST, fn: FunctionInfo) -> None:
            fn.holds = self._pragma_locks(fn_node, fn, annotations)
            self._collect_local_types(fn_node, fn)
            body = getattr(fn_node, "body", [])
            for stmt in body:
                self._walk(stmt, fn, fn.holds)

        for node in self.unit.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summarise(node, self.info.functions[node.name])
            elif isinstance(node, ast.ClassDef):
                cls = self.info.classes[node.name]
                for item in node.body:
                    if isinstance(item,
                                  (ast.FunctionDef, ast.AsyncFunctionDef)):
                        summarise(item, cls.methods[item.name])

    def _pragma_locks(self, fn_node: ast.AST, fn: FunctionInfo,
                      annotations) -> Tuple[LockKey, ...]:
        body = getattr(fn_node, "body", [])
        body_start = body[0].lineno if body else fn_node.lineno
        names: Tuple[str, ...] = ()
        for line in range(fn_node.lineno, body_start + 1):
            declared = annotations.holds_lock.get(line)
            if declared:
                names = declared
                break
        keys = []
        for name in names:
            key = self._lock_key_for_name(fn, name)
            if key is not None:
                keys.append(key)
        return tuple(keys)

    def _lock_key_for_name(self, fn: FunctionInfo,
                           name: str) -> Optional[LockKey]:
        if fn.owner:
            cls = self.info.classes.get(fn.owner)
            if cls is not None:
                key = cls.lock_key(name)
                if key is not None:
                    return key
        kind = self.info.module_locks.get(name)
        if kind is not None:
            return LockKey(self.info.relpath, "", name, kind)
        return None

    def _collect_local_types(self, fn_node: ast.AST,
                             fn: FunctionInfo) -> None:
        args = getattr(fn_node, "args", None)
        if args is not None:
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if arg.annotation is not None:
                    annotated = _annotation_text(arg.annotation)
                    if annotated:
                        fn.local_types.setdefault(arg.arg, annotated)
        for node in ast.walk(fn_node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            ctor = dotted_name(node.value.func)
            if ctor is None or ctor.startswith("self."):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    fn.local_types.setdefault(target.id, ctor)

    def _lock_of(self, expr: ast.expr, fn: FunctionInfo) -> Optional[LockKey]:
        """Resolve a with-item / receiver expression to a lock key."""
        if isinstance(expr, ast.Name):
            return self._lock_key_for_name(fn, expr.id)
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        base = expr.value
        if isinstance(base, ast.Name):
            if base.id == "self":
                return self._lock_key_for_name(fn, attr)
            owner = fn.local_types.get(base.id)
            if owner is not None:
                cls = self.program.resolve_class(owner, self.info)
                if cls is not None:
                    return cls.lock_key(attr)
            return None
        if (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self" and fn.owner):
            cls = self.info.classes.get(fn.owner)
            if cls is None:
                return None
            owner = cls.attr_types.get(base.attr)
            if owner is None:
                return None
            target = self.program.resolve_class(owner, self.info)
            if target is not None:
                return target.lock_key(attr)
        return None

    def _walk(self, node: ast.AST, fn: FunctionInfo,
              held: Tuple[LockKey, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Nested defs run later (closures) — they neither inherit
            # the held set nor contribute call sites to this summary.
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: List[LockKey] = []
            for item in node.items:
                self._walk(item.context_expr, fn, held)
                lock = self._lock_of(item.context_expr, fn)
                if lock is not None:
                    fn.acquisitions.append(Acquisition(
                        lock, item.context_expr.lineno,
                        tuple((*held, *acquired)),
                    ))
                    acquired.append(lock)
            inner = tuple((*held, *acquired))
            for stmt in node.body:
                self._walk(stmt, fn, inner)
            return
        if isinstance(node, ast.Await):
            thread_locks = tuple(k for k in held if k.kind == "thread")
            fn.awaits.append(AwaitSite(node.lineno, thread_locks))
            self._walk(node.value, fn, held)
            return
        if isinstance(node, ast.Call):
            target = dotted_name(node.func)
            if target is not None:
                fn.calls.append(CallSite(target, node.lineno, held))
                # `lock.acquire()` outside a with-statement still
                # participates in the order graph.
                if target.endswith(".acquire"):
                    receiver = node.func
                    assert isinstance(receiver, ast.Attribute)
                    lock = self._lock_of(receiver.value, fn)
                    if lock is not None:
                        fn.acquisitions.append(
                            Acquisition(lock, node.lineno, held)
                        )
            for child in ast.iter_child_nodes(node):
                self._walk(child, fn, held)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, fn, held)

    # -- literals --------------------------------------------------------
    def collect_literals(self) -> None:
        for node in ast.walk(self.unit.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                self.program.literals.setdefault(node.value, []).append(
                    LiteralSite(
                        self.unit.relpath, node.lineno,
                        self.unit.context_at(node.lineno),
                    )
                )


def _annotation_text(node: ast.expr) -> Optional[str]:
    """``Name``/``Attribute`` annotations as dotted text; strings too."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\"")
    text = dotted_name(node)
    if text is not None:
        return text
    if isinstance(node, ast.Subscript):  # Optional[X] / "X | None"
        return _annotation_text(node.slice)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_text(node.left)
        return left if left not in (None, "None") else \
            _annotation_text(node.right)
    return None
