"""Rendering: human text and machine JSON for one lint run."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from repro.lint.baseline import BaselineEntry
from repro.lint.engine import LintResult

__all__ = ["render_json", "render_text"]


def render_text(
    result: LintResult,
    baselined: Sequence[Any] = (),
    stale_entries: Sequence[BaselineEntry] = (),
) -> str:
    """The terminal report: findings, then a one-line summary."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    for entry in stale_entries:
        lines.append(
            f"stale baseline entry: {entry.rule} in {entry.path} "
            f"({entry.fingerprint}) no longer matches; delete it or run "
            "--update-baseline"
        )
    counts = Counter(finding.rule for finding in result.findings)
    by_rule = ", ".join(
        f"{rule}: {count}" for rule, count in sorted(counts.items())
    )
    suppressed_total = len(result.suppressed) + len(baselined)
    summary = (
        f"{len(result.findings)} finding(s)"
        + (f" ({by_rule})" if by_rule else "")
        + f" in {result.modules_scanned} module(s); "
        f"{suppressed_total} suppressed "
        f"({len(baselined)} baselined, {len(result.suppressed)} inline)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    result: LintResult,
    baselined: Sequence[Any] = (),
    stale_entries: Sequence[BaselineEntry] = (),
) -> str:
    """Machine-readable report (stable schema, see docs/static-analysis.md)."""
    counts: Dict[str, int] = dict(
        Counter(finding.rule for finding in result.findings)
    )
    payload = {
        "version": 1,
        "ok": result.ok,
        "modules_scanned": result.modules_scanned,
        "rules_run": result.rules_run,
        "counts": counts,
        "findings": [finding.as_dict() for finding in result.findings],
        "suppressed": [
            finding.as_dict()
            for finding in (*result.suppressed, *baselined)
        ],
        "stale_baseline": [entry.as_dict() for entry in stale_entries],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
