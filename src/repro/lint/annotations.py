"""The annotation grammar: machine-readable comments the rules consume.

Three comment forms are recognised (see ``docs/static-analysis.md``):

``# guarded-by: <lock>``
    On an attribute assignment inside a class (class body or
    ``__init__``).  Declares that the attribute may only be accessed
    while ``self.<lock>`` is held.

``# holds-lock: <lock>``
    On a ``def`` line.  Declares that every caller of the method
    already holds ``self.<lock>``, so guarded accesses inside it are
    legal.  Multiple locks: repeat the pragma or comma-separate names.

``# lint: allow(<rule>): <justification>``
    On (or directly above) the offending line.  Suppresses findings of
    ``<rule>`` for that line.  The justification is mandatory — an
    allow pragma without one is a :class:`~repro.errors.LintError`.

Annotations are extracted with :mod:`tokenize`, so they survive any
formatting the AST would normalise away.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import LintError

__all__ = ["AllowPragma", "ModuleAnnotations", "extract_annotations"]

_GUARDED_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*$")
_HOLDS_RE = re.compile(r"#\s*holds-lock:\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*$")
_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(([\w-]+)\)\s*:?\s*(.*)$")
_ALLOW_MALFORMED_RE = re.compile(r"#\s*lint:\s*allow\b")


@dataclass(frozen=True)
class AllowPragma:
    """One inline suppression: rule name plus its mandatory reason."""

    rule: str
    reason: str
    line: int


@dataclass
class ModuleAnnotations:
    """All recognised pragmas of one module, keyed by source line."""

    #: line -> lock names declared by ``guarded-by`` on that line.
    guarded_by: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: line -> lock names declared by ``holds-lock`` on that line.
    holds_lock: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: line -> allow pragmas attached to that line.
    allows: Dict[int, List[AllowPragma]] = field(default_factory=dict)

    def allows_for(self, line: int, rule: str) -> List[AllowPragma]:
        """Allow pragmas for ``rule`` on ``line`` or the line above."""
        found = []
        for candidate in (line, line - 1):
            for pragma in self.allows.get(candidate, ()):
                if pragma.rule in (rule, "all"):
                    found.append(pragma)
        return found


def _names(spec: str) -> Tuple[str, ...]:
    return tuple(name.strip() for name in spec.split(",") if name.strip())


def extract_annotations(source: str, path: str = "<source>") -> ModuleAnnotations:
    """Scan ``source`` for lint pragmas.

    Raises :class:`LintError` for a malformed ``lint: allow`` pragma
    (unparseable, or missing its justification) — silent misspellings
    of a suppression would otherwise *enable* a rule the author
    believed was off.
    """
    annotations = ModuleAnnotations()
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        # The engine reports unparseable modules separately.
        return annotations
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        line = token.start[0]
        match = _GUARDED_RE.search(comment)
        if match:
            annotations.guarded_by[line] = _names(match.group(1))
            continue
        match = _HOLDS_RE.search(comment)
        if match:
            annotations.holds_lock[line] = _names(match.group(1))
            continue
        match = _ALLOW_RE.search(comment)
        if match:
            rule, reason = match.group(1), match.group(2).strip()
            if not reason:
                raise LintError(
                    f"{path}:{line}: lint: allow({rule}) needs a "
                    "justification after the pragma"
                )
            annotations.allows.setdefault(line, []).append(
                AllowPragma(rule=rule, reason=reason, line=line)
            )
            continue
        if _ALLOW_MALFORMED_RE.search(comment):
            raise LintError(
                f"{path}:{line}: malformed lint pragma {comment.strip()!r}; "
                "expected '# lint: allow(<rule>): <justification>'"
            )
    return annotations
