"""The analysis engine: module loading, annotation index, rule driving.

One :class:`LintEngine` run parses every ``*.py`` under the given
roots, builds the project-wide annotation index (``guarded-by`` /
``holds-lock`` declarations), runs every rule over every in-scope
module, and applies inline ``lint: allow`` pragmas.  Baseline handling
lives in :mod:`repro.lint.baseline`; rendering in
:mod:`repro.lint.report`.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import LintError
from repro.lint.annotations import ModuleAnnotations, extract_annotations
from repro.lint.findings import Finding
from repro.lint.project import ProgramIndex, build_program_index
from repro.lint.rules import Rule, default_rules, rule_names
from repro.lint.rules.base import ProjectRule

__all__ = ["LintEngine", "LintResult", "ModuleUnit", "ProjectIndex"]


@dataclass
class ModuleUnit:
    """One parsed module plus its pragma annotations."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    annotations: ModuleAnnotations
    #: ``(first_line, last_line, qualname)`` scopes, outermost first.
    _scopes: List[Tuple[int, int, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, relpath: str) -> "ModuleUnit":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        unit = cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=tree,
            annotations=extract_annotations(source, relpath),
        )
        unit._index_scopes()
        return unit

    def _index_scopes(self) -> None:
        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    qualname = (
                        f"{prefix}.{child.name}" if prefix else child.name
                    )
                    end = getattr(child, "end_lineno", child.lineno)
                    self._scopes.append((child.lineno, end or child.lineno,
                                         qualname))
                    visit(child, qualname)
                else:
                    visit(child, prefix)

        visit(self.tree, "")

    def context_at(self, line: int) -> str:
        """Qualname of the innermost class/function scope at ``line``."""
        best = ""
        best_span = None
        for first, last, qualname in self._scopes:
            if first <= line <= last:
                span = last - first
                if best_span is None or span <= best_span:
                    best, best_span = qualname, span
        return best


@dataclass
class ProjectIndex:
    """Cross-module annotation index consumed by the rules.

    v2: besides the pragma maps, the index now carries every parsed
    :class:`ModuleUnit` (``module_units``) and lazily builds the phase-1
    :class:`~repro.lint.project.ProgramIndex` — symbol table, literal
    vocabulary, call graph with lock summaries — the first time a
    project-scoped rule asks for it via :attr:`program`.
    """

    #: ``(module relpath, class name) -> {attribute: (lock, ...)}``.
    guarded_attrs: Dict[Tuple[str, str], Dict[str, Tuple[str, ...]]] = field(
        default_factory=dict
    )
    #: ``id(FunctionDef node) -> (lock, ...)`` for holds-lock methods.
    holds_lock: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    #: Every parsed module in the run, keyed by package-relative path.
    module_units: Dict[str, ModuleUnit] = field(default_factory=dict)
    #: Engine root, so project rules can locate docs/ next to the tree.
    root: Optional[Path] = None
    _program: Optional[ProgramIndex] = field(default=None, repr=False)

    @property
    def program(self) -> ProgramIndex:
        """The phase-1 whole-program summary (built on first access)."""
        if self._program is None:
            self._program = build_program_index(
                [self.module_units[k] for k in sorted(self.module_units)]
            )
        return self._program

    def index_module(self, module: ModuleUnit) -> List[Finding]:
        problems: List[Finding] = []
        problems.extend(self._index_guarded(module))
        problems.extend(self._index_holds(module))
        return problems

    # -- guarded-by ------------------------------------------------------
    def _index_guarded(self, module: ModuleUnit) -> List[Finding]:
        lines = dict(module.annotations.guarded_by)
        if not lines:
            return []
        problems: List[Finding] = []
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            for stmt in ast.walk(class_node):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
                hit = None
                for line in range(stmt.lineno, end + 1):
                    if line in lines:
                        hit = line
                        break
                if hit is None:
                    continue
                locks = lines.pop(hit)
                attr = self._assigned_attr(stmt)
                if attr is None:
                    problems.append(_config_finding(
                        module, stmt.lineno,
                        "guarded-by must annotate a 'self.<attr>' or "
                        "class-level attribute assignment",
                    ))
                    continue
                key = (module.relpath, class_node.name)
                self.guarded_attrs.setdefault(key, {})[attr] = locks
        for line in sorted(lines):
            problems.append(_config_finding(
                module, line,
                "guarded-by pragma is not attached to an attribute "
                "assignment inside a class",
            ))
        return problems

    @staticmethod
    def _assigned_attr(stmt: ast.stmt) -> Optional[str]:
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ) and target.value.id == "self":
                return target.attr
            if isinstance(target, ast.Name):
                return target.id
        return None

    # -- holds-lock ------------------------------------------------------
    def _index_holds(self, module: ModuleUnit) -> List[Finding]:
        lines = dict(module.annotations.holds_lock)
        if not lines:
            return []
        problems: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            body_start = node.body[0].lineno if node.body else node.lineno
            hit = None
            for line in range(node.lineno, body_start + 1):
                if line in lines:
                    hit = line
                    break
            if hit is not None:
                self.holds_lock[id(node)] = lines.pop(hit)
        for line in sorted(lines):
            problems.append(_config_finding(
                module, line,
                "holds-lock pragma is not attached to a def",
            ))
        return problems


def _config_finding(module: ModuleUnit, line: int, message: str) -> Finding:
    return Finding(
        rule="lint-config",
        path=module.relpath,
        line=line,
        col=0,
        message=message,
        context=module.context_at(line),
    )


@dataclass
class LintResult:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    modules_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


class LintEngine:
    """Run a ruleset over one or more source roots.

    ``root`` anchors package-relative paths: findings for
    ``<root>/repro/core/common.py`` report ``repro/core/common.py``,
    which keeps baseline fingerprints stable across checkouts.
    """

    def __init__(
        self,
        root: Path,
        rules: Optional[Sequence[Rule]] = None,
    ) -> None:
        self.root = Path(root)
        self.rules: List[Rule] = (
            list(rules) if rules is not None else default_rules()
        )

    # -- discovery -------------------------------------------------------
    def discover(self, paths: Optional[Iterable[Path]] = None) -> List[Path]:
        """Sorted ``*.py`` files under ``paths`` (default: the root)."""
        roots = [Path(p) for p in paths] if paths else [self.root]
        files: List[Path] = []
        for candidate in roots:
            if candidate.is_dir():
                files.extend(sorted(candidate.rglob("*.py")))
            elif candidate.suffix == ".py":
                files.append(candidate)
            else:
                raise LintError(f"cannot lint {candidate}: not a python file "
                                "or directory")
        return files

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.name

    # -- execution -------------------------------------------------------
    def run(
        self,
        paths: Optional[Iterable[Path]] = None,
        *,
        restrict: Optional[Iterable[str]] = None,
    ) -> LintResult:
        """Run phase 1 (parse + index) then phase 2 (rules).

        ``restrict`` limits the *per-module* rule pass to the named
        relpaths (``--changed`` uses this) while the whole tree is still
        parsed, so project-scoped rules always see every module — a
        contract broken by an unchanged file must still surface.
        """
        result = LintResult(rules_run=[rule.name for rule in self.rules])
        modules: List[ModuleUnit] = []
        for path in self.discover(paths):
            relpath = self._relpath(path)
            try:
                modules.append(ModuleUnit.load(path, relpath))
            except SyntaxError as exc:
                result.findings.append(Finding(
                    rule="lint-config",
                    path=relpath,
                    line=exc.lineno or 0,
                    col=exc.offset or 0,
                    message=f"module does not parse: {exc.msg}",
                ))
        result.modules_scanned = len(modules)

        index = ProjectIndex(root=self.root)
        for module in modules:
            index.module_units[module.relpath] = module
            result.findings.extend(index.index_module(module))

        known = set(rule_names()) | {rule.name for rule in self.rules} | {"all"}
        for module in modules:
            for pragmas in module.annotations.allows.values():
                for pragma in pragmas:
                    if pragma.rule not in known:
                        result.findings.append(_config_finding(
                            module, pragma.line,
                            f"allow pragma names unknown rule "
                            f"{pragma.rule!r}; known: "
                            f"{', '.join(sorted(known - {'all'}))}",
                        ))

        restricted = set(restrict) if restrict is not None else None
        module_rules = [r for r in self.rules
                        if not isinstance(r, ProjectRule)]
        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]

        def record(module: ModuleUnit, finding: Finding) -> None:
            if module.annotations.allows_for(finding.line, finding.rule):
                result.suppressed.append(dataclasses.replace(
                    finding, suppressed_by="inline-allow",
                ))
            else:
                result.findings.append(finding)

        for module in modules:
            if restricted is not None and module.relpath not in restricted:
                continue
            for rule in module_rules:
                if not rule.applies_to(module.relpath):
                    continue
                for finding in rule.check(module, index):
                    record(module, finding)

        # Phase 2: project-scoped rules run over the whole tree exactly
        # once; inline allows are honoured via the owning module.
        for rule in project_rules:
            for finding in rule.check_project(index):
                owner = index.module_units.get(finding.path)
                if owner is not None:
                    record(owner, finding)
                else:
                    result.findings.append(finding)

        result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return result
