"""Project-wide contract rules: wire protocol and instrument agreement.

Both rules consume the phase-1 :class:`~repro.lint.project.ProgramIndex`
and check a *shared vocabulary* invariant:

``wire-contract``
    ``protocol.OPS`` is the single source of truth for the wire
    vocabulary.  Every op must surface in the server dispatch, the
    client API, the fleet router, and the CLI — and no layer may speak
    an op the protocol never declared (a "phantom" op that would be
    rejected at validation, i.e. dead or drifted code).

``instrument-contract``
    ``repro.obs.instruments.INSTRUMENTS`` is the single source of
    truth for metrics.  Every emission site must name a declared
    instrument with exactly the declared label keys; every declared
    instrument must have at least one emission site; and the table in
    ``docs/observability.md`` must list exactly the declared names
    with matching label sets.

Both rules skip silently when the anchoring module is not part of the
scanned tree, so fixture projects and partial checkouts lint clean.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import ProjectRule, dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import ModuleUnit, ProjectIndex

__all__ = ["InstrumentContractRule", "WireContractRule"]


PROTOCOL_MODULE = "repro/service/protocol.py"

#: Layer → (relpath, human description of the expected surface).
WIRE_LAYERS: Tuple[Tuple[str, str, str], ...] = (
    ("server", "repro/service/server.py", "a dispatch branch or _handle_* method"),
    ("client", "repro/service/client.py", "a ServiceClient method or request payload"),
    ("router", "repro/fleet/router.py", "a routing branch or _handle_* method"),
    ("cli", "repro/cli.py", "a subcommand invoking the client method"),
)


def _op_expression(node: ast.expr) -> bool:
    """Whether ``node`` plausibly evaluates to the request's op field."""
    if isinstance(node, ast.Name):
        return node.id == "op"
    if isinstance(node, ast.Attribute):
        return node.attr == "op"
    if isinstance(node, ast.Subscript):
        key = node.slice
        return isinstance(key, ast.Constant) and key.value == "op"
    if isinstance(node, ast.Call):
        # doc.get("op"), doc.get("op", default)
        callee = node.func
        return (isinstance(callee, ast.Attribute) and callee.attr == "get"
                and bool(node.args)
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == "op")
    return False


def _spoken_ops(module: "ModuleUnit") -> List[Tuple[str, int]]:
    """Every op-name string literal this module *speaks*, with its line.

    An op is spoken by (a) a comparison of a string literal against an
    op-valued expression (``op == "ping"``, ``doc["op"] in (...)``) or
    (b) an ``"op"`` key in a dict literal with a constant string value
    (request construction / response echo).  Attribute or method
    *names* never count — they establish coverage, not vocabulary.
    """
    spoken: List[Tuple[str, int]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            if not any(_op_expression(side) for side in sides):
                continue
            for side in sides:
                if isinstance(side, ast.Constant) and \
                        isinstance(side.value, str):
                    spoken.append((side.value, side.lineno))
                elif isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                    for elt in side.elts:
                        if isinstance(elt, ast.Constant) and \
                                isinstance(elt.value, str):
                            spoken.append((elt.value, elt.lineno))
        elif isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if (isinstance(key, ast.Constant) and key.value == "op"
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    spoken.append((value.value, value.lineno))
    return spoken


def _surfaced_ops(module: "ModuleUnit") -> Set[str]:
    """Op names this module covers by *naming* rather than comparing.

    ``_handle_<op>`` methods (server/router dispatch targets), methods
    named exactly after an op (client API), and attribute calls named
    after an op (CLI invoking the client) all count.
    """
    surfaced: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            surfaced.add(node.name)
            if node.name.startswith("_handle_"):
                surfaced.add(node.name[len("_handle_"):])
        elif isinstance(node, ast.Call) and isinstance(node.func,
                                                       ast.Attribute):
            surfaced.add(node.func.attr)
    return surfaced


class WireContractRule(ProjectRule):
    """Every protocol op surfaces in every layer; no layer speaks a phantom."""

    name = "wire-contract"
    title = ("protocol.OPS, server dispatch, client API, fleet routing and "
             "the CLI must agree on the op vocabulary")

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        protocol = project.module_units.get(PROTOCOL_MODULE)
        if protocol is None:
            return
        ops = self._declared_ops(protocol)
        if ops is None:
            yield self.project_finding(
                project, PROTOCOL_MODULE, 1,
                "could not locate the OPS tuple of string literals; the "
                "wire vocabulary must stay statically enumerable",
            )
            return
        declared, ops_line = ops
        for layer, relpath, expectation in WIRE_LAYERS:
            module = project.module_units.get(relpath)
            if module is None:
                continue
            spoken = _spoken_ops(module)
            covered = {name for name, _ in spoken} | _surfaced_ops(module)
            for op in declared:
                if op not in covered:
                    yield self.project_finding(
                        project, relpath, 1,
                        f"op '{op}' declared in protocol.OPS has no "
                        f"surface in the {layer} layer; expected "
                        f"{expectation}",
                    )
            reported: Set[str] = set()
            for op, line in spoken:
                if op in declared or op in reported:
                    continue
                reported.add(op)
                yield self.project_finding(
                    project, relpath, line,
                    f"the {layer} layer handles op '{op}' which "
                    "protocol.OPS does not declare (phantom op: "
                    "validate_request would reject it before dispatch)",
                )

    @staticmethod
    def _declared_ops(
        protocol: "ModuleUnit",
    ) -> Optional[Tuple[Set[str], int]]:
        for stmt in protocol.tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            if not any(isinstance(t, ast.Name) and t.id == "OPS"
                       for t in targets):
                continue
            value = stmt.value
            if isinstance(value, (ast.Tuple, ast.List)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts
            ):
                return (
                    {e.value for e in value.elts
                     if isinstance(e, ast.Constant)},
                    stmt.lineno,
                )
            return None
        return None


INSTRUMENTS_MODULE = "repro/obs/instruments.py"
OBSERVABILITY_DOC = "docs/observability.md"

#: Facade emitters: ``<name>(<literal>, ... , label=value, ...)``.
#: ``gauge`` is the local scrape-collector wrapper idiom; ``_observe_in``
#: the internal histogram bridge in the obs facade.
EMITTER_NAMES = {"counter_inc", "gauge_set", "observe", "timer", "gauge",
                 "_observe_in"}
#: Keyword arguments of the facade that are values, not labels.
VALUE_KWARGS = {"amount", "value"}

#: ``repro_<metric>`` or ``repro_<metric>{label,label}`` in backticks —
#: the row-key format of the docs/observability.md instrument table.
_DOC_METRIC_RE = re.compile(
    r"`(repro_[a-z0-9_]+)(?:\{([a-z0-9_,\s]*)\})?`"
)


class _Emission:
    """One statically-resolvable metric emission site."""

    __slots__ = ("name", "line", "module", "labels", "opaque_labels")

    def __init__(self, name: str, line: int, module: str,
                 labels: Set[str], opaque_labels: bool) -> None:
        self.name = name
        self.line = line
        self.module = module
        self.labels = labels
        self.opaque_labels = opaque_labels


def _collect_emissions(module: "ModuleUnit") -> List[_Emission]:
    emissions: List[_Emission] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if callee is None:
            continue
        leaf = callee.rpartition(".")[2]
        name_arg: Optional[ast.expr] = None
        if leaf in EMITTER_NAMES:
            position = 1 if leaf == "_observe_in" else 0
            if len(node.args) > position:
                name_arg = node.args[position]
        elif leaf == "family" and len(node.args) >= 2:
            name_arg = node.args[1]
        if not (isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
                and name_arg.value.startswith("repro_")):
            continue
        if leaf == "family":
            # Only a directly-chained ``.labels(...)`` pins the label
            # set; a bare family() call (prime, collectors) just
            # references the instrument.
            emissions.append(_Emission(name_arg.value, node.lineno,
                                       module.relpath, set(), True))
            continue
        labels = {kw.arg for kw in node.keywords if kw.arg is not None}
        opaque = any(kw.arg is None for kw in node.keywords)
        emissions.append(_Emission(
            name_arg.value, node.lineno, module.relpath,
            labels - VALUE_KWARGS, opaque,
        ))
    # ``family(reg, "name").labels(k=...)``: the chained call fixes the
    # label set after all.
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "labels"
                and isinstance(node.func.value, ast.Call)):
            continue
        inner = node.func.value
        inner_callee = dotted_name(inner.func)
        if inner_callee is None or \
                inner_callee.rpartition(".")[2] != "family":
            continue
        if not (len(inner.args) >= 2
                and isinstance(inner.args[1], ast.Constant)
                and isinstance(inner.args[1].value, str)
                and inner.args[1].value.startswith("repro_")):
            continue
        labels = {kw.arg for kw in node.keywords if kw.arg is not None}
        opaque = any(kw.arg is None for kw in node.keywords)
        emissions.append(_Emission(inner.args[1].value, node.lineno,
                                   module.relpath, labels, opaque))
    return emissions


class InstrumentContractRule(ProjectRule):
    """Emissions, the INSTRUMENTS registry and the docs table must agree."""

    name = "instrument-contract"
    title = ("every metric emission names a declared instrument with the "
             "declared labels; no dead instruments; docs table in sync")

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        registry_module = project.module_units.get(INSTRUMENTS_MODULE)
        if registry_module is None:
            return
        declared = self._declared_instruments(registry_module)
        if declared is None:
            yield self.project_finding(
                project, INSTRUMENTS_MODULE, 1,
                "could not parse the INSTRUMENTS dict literal; the "
                "instrument table must stay statically enumerable",
            )
            return

        emitted: Dict[str, int] = {}
        for relpath in sorted(project.module_units):
            module = project.module_units[relpath]
            for emission in _collect_emissions(module):
                if relpath != INSTRUMENTS_MODULE:
                    emitted[emission.name] = \
                        emitted.get(emission.name, 0) + 1
                spec = declared.get(emission.name)
                if spec is None:
                    yield self.project_finding(
                        project, relpath, emission.line,
                        f"emission names undeclared instrument "
                        f"'{emission.name}'; declare it in "
                        "repro.obs.instruments.INSTRUMENTS",
                    )
                    continue
                if emission.opaque_labels:
                    continue  # **labels forwarding: not statically checkable
                _, labelnames, _ = spec
                if emission.labels != set(labelnames):
                    declared_txt = ",".join(sorted(labelnames)) or "(none)"
                    used_txt = ",".join(sorted(emission.labels)) or "(none)"
                    yield self.project_finding(
                        project, relpath, emission.line,
                        f"emission of '{emission.name}' uses label keys "
                        f"{used_txt} but the instrument declares "
                        f"{declared_txt}",
                    )

        for name in sorted(declared):
            if emitted.get(name, 0) == 0:
                _, _, decl_line = declared[name]
                yield self.project_finding(
                    project, INSTRUMENTS_MODULE, decl_line,
                    f"instrument '{name}' is declared but has no "
                    "emission site outside the registry (dead "
                    "instrument)",
                )

        yield from self._check_docs(project, declared)

    # -- registry parsing ------------------------------------------------
    @staticmethod
    def _declared_instruments(
        module: "ModuleUnit",
    ) -> Optional[Dict[str, Tuple[str, Tuple[str, ...], int]]]:
        """``name -> (kind, labelnames, declaration line)``, or ``None``."""
        table: Optional[ast.Dict] = None
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            else:
                continue
            if any(isinstance(t, ast.Name) and t.id == "INSTRUMENTS"
                   for t in targets):
                if isinstance(stmt.value, ast.Dict):
                    table = stmt.value
                break
        if table is None:
            return None
        declared: Dict[str, Tuple[str, Tuple[str, ...], int]] = {}
        for key, value in zip(table.keys, table.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(value, ast.Call)):
                return None
            kind = ""
            if value.args and isinstance(value.args[0], ast.Constant):
                kind = str(value.args[0].value)
            label_expr: Optional[ast.expr] = None
            if len(value.args) >= 3:
                label_expr = value.args[2]
            for kw in value.keywords:
                if kw.arg == "labelnames":
                    label_expr = kw.value
                elif kw.arg == "kind" and isinstance(kw.value, ast.Constant):
                    kind = str(kw.value.value)
            labelnames: Tuple[str, ...] = ()
            if isinstance(label_expr, (ast.Tuple, ast.List)):
                labelnames = tuple(
                    e.value for e in label_expr.elts
                    if isinstance(e, ast.Constant)
                    and isinstance(e.value, str)
                )
            declared[key.value] = (kind, labelnames, key.lineno)
        return declared

    # -- docs cross-check -------------------------------------------------
    def _check_docs(
        self,
        project: "ProjectIndex",
        declared: Dict[str, Tuple[str, Tuple[str, ...], int]],
    ) -> Iterator[Finding]:
        doc_path = None
        if project.root is not None:
            for base in (project.root, project.root.parent):
                candidate = base / OBSERVABILITY_DOC
                if candidate.is_file():
                    doc_path = candidate
                    break
        if doc_path is None:
            return
        documented: Dict[str, Tuple[Set[str], int]] = {}
        text = doc_path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in _DOC_METRIC_RE.finditer(line):
                name = match.group(1)
                labels = {
                    part.strip()
                    for part in (match.group(2) or "").split(",")
                    if part.strip()
                }
                documented.setdefault(name, (labels, lineno))
        for name in sorted(documented):
            labels, lineno = documented[name]
            spec = declared.get(name)
            if spec is None:
                yield self.project_finding(
                    project, OBSERVABILITY_DOC, lineno,
                    f"docs/observability.md documents '{name}' which "
                    "INSTRUMENTS does not declare",
                )
                continue
            _, labelnames, _ = spec
            if labels != set(labelnames):
                declared_txt = ",".join(sorted(labelnames)) or "(none)"
                doc_txt = ",".join(sorted(labels)) or "(none)"
                yield self.project_finding(
                    project, OBSERVABILITY_DOC, lineno,
                    f"docs/observability.md documents '{name}' with "
                    f"labels {doc_txt} but the instrument declares "
                    f"{declared_txt}",
                )
        for name in sorted(declared):
            if name not in documented:
                _, _, decl_line = declared[name]
                yield self.project_finding(
                    project, INSTRUMENTS_MODULE, decl_line,
                    f"instrument '{name}' is missing from the "
                    "docs/observability.md instrument table",
                )
