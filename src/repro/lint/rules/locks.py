"""Lock-discipline race detector.

Attributes declared ``# guarded-by: <lock>`` on their assignment line
may only be accessed through ``self`` while ``with self.<lock>:`` is
held, inside a method annotated ``# holds-lock: <lock>``, or inside
``__init__`` (construction happens-before publication).

The checker is deliberately *self-scoped*: only ``self.<attr>``
accesses inside the declaring class are analysed.  Accesses through
aliases (``state = self.decomposition`` snapshots taken under the
lock) are the codebase's sanctioned pattern and are not re-checked;
accesses from other modules through an object reference are out of
scope (see ``docs/static-analysis.md`` for the soundness trade-off).

Nested functions reset the held-lock set: a closure created inside a
``with self._lock:`` block generally runs *after* the block exits, so
inheriting the lock would be unsound.  A nested def may re-declare its
guarantee with its own ``# holds-lock`` pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name

__all__ = ["LockDisciplineRule"]

GuardMap = Dict[str, Tuple[str, ...]]


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    title = "guarded-by attributes only touched while their lock is held"

    def check(self, module, project) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            guarded = project.guarded_attrs.get(
                (module.relpath, class_node.name)
            )
            if not guarded:
                continue
            for item in class_node.body:
                if not isinstance(
                    item, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if item.name == "__init__":
                    continue
                held = set(project.holds_lock.get(id(item), ()))
                for stmt in item.body:
                    yield from self._check(module, project, stmt, guarded, held)

    def _check(
        self,
        module,
        project,
        node: ast.AST,
        guarded: GuardMap,
        held: Set[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = set(project.holds_lock.get(id(node), ()))
            for stmt in node.body:
                yield from self._check(module, project, stmt, guarded, inner)
            return
        if isinstance(node, ast.Lambda):
            yield from self._check(module, project, node.body, guarded, set())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired: Set[str] = set()
            for item in node.items:
                dotted = dotted_name(item.context_expr)
                if dotted and dotted.startswith("self."):
                    lock = dotted[len("self."):]
                    if "." not in lock:
                        acquired.add(lock)
                yield from self._check(
                    module, project, item.context_expr, guarded, held
                )
            inner_held = held | acquired
            for stmt in node.body:
                yield from self._check(
                    module, project, stmt, guarded, inner_held
                )
            return
        if isinstance(node, ast.Attribute):
            locks = guarded.get(node.attr)
            if (
                locks is not None
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                missing = [lock for lock in locks if lock not in held]
                if missing:
                    yield self.finding(
                        module, node,
                        f"'self.{node.attr}' is guarded by "
                        f"'self.{missing[0]}' but accessed without it; "
                        f"wrap in 'with self.{missing[0]}:' or annotate "
                        f"the method '# holds-lock: {missing[0]}'",
                    )
            yield from self._check(
                module, project, node.value, guarded, held
            )
            return
        for child in ast.iter_child_nodes(node):
            yield from self._check(module, project, child, guarded, held)
