"""Error-taxonomy discipline.

Two checks, both repository-wide:

* **Generic raises** — ``raise Exception(...)`` / ``RuntimeError`` /
  ``BaseException`` hide intent from callers that dispatch on the
  :mod:`repro.errors` hierarchy; domain failures must raise a
  :class:`~repro.errors.ReproError` subclass.  Builtin *contract*
  errors (``ValueError``, ``TypeError``, ...) stay legal: the package
  doctrine is that programming errors propagate as themselves.

* **Broad handlers** — ``except Exception:`` may not swallow.  The
  handler must re-raise, convert (raise anything), reference the bound
  exception (logging / payload building counts), or record an outcome
  through a collector call (``.append``, ``.escalate``, ``.record``,
  ``.set_result``, ``.put``, ``.add``).  A *bare* ``except:`` is held
  to the strictest standard: it must contain a ``raise``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name

__all__ = ["ErrorTaxonomyRule"]

#: Raising these directly loses taxonomy information.
GENERIC_RAISES = {"Exception", "BaseException", "RuntimeError"}

#: Broad exception classes whose handlers are audited.
BROAD_CATCHES = {"Exception", "BaseException"}

#: Method names that count as "recording" the failure.
RECORDING_METHODS = {
    "append", "escalate", "record", "set_result", "put", "add",
}


def _type_names(node: Optional[ast.expr]) -> Iterator[str]:
    if node is None:
        return
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _type_names(element)
        return
    dotted = dotted_name(node)
    if dotted is not None:
        yield dotted.rsplit(".", 1)[-1]


class ErrorTaxonomyRule(Rule):
    name = "error-taxonomy"
    title = "raises use the repro.errors hierarchy; broad excepts never swallow"

    def check(self, module, project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(module, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)

    def _check_raise(self, module, node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:
            return  # bare re-raise is always fine
        target = exc.func if isinstance(exc, ast.Call) else exc
        dotted = dotted_name(target)
        if dotted is None:
            return
        name = dotted.rsplit(".", 1)[-1]
        if name in GENERIC_RAISES:
            yield self.finding(
                module, node,
                f"raise of generic '{name}' loses the error taxonomy; "
                "raise a repro.errors subclass (ReproError hierarchy) "
                "instead",
            )

    def _check_handler(
        self, module, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        bare = handler.type is None
        broad = bare or any(
            name in BROAD_CATCHES for name in _type_names(handler.type)
        )
        if not broad:
            return
        has_raise = any(
            isinstance(node, ast.Raise) for node in ast.walk(handler)
        )
        if bare:
            if not has_raise:
                yield self.finding(
                    module, handler,
                    "bare 'except:' swallows everything including "
                    "KeyboardInterrupt; re-raise, or catch "
                    "'Exception' and convert/record it",
                )
            return
        if has_raise:
            return
        if self._references_exception(handler) or self._records(handler):
            return
        yield self.finding(
            module, handler,
            "broad 'except Exception:' swallows the failure; re-raise, "
            "convert to a ReproError, or record an outcome "
            "(TaskOutcome / report collector)",
        )

    @staticmethod
    def _references_exception(handler: ast.ExceptHandler) -> bool:
        if handler.name is None:
            return False
        for node in ast.walk(handler):
            if isinstance(node, ast.Name) and node.id == handler.name and (
                isinstance(node.ctx, ast.Load)
            ):
                return True
        return False

    @staticmethod
    def _records(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in RECORDING_METHODS
            ):
                return True
        return False
