"""Project-wide lock-order analysis: deadlock cycles and await-under-lock.

Phase 1 (:mod:`repro.lint.project`) summarises every function's lock
acquisitions, calls and awaits.  This rule closes those summaries over
the call graph and checks two global properties the per-function
``lock-discipline`` rule cannot see:

* **lock-order cycles** — if lock A is ever acquired while B is held
  and (possibly through a chain of calls) B while A is held, two
  threads interleaving those paths can deadlock.  Locks are identified
  per *class attribute* (all instances of ``ServiceState._lock`` are
  one node), which is the granularity at which the deadlock argument
  holds.  Re-entry of the same lock is ``lock-discipline``'s concern
  and is ignored here.

* **await under a thread lock** — in the async service/fleet planes,
  ``await`` while holding a ``threading.*`` lock parks the *entire*
  event loop behind a lock that only another loop task might release:
  at best a latency cliff, at worst a single-threaded deadlock.
  ``asyncio`` locks are cooperative and exempt.

The analysis is transitive: a call made while holding a lock inherits
every lock its resolvable callees acquire.  Unresolvable calls
contribute nothing, so findings never rest on a guessed edge.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

from repro.lint.findings import Finding
from repro.lint.rules.base import ProjectRule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import ProjectIndex
    from repro.lint.project import ProgramIndex

__all__ = ["LockOrderRule"]

#: Prefixes of the async planes where await-under-lock is enforced.
ASYNC_PLANES: Tuple[str, ...] = ("repro/service/", "repro/fleet/",
                                 "repro/autopilot/")


class LockOrderRule(ProjectRule):
    """Global lock-acquisition order must be acyclic; no await under a
    thread lock in the async planes."""

    name = "lock-order"
    title = ("transitive lock-acquisition graph must be acyclic, and "
             "service/fleet async code must not await holding a thread lock")

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        program = project.program
        for cycle in program.lock_cycles():
            members = sorted({edge.src.label for edge in cycle}
                             | {edge.dst.label for edge in cycle})
            evidence = "; ".join(edge.render() for edge in cycle)
            anchor = min(cycle, key=lambda e: (e.module, e.line))
            yield self.project_finding(
                project, anchor.module, anchor.line,
                f"lock-order cycle between {', '.join(members)} "
                f"(deadlock potential): {evidence}",
            )
        yield from self._check_awaits(project, program)

    def _check_awaits(self, project: "ProjectIndex",
                      program: "ProgramIndex") -> Iterator[Finding]:
        for fn in sorted(program.functions(),
                         key=lambda f: (f.module, f.lineno)):
            if not fn.is_async:
                continue
            if not fn.module.startswith(ASYNC_PLANES):
                continue
            for site in fn.awaits:
                if not site.thread_locks:
                    continue
                held = ", ".join(sorted(k.label for k in site.thread_locks))
                yield self.project_finding(
                    project, fn.module, site.line,
                    f"await while holding thread lock(s) {held} in "
                    f"{fn.qualname}: the event loop stalls until the "
                    "lock is released (use asyncio.Lock or release "
                    "before awaiting)",
                )
