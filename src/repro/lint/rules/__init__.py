"""Pluggable rule registry.

The default ruleset ships the five project invariants; downstream code
(or tests) can :func:`register_rule` additional ones — registration is
by *class*, instantiated fresh per engine run so rules stay stateless
between runs.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import LintError
from repro.lint.rules.async_safety import AsyncSafetyRule
from repro.lint.rules.base import ProjectRule, Rule
from repro.lint.rules.contracts import InstrumentContractRule, WireContractRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.immutability import FrozenGraphRule
from repro.lint.rules.lockorder import LockOrderRule
from repro.lint.rules.locks import LockDisciplineRule
from repro.lint.rules.taxonomy import ErrorTaxonomyRule

__all__ = [
    "ProjectRule",
    "Rule",
    "AsyncSafetyRule",
    "DeterminismRule",
    "ErrorTaxonomyRule",
    "FrozenGraphRule",
    "InstrumentContractRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "WireContractRule",
    "default_rules",
    "register_rule",
    "rule_names",
]

_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_cls: Type[Rule]) -> Type[Rule]:
    """Add a rule class to the default registry (usable as a decorator)."""
    name = rule_cls.name
    if not name or name == Rule.name:
        raise LintError(f"rule {rule_cls.__name__} needs a distinct name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not rule_cls:
        raise LintError(f"duplicate rule name {name!r}")
    _REGISTRY[name] = rule_cls
    return rule_cls


for _cls in (
    LockDisciplineRule,
    AsyncSafetyRule,
    FrozenGraphRule,
    ErrorTaxonomyRule,
    DeterminismRule,
    WireContractRule,
    InstrumentContractRule,
    LockOrderRule,
):
    register_rule(_cls)


def rule_names() -> List[str]:
    """Registered rule names, sorted."""
    return sorted(_REGISTRY)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [_REGISTRY[name]() for name in rule_names()]
