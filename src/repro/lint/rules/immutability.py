"""Frozen-graph immutability.

The correctness of the whole CommonGraph pipeline rests on composed,
never-mutated graph objects: the decomposition shares ``EdgeSet``
instances between snapshots, the planner shares one common-graph CSR
across queries, and caches hand out references assuming value
semantics.  Outside ``repro/graph/`` (where the representations are
*built*), nothing may write to a ``CSRGraph``'s ``indptr`` /
``indices`` / ``weights`` arrays or an ``EdgeSet``'s ``_codes``.

Detected shapes: attribute assignment (plain, augmented, annotated),
item assignment into the arrays, ``del``, in-place NumPy methods
(``.sort()``, ``.fill()``, ...), and aliasing the arrays as an
``out=`` target.  A class outside ``repro/graph/`` initialising its
*own* ``self.weights`` in ``__init__`` is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule

__all__ = ["FrozenGraphRule"]

#: Internal array attributes of CSRGraph and EdgeSet.
FROZEN_ATTRS = {"indptr", "indices", "weights", "_codes"}

#: NumPy ndarray methods that mutate in place.
MUTATING_METHODS = {
    "sort", "fill", "resize", "partition", "put", "byteswap", "setflags",
}


def _frozen_attribute(node: ast.AST) -> Optional[ast.Attribute]:
    """The ``X.<frozen>`` attribute underlying ``node``, if any."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in FROZEN_ATTRS:
        return node
    return None


class FrozenGraphRule(Rule):
    name = "frozen-graph"
    title = "no in-place mutation of CSRGraph/EdgeSet internals outside repro/graph/"

    def applies_to(self, relpath: str) -> bool:
        return not relpath.startswith("repro/graph/")

    def check(self, module, project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _frozen_attribute(target)
                    if attr is not None and not self._own_init_slot(
                        module, attr, target
                    ):
                        yield self._mutation(module, attr, "assignment to")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _frozen_attribute(target)
                    if attr is not None:
                        yield self._mutation(module, attr, "deletion of")
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATING_METHODS
                ):
                    attr = _frozen_attribute(func.value)
                    if attr is not None:
                        yield self._mutation(
                            module, attr, f"in-place '.{func.attr}()' on"
                        )
                for keyword in node.keywords:
                    if keyword.arg == "out":
                        attr = _frozen_attribute(keyword.value)
                        if attr is not None:
                            yield self._mutation(
                                module, attr, "'out=' write into"
                            )

    def _own_init_slot(
        self, module, attr: ast.Attribute, target: ast.AST
    ) -> bool:
        """``self.weights = ...`` in a foreign ``__init__`` is that
        class's own attribute, not a graph internal."""
        return (
            isinstance(target, ast.Attribute)
            and isinstance(attr.value, ast.Name)
            and attr.value.id == "self"
            and module.context_at(attr.lineno).endswith(".__init__")
        )

    def _mutation(self, module, attr: ast.Attribute, what: str) -> Finding:
        return self.finding(
            module, attr,
            f"{what} frozen graph internal '.{attr.attr}' outside "
            "repro/graph/; build a new CSRGraph/EdgeSet instead "
            "(snapshots are composed, never mutated)",
        )
