"""Async-safety: no blocking calls on the event loop.

Scans every ``async def`` under ``repro/service/`` and
``repro/fleet/`` (and in ``repro/resilience.py``, whose retry/breaker
helpers run on the loop)
for calls that stall the event loop: ``time.sleep``, the *sync*
``retry_call``, file/socket/subprocess I/O, bare ``Future.result()``
joins, and zero-argument synchronisation joins (``.acquire()`` /
``.wait()`` / ``.join()`` / ``.get()``).  The service dispatches
blocking work through ``run_in_executor``; code inside a nested *sync*
``def`` (the executor target) is therefore not scanned, and a call that
is directly ``await``-ed is by definition not a blocking sync call.

Synchronisation calls need one more exemption: an object *constructed
from* ``asyncio`` (``self._semaphore = asyncio.Semaphore(...)``) has
coroutine ``acquire``/``wait``/``get`` methods that are handed to
``await``/``asyncio.wait_for`` rather than awaited in place — the rule
tracks every receiver assigned from an ``asyncio.*`` constructor across
the module and treats its methods as non-blocking.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name, iter_statements

__all__ = ["AsyncSafetyRule"]

#: Fully-dotted callables that block the calling thread.
BLOCKING_DOTTED = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
    "shutil.copyfileobj",
}

#: Bare names that block (``retry_call`` is the sync retry helper —
#: its event-loop twin is ``retry_call_async``).
BLOCKING_NAMES = {"open", "input", "retry_call", "with_retries"}

#: Blocking zero-argument methods regardless of receiver type.
BLOCKING_METHODS = {
    "read_text", "read_bytes", "write_text", "write_bytes",
}

#: Zero-argument synchronisation joins: blocking on ``threading`` /
#: ``queue`` objects, coroutines on ``asyncio`` ones — flagged unless
#: the receiver is a tracked asyncio primitive or the call is awaited.
BLOCKING_SYNC_METHODS = {"acquire", "join", "wait", "get"}


class AsyncSafetyRule(Rule):
    name = "async-blocking"
    title = "no blocking calls directly inside async service code"

    def applies_to(self, relpath: str) -> bool:
        return (relpath.startswith("repro/service/")
                or relpath.startswith("repro/fleet/")
                or relpath.startswith("repro/livetip/")
                or relpath.startswith("repro/autopilot/")
                or relpath == "repro/resilience.py")

    def check(self, module, project) -> Iterator[Finding]:
        asyncio_receivers = self._asyncio_receivers(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_def(
                    module, node, asyncio_receivers
                )

    @staticmethod
    def _asyncio_receivers(tree: ast.AST) -> Set[str]:
        """Names/attributes assigned from an ``asyncio.*`` constructor."""
        receivers: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            if not isinstance(value, ast.Call):
                continue
            dotted = dotted_name(value.func)
            if dotted is None or not dotted.startswith("asyncio."):
                continue
            for target in targets:
                if isinstance(target, ast.Attribute):
                    receivers.add(target.attr)
                elif isinstance(target, ast.Name):
                    receivers.add(target.id)
        return receivers

    def _check_async_def(
        self, module, fn: ast.AsyncFunctionDef,
        asyncio_receivers: Set[str],
    ) -> Iterator[Finding]:
        awaited: Set[int] = set()
        for node in iter_statements(fn.body, into_functions=False):
            if isinstance(node, ast.Await):
                awaited.add(id(node.value))
        for node in iter_statements(fn.body, into_functions=False):
            if isinstance(node, ast.AsyncFunctionDef):
                continue  # reported by its own walk
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            label = self._blocking_label(node, asyncio_receivers)
            if label is not None:
                yield self.finding(
                    module, node,
                    f"blocking call '{label}' inside "
                    f"'async def {fn.name}'; dispatch through "
                    "run_in_executor or use the async variant",
                )

    @staticmethod
    def _blocking_label(call: ast.Call,
                        asyncio_receivers: Set[str]) -> "str | None":
        func = call.func
        dotted = dotted_name(func)
        if dotted is not None:
            if dotted in BLOCKING_DOTTED:
                return dotted
            if dotted in BLOCKING_NAMES:
                return dotted
        if isinstance(func, ast.Attribute):
            if func.attr in BLOCKING_METHODS:
                return f".{func.attr}()"
            if (
                func.attr == "result"
                and not call.args
                and not call.keywords
            ):
                return ".result()"
            if (
                func.attr in BLOCKING_SYNC_METHODS
                and not call.args
                and not call.keywords
            ):
                receiver = func.value
                if isinstance(receiver, ast.Attribute):
                    name = receiver.attr
                elif isinstance(receiver, ast.Name):
                    name = receiver.id
                else:
                    name = None
                if name not in asyncio_receivers:
                    return f".{func.attr}()"
        return None
