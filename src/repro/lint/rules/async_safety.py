"""Async-safety: no blocking calls on the event loop.

Scans every ``async def`` under ``repro/service/`` for calls that
stall the event loop: ``time.sleep``, the *sync* ``retry_call``,
file/socket/subprocess I/O, and bare ``Future.result()`` joins.  The
service dispatches blocking work through ``run_in_executor``; code
inside a nested *sync* ``def`` (the executor target) is therefore not
scanned, and a call that is directly ``await``-ed is by definition not
a blocking sync call.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name, iter_statements

__all__ = ["AsyncSafetyRule"]

#: Fully-dotted callables that block the calling thread.
BLOCKING_DOTTED = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.waitpid",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
    "shutil.copyfileobj",
}

#: Bare names that block (``retry_call`` is the sync retry helper —
#: its event-loop twin is ``retry_call_async``).
BLOCKING_NAMES = {"open", "input", "retry_call", "with_retries"}

#: Blocking zero-argument methods regardless of receiver type.
BLOCKING_METHODS = {
    "read_text", "read_bytes", "write_text", "write_bytes",
}


class AsyncSafetyRule(Rule):
    name = "async-blocking"
    title = "no blocking calls directly inside async service code"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("repro/service/")

    def check(self, module, project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_def(module, node)

    def _check_async_def(
        self, module, fn: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        awaited: Set[int] = set()
        for node in iter_statements(fn.body, into_functions=False):
            if isinstance(node, ast.Await):
                awaited.add(id(node.value))
        for node in iter_statements(fn.body, into_functions=False):
            if isinstance(node, ast.AsyncFunctionDef):
                continue  # reported by its own walk
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            label = self._blocking_label(node)
            if label is not None:
                yield self.finding(
                    module, node,
                    f"blocking call '{label}' inside "
                    f"'async def {fn.name}'; dispatch through "
                    "run_in_executor or use the async variant",
                )

    @staticmethod
    def _blocking_label(call: ast.Call) -> "str | None":
        func = call.func
        dotted = dotted_name(func)
        if dotted is not None:
            if dotted in BLOCKING_DOTTED:
                return dotted
            if dotted in BLOCKING_NAMES:
                return dotted
        if isinstance(func, ast.Attribute):
            if func.attr in BLOCKING_METHODS:
                return f".{func.attr}()"
            if (
                func.attr == "result"
                and not call.args
                and not call.keywords
            ):
                return ".result()"
        return None
