"""Rule protocol and shared AST helpers.

A rule is a small object with a ``name``, a scope predicate
(:meth:`Rule.applies_to`) and a :meth:`Rule.check` that yields
:class:`~repro.lint.findings.Finding` records for one module.  Rules
never mutate the module or the project index, so the engine is free to
run them in any order.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.engine import ModuleUnit, ProjectIndex

__all__ = ["ProjectRule", "Rule", "dotted_name", "iter_statements"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to ``"a.b.c"`` (else ``None``)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_statements(
    body: Iterable[ast.stmt], *, into_functions: bool = True
) -> Iterator[ast.AST]:
    """Walk every node under ``body``.

    With ``into_functions=False``, nested ``def``/``lambda`` bodies are
    skipped — the async-safety rule uses this, since code inside a
    nested sync function is not executed on the event loop.
    """
    stack = list(body)
    while stack:
        node = stack.pop()
        yield node
        # Prune at the popped node, not at its children: a nested def
        # that is itself a statement of ``body`` must be yielded (so
        # callers can see it) but never expanded.
        if not into_functions and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


class Rule:
    """Base class for project-invariant lint rules."""

    #: Stable identifier used in reports, pragmas and the baseline.
    name: str = "rule"
    #: One-line human description for ``--list-rules`` and the docs.
    title: str = ""

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule scans the module at package-relative ``relpath``."""
        return True

    def check(
        self, module: "ModuleUnit", project: "ProjectIndex"
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: "ModuleUnit", node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=module.relpath,
            line=line,
            col=col,
            message=message,
            context=module.context_at(line),
        )

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"


class ProjectRule(Rule):
    """A rule that runs once over the whole program, not per module.

    The engine calls :meth:`check_project` exactly once per run, after
    every module is parsed, handing it the :class:`ProjectIndex` whose
    ``program`` attribute exposes the phase-1 whole-program summary
    (symbol table, literal vocabulary, call graph with lock summaries).
    ``check`` is inherited but never invoked for project rules.
    """

    def applies_to(self, relpath: str) -> bool:  # pragma: no cover - unused
        return False

    def check(
        self, module: "ModuleUnit", project: "ProjectIndex"
    ) -> Iterator[Finding]:  # pragma: no cover - project rules don't run per-module
        return iter(())

    def check_project(self, project: "ProjectIndex") -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        project: "ProjectIndex",
        relpath: str,
        line: int,
        message: str,
        *,
        col: int = 0,
    ) -> Finding:
        module = project.module_units.get(relpath)
        context = module.context_at(line) if module is not None else ""
        return Finding(
            rule=self.name,
            path=relpath,
            line=line,
            col=col,
            message=message,
            context=context,
        )
