"""Determinism: algorithm paths never read the wall clock or global RNG.

Fault-injection reproducibility (``repro.faults``) and the bit-exact
equivalence tests between evaluators both depend on ``repro/core/``,
``repro/kickstarter/`` and ``repro/temporal/`` being pure functions of
their inputs plus an explicit seed.  (The temporal engine resolves
``as_of_timestamp`` from a version→timestamp mapping *passed in* by the
service state, never by reading the clock itself — exactly the
discipline this rule enforces.)  This rule flags, in those packages
only:

* wall-clock reads — ``time.time``, ``datetime.now`` and friends,
  including through import aliases (``from time import time``,
  ``import time as t``); monotonic *duration* telemetry via
  ``time.perf_counter`` / ``time.monotonic`` stays legal: it never
  feeds back into values;
* calendar-clock *methods* — a ``.now()`` / ``.utcnow()`` /
  ``.today()`` call on any receiver **except an injected clock**: the
  sanctioned way to time things in an algorithm path is the
  :class:`repro.obs.clock.Clock` protocol, recognised here by the
  receiver being named ``clock`` / ``_clock`` (e.g. ``self.clock.now()``,
  ``self._clock.now()``);
* ``time.sleep`` — a timing-dependent stall in an algorithm path;
* the process-global RNG — any ``random.*`` / ``numpy.random.*`` call,
  and *unseeded* constructions ``random.Random()`` /
  ``numpy.random.default_rng()``.  Seeded constructions
  (``random.Random(seed)``, ``default_rng(seed)``) are the sanctioned
  pattern.

The :mod:`repro.obs` facade (``obs.phase_span``, ``obs.span``,
``obs.counter_inc``, …) is explicitly exempt: its timing comes from an
injected clock, so instrumented algorithm code stays deterministic.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name

__all__ = ["DeterminismRule"]

WALL_CLOCK = {
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.strftime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}

#: Seeded-RNG constructors: legal with at least one argument.
SEEDED_CONSTRUCTORS = {
    "random.Random",
    "np.random.default_rng", "numpy.random.default_rng",
    "np.random.RandomState", "numpy.random.RandomState",
    "np.random.SeedSequence", "numpy.random.SeedSequence",
}

#: Calendar-clock method names: flagged on any receiver that is not an
#: injected clock.
CLOCK_METHODS = {"now", "utcnow", "today"}

#: Receiver names recognised as the injected-Clock pattern.
CLOCK_RECEIVERS = {"clock", "_clock"}

#: Call prefixes that are exempt wholesale: the observability facade
#: times through an injected Clock, never the wall clock.
SANCTIONED_PREFIXES = ("obs.", "repro.obs.")


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the canonical dotted names they import.

    ``import time as t`` → ``{"t": "time"}``; ``from time import time``
    → ``{"time": "time.time"}``; relative imports are skipped (they
    cannot smuggle the stdlib clock in under another name).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".", 1)[0]
                canonical = name.name if name.asname else local
                if local != canonical:
                    aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module is None:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def _normalise(dotted: str, aliases: Dict[str, str]) -> str:
    """Rewrite the leading segment of ``dotted`` through the alias map."""
    head, sep, rest = dotted.partition(".")
    canonical = aliases.get(head)
    if canonical is None:
        return dotted
    return canonical + sep + rest if sep else canonical


class DeterminismRule(Rule):
    name = "determinism"
    title = "no wall-clock reads or unseeded RNG in algorithm paths"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(
            ("repro/autopilot/", "repro/core/", "repro/kickstarter/",
             "repro/livetip/", "repro/temporal/")
        )

    def check(self, module, project) -> Iterator[Finding]:
        aliases = _import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            message = self._classify(_normalise(dotted, aliases), node)
            if message is not None:
                yield self.finding(module, node, message)

    @staticmethod
    def _classify(dotted: str, call: ast.Call) -> Optional[str]:
        if dotted.startswith(SANCTIONED_PREFIXES):
            return None
        if dotted in WALL_CLOCK:
            return (
                f"wall-clock read '{dotted}' in an algorithm path breaks "
                "replay determinism; thread a timestamp in explicitly "
                "(perf_counter/monotonic durations are fine)"
            )
        if dotted == "time.sleep":
            return (
                "'time.sleep' in an algorithm path makes behaviour "
                "timing-dependent; inject the sleep function "
                "(repro.resilience pattern) so tests pass a no-op"
            )
        if dotted in SEEDED_CONSTRUCTORS:
            if not call.args and not call.keywords:
                return (
                    f"'{dotted}()' without a seed is entropy-seeded; "
                    "pass an explicit seed for reproducible runs"
                )
            return None
        if dotted.startswith(("random.", "np.random.", "numpy.random.")):
            return (
                f"'{dotted}' uses the process-global RNG; construct a "
                "seeded generator (numpy.random.default_rng(seed) / "
                "random.Random(seed)) and thread it through"
            )
        receiver, _, method = dotted.rpartition(".")
        if method in CLOCK_METHODS and receiver:
            if receiver.rpartition(".")[2] in CLOCK_RECEIVERS:
                return None  # injected Clock (repro.obs.clock) — sanctioned
            return (
                f"'{dotted}' looks like a calendar-clock read in an "
                "algorithm path; inject a repro.obs.clock.Clock "
                "(receiver named 'clock'/'_clock') instead of reading "
                "the wall clock"
            )
        return None
