"""Determinism: algorithm paths never read the wall clock or global RNG.

Fault-injection reproducibility (``repro.faults``) and the bit-exact
equivalence tests between evaluators both depend on ``repro/core/``
and ``repro/kickstarter/`` being pure functions of their inputs plus
an explicit seed.  This rule flags, in those packages only:

* wall-clock reads — ``time.time``, ``datetime.now`` and friends
  (monotonic *duration* telemetry via ``time.perf_counter`` /
  ``time.monotonic`` stays legal: it never feeds back into values);
* ``time.sleep`` — a timing-dependent stall in an algorithm path;
* the process-global RNG — any ``random.*`` / ``numpy.random.*`` call,
  and *unseeded* constructions ``random.Random()`` /
  ``numpy.random.default_rng()``.  Seeded constructions
  (``random.Random(seed)``, ``default_rng(seed)``) are the sanctioned
  pattern.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.rules.base import Rule, dotted_name

__all__ = ["DeterminismRule"]

WALL_CLOCK = {
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.strftime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}

#: Seeded-RNG constructors: legal with at least one argument.
SEEDED_CONSTRUCTORS = {
    "random.Random",
    "np.random.default_rng", "numpy.random.default_rng",
    "np.random.RandomState", "numpy.random.RandomState",
    "np.random.SeedSequence", "numpy.random.SeedSequence",
}


class DeterminismRule(Rule):
    name = "determinism"
    title = "no wall-clock reads or unseeded RNG in algorithm paths"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("repro/core/", "repro/kickstarter/"))

    def check(self, module, project) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            message = self._classify(dotted, node)
            if message is not None:
                yield self.finding(module, node, message)

    @staticmethod
    def _classify(dotted: str, call: ast.Call) -> Optional[str]:
        if dotted in WALL_CLOCK:
            return (
                f"wall-clock read '{dotted}' in an algorithm path breaks "
                "replay determinism; thread a timestamp in explicitly "
                "(perf_counter/monotonic durations are fine)"
            )
        if dotted == "time.sleep":
            return (
                "'time.sleep' in an algorithm path makes behaviour "
                "timing-dependent; inject the sleep function "
                "(repro.resilience pattern) so tests pass a no-op"
            )
        if dotted in SEEDED_CONSTRUCTORS:
            if not call.args and not call.keywords:
                return (
                    f"'{dotted}()' without a seed is entropy-seeded; "
                    "pass an explicit seed for reproducible runs"
                )
            return None
        if dotted.startswith(("random.", "np.random.", "numpy.random.")):
            return (
                f"'{dotted}' uses the process-global RNG; construct a "
                "seeded generator (numpy.random.default_rng(seed) / "
                "random.Random(seed)) and thread it through"
            )
        return None
