"""SARIF 2.1.0 rendering for lint results.

SARIF (Static Analysis Results Interchange Format) is what code
hosts ingest to annotate findings onto PR diffs — CI runs
``repro lint --format sarif`` and uploads the file, and every finding
shows up inline at its source line.

Notes on the mapping:

* ``partialFingerprints`` carries the same path-independent v2
  fingerprint the baseline uses, so the host's "new vs. pre-existing"
  dedup agrees with ours.
* Suppressed findings (inline allows and baselined entries) are
  included with a ``suppressions`` block rather than dropped — the
  host then shows them as reviewed, matching the text report's
  "suppressed" count.
* ``uri_prefix`` re-anchors module-relative paths (``repro/...``) to
  repository-relative ones (``src/repro/...``) so annotations land.
  Paths already anchored at the repository root — the ``docs/``
  cross-check findings — are passed through untouched.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

__all__ = ["render_sarif"]

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
_TOOL_URI = "https://github.com/commongraph/repro"


def _artifact_uri(path: str, uri_prefix: str) -> str:
    if not uri_prefix or path.startswith("docs/"):
        return path
    return f"{uri_prefix.rstrip('/')}/{path}"


def _result(finding: Finding, rule_index: Dict[str, int],
            uri_prefix: str) -> Dict[str, Any]:
    doc: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": _artifact_uri(finding.path, uri_prefix),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": max(finding.col + 1, 1),
                },
            },
        }],
        "partialFingerprints": {
            "reproLint/v2": finding.fingerprint,
        },
    }
    if finding.rule in rule_index:
        doc["ruleIndex"] = rule_index[finding.rule]
    if finding.context:
        doc["locations"][0]["logicalLocations"] = [{
            "fullyQualifiedName": finding.context,
        }]
    if finding.suppressed_by:
        kind = ("inSource" if finding.suppressed_by == "inline-allow"
                else "external")
        doc["suppressions"] = [{
            "kind": kind,
            "justification": f"suppressed by {finding.suppressed_by}",
        }]
    return doc


def render_sarif(
    result: LintResult,
    baselined: Sequence[Finding] = (),
    *,
    uri_prefix: str = "",
    rules: Sequence[Any] = (),
) -> str:
    """One SARIF run covering active and suppressed findings.

    ``rules`` is the engine's rule list; each contributes tool-driver
    metadata so hosts can show titles next to annotations.
    """
    driver_rules: List[Dict[str, Any]] = []
    rule_index: Dict[str, int] = {}
    for rule in rules:
        rule_index[rule.name] = len(driver_rules)
        driver_rules.append({
            "id": rule.name,
            "shortDescription": {"text": rule.title or rule.name},
            "defaultConfiguration": {"level": "error"},
        })
    results = [
        _result(finding, rule_index, uri_prefix)
        for finding in result.findings
    ]
    results.extend(
        _result(finding, rule_index, uri_prefix)
        for finding in (*result.suppressed, *baselined)
    )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": _TOOL_URI,
                    "rules": driver_rules,
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
