"""Project-invariant static analysis for the CommonGraph codebase.

``repro.lint`` encodes the invariants the runtime never checks —
lock discipline around shared caches, async-safety of the service
front end, immutability of frozen graph objects, the error taxonomy,
determinism of the algorithm paths, and (since v2) the *project-wide*
contracts: wire-protocol agreement across server/client/router/CLI,
instrument-registry agreement at every emission site, and a global
lock-acquisition order — as AST-level rules run over the package on
every CI build (``python -m repro lint``).

The analysis is two-phase: phase 1 parses every module and builds the
whole-program index (:mod:`repro.lint.project` — symbol table, string
literal vocabulary, call graph with lock summaries); phase 2 runs the
per-module rules and then the project-scoped rules over that index.

Layout::

    engine.py       module loading, annotation index, rule driving
    project.py      phase-1 whole-program index for project rules
    rules/          one module per rule + the pluggable registry
    findings.py     Finding records and their baseline fingerprints
    annotations.py  the guarded-by / holds-lock / allow pragma grammar
    baseline.py     grandfathered findings (justification mandatory)
    report.py       text and JSON rendering
    sarif.py        SARIF 2.1.0 rendering for PR annotation

See ``docs/static-analysis.md`` for the rule catalog and the
annotation grammar.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.annotations import (
    AllowPragma,
    ModuleAnnotations,
    extract_annotations,
)
from repro.lint.baseline import (
    PLACEHOLDER_JUSTIFICATION,
    BaselineEntry,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import LintEngine, LintResult, ModuleUnit, ProjectIndex
from repro.lint.findings import Finding
from repro.lint.project import ProgramIndex, build_program_index
from repro.lint.report import render_json, render_text
from repro.lint.rules import (
    ProjectRule,
    Rule,
    default_rules,
    register_rule,
    rule_names,
)
from repro.lint.sarif import render_sarif

__all__ = [
    "AllowPragma",
    "BaselineEntry",
    "Finding",
    "ModuleAnnotations",
    "PLACEHOLDER_JUSTIFICATION",
    "extract_annotations",
    "LintEngine",
    "LintResult",
    "ModuleUnit",
    "ProgramIndex",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "apply_baseline",
    "build_program_index",
    "default_rules",
    "load_baseline",
    "package_root",
    "register_rule",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_names",
    "run_lint",
    "write_baseline",
]


def package_root() -> Path:
    """The source root the package was imported from (parent of ``repro``)."""
    return Path(__file__).resolve().parents[2]


def run_lint(
    paths: Optional[Iterable[Path]] = None,
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> LintResult:
    """Lint ``paths`` (default: the installed ``repro`` package).

    Convenience wrapper used by the CLI and the self-lint test; for
    baseline-aware runs compose :class:`LintEngine` with
    :func:`load_baseline` / :func:`apply_baseline` directly.
    """
    base = Path(root) if root is not None else package_root()
    engine = LintEngine(base, rules=rules)
    if paths is None:
        paths = [base / "repro"]
    return engine.run(paths)
