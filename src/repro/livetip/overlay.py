"""Live-tip overlay: sub-batch per-update ingest over the tip snapshot.

The Triangular Grid makes *batch*-granular evolving analytics cheap,
but a single-edge change still costs a whole TG column (a durable
store append plus an incremental extension).  RisGraph-style systems
show that per-update analysis can be orders of magnitude cheaper when
the update is absorbed by *localized incremental repair* of already
converged query state.  :class:`LiveTipOverlay` is that hot path:

* it owns a :class:`~repro.graph.mutable.MutableGraph` replica of the
  tip snapshot (row-local mutation, out- and in-direction — exactly
  what KickStarter-style repair needs);
* every single-edge **insert** is pushed through the engine's
  monotonic repair (:func:`~repro.kickstarter.engine.incremental_additions`
  — seed the new edge, push until stable);
* every single-edge **delete** runs the KickStarter trimming pass
  (:func:`~repro.kickstarter.deletion.trim_and_repair` — tag the
  approximation-tree subtree below the edge, trim it, re-push from
  untagged in-neighbours);
* repaired :class:`~repro.kickstarter.engine.VertexState`\\ s are kept
  per ``(algorithm, source)`` so repeated updates repair incrementally
  instead of recomputing, and tip queries read the repaired values
  directly — sub-millisecond, no TG column rebuild.

The overlay is an *overlay*: the Triangular Grid below it never sees
individual updates.  The update log is periodically folded into one
real batch by the :class:`~repro.livetip.compactor.Compactor`, after
which :meth:`rebase_onto` re-anchors the overlay on the new tip —
pending updates whose effect the new tip already contains are dropped
as satisfied, the rest are replayed.  Values are **bit-identical** to
batch recomputation throughout: repair is exact for the monotonic
algorithm classes the engine serves, and the equivalence is
hypothesis-tested across interleavings in ``tests/livetip/``.

Thread model: one reentrant lock guards every mutable field.  Callers
that must compose the overlay with other state (the service's
decomposition capture) hold their own lock *first* and this one
second; the overlay never calls back out while holding its lock, so
the acquisition order is acyclic.  Determinism: the module is in the
lint determinism scope — no wall clock here; age bookkeeping uses an
injected ``time_fn`` and is disabled without one.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.algorithms.base import MonotonicAlgorithm
from repro.errors import ProtocolError, ServiceError
from repro.evolving.delta import DeltaBatch
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.mutable import MutableGraph
from repro.graph.weights import UnitWeights, WeightFn
from repro.kickstarter.deletion import trim_and_repair
from repro.kickstarter.engine import (
    EngineCounters,
    VertexState,
    incremental_additions,
    static_compute,
)

__all__ = ["LiveTipOverlay", "TipCapture", "TipUpdate", "UPDATE_KINDS"]

#: Update kinds the overlay absorbs.  ``compact`` is a wire-level verb
#: handled by the service (it drives the Compactor, not the overlay).
UPDATE_KINDS = ("insert", "delete")


@dataclass(frozen=True)
class TipUpdate:
    """One absorbed single-edge update, as logged for compaction."""

    seq: int
    kind: str
    edge: Tuple[int, int]


class TipCapture:
    """A consistent snapshot of tip values for one ``(algorithm, source)``.

    Captured under the overlay lock (values copied, or the immutable
    live edge set referenced); resolved lock-free afterwards, so a
    query never runs a from-scratch compute while holding any lock.  A
    resolved from-scratch state is adopted back into the overlay's
    tracked set when no update landed in between, so the *next* update
    repairs it incrementally instead of recomputing.
    """

    def __init__(
        self,
        *,
        seq: int,
        tip_version: int,
        depth: int,
        alg: MonotonicAlgorithm,
        source: int,
        values: Optional[np.ndarray] = None,
        edges: Optional[EdgeSet] = None,
        overlay: Optional["LiveTipOverlay"] = None,
    ) -> None:
        self.seq = seq
        self.tip_version = tip_version
        self.depth = depth
        self._alg = alg
        self._source = source
        self._values = values
        self._edges = edges
        self._overlay = overlay

    def resolve(self) -> np.ndarray:
        """The tip values (a fresh copy; computes at most once)."""
        if self._values is None:
            if self._edges is None or self._overlay is None:
                raise ServiceError("tip capture has neither values nor edges")
            overlay = self._overlay
            graph = CSRGraph.from_edge_set(
                self._edges, overlay.num_vertices,
                weight_fn=overlay.weight_fn,
            )
            state = static_compute(
                graph, self._alg, self._source, track_parents=True,
            )
            self._values = state.values
            overlay._adopt(self._alg, self._source, state, self.seq)
        return self._values.copy()


class LiveTipOverlay:
    """Absorb single-edge updates against the tip with exact repair."""

    def __init__(
        self,
        tip_edges: EdgeSet,
        num_vertices: int,
        tip_version: int,
        *,
        weight_fn: Optional[WeightFn] = None,
        max_tracked: int = 8,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_tracked < 1:
            raise ServiceError("max_tracked must be >= 1")
        self.num_vertices = num_vertices
        self.weight_fn: WeightFn = (
            weight_fn if weight_fn is not None else UnitWeights()
        )
        self._time_fn = time_fn
        # Reentrant: status/snapshot helpers lock internally and must
        # stay callable from code that already holds the lock.
        self._lock = threading.RLock()
        #: Absolute version of the TG tip this overlay is anchored on.
        self.tip_version = tip_version  # guarded-by: _lock
        #: The anchored tip's edges (what compaction diffs against).
        self._base_edges = tip_edges  # guarded-by: _lock
        #: The live edge set: tip edges plus every pending update.
        self._edges = tip_edges  # guarded-by: _lock
        #: Row-local mutable replica of the live graph (lazy: built on
        #: the first update, dropped whenever the live edges change
        #: under a rebase).
        self._graph: Optional[MutableGraph] = None  # guarded-by: _lock
        #: Pending updates, oldest first (the compaction log).
        self._log: List[TipUpdate] = []  # guarded-by: _lock
        #: Total updates ever absorbed (monotonic across compactions).
        self.seq = 0  # guarded-by: _lock
        #: Repaired per-(algorithm, source) states, LRU-bounded.
        self._states: "OrderedDict[Tuple[str, int], Tuple[MonotonicAlgorithm, VertexState]]" = (
            OrderedDict()
        )  # guarded-by: _lock
        self._max_tracked = max_tracked
        self._first_pending_at: Optional[float] = None  # guarded-by: _lock
        #: Lifetime update counts by kind (status payload).
        self.update_counts: Dict[str, int] = {  # guarded-by: _lock
            kind: 0 for kind in UPDATE_KINDS
        }

    # -- shape ----------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Pending (not yet compacted) updates."""
        with self._lock:
            return len(self._log)

    @property
    def tracked_states(self) -> int:
        with self._lock:
            return len(self._states)

    def pending_age(self, now: float) -> Optional[float]:
        """Seconds since the oldest pending update, or ``None`` if clean."""
        with self._lock:
            if self._first_pending_at is None:
                return None
            return max(0.0, now - self._first_pending_at)

    def live_edges(self) -> EdgeSet:
        """The current live edge set (immutable; safe to share)."""
        with self._lock:
            return self._edges

    # -- updates --------------------------------------------------------------
    def _graph_locked(self) -> MutableGraph:  # holds-lock: _lock
        if self._graph is None:
            self._graph = MutableGraph.from_edge_set(
                self._edges, self.num_vertices, weight_fn=self.weight_fn,
            )
        return self._graph

    def apply_update(self, kind: str, u: int, v: int) -> Dict[str, Any]:
        """Absorb one single-edge update; returns the update receipt.

        Validation is strict and deterministic — inserting a present
        edge or deleting an absent one is a client mistake
        (:class:`~repro.errors.ProtocolError`), never a silent no-op,
        so every replica of a fleet rejects exactly the same updates.
        """
        if kind not in UPDATE_KINDS:
            raise ProtocolError(
                f"unknown update kind {kind!r}; expected one of "
                f"{UPDATE_KINDS}"
            )
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            raise ProtocolError(
                f"edge ({u}, {v}) endpoint out of range "
                f"[0, {self.num_vertices})"
            )
        edge = EdgeSet.from_pairs([(u, v)])
        with self._lock:
            present = (u, v) in self._edges
            if kind == "insert" and present:
                raise ProtocolError(f"edge ({u}, {v}) already present at tip")
            if kind == "delete" and not present:
                raise ProtocolError(f"edge ({u}, {v}) not present at tip")
            graph = self._graph_locked()
            if kind == "insert":
                graph.add_batch(edge)
                self._edges = self._edges.union(edge)
            else:
                graph.delete_batch(edge)
                self._edges = self._edges.difference(edge)
            self._repair_locked(kind, edge)
            self.seq += 1
            self._log.append(TipUpdate(seq=self.seq, kind=kind, edge=(u, v)))
            if self._first_pending_at is None and self._time_fn is not None:
                self._first_pending_at = self._time_fn()
            self.update_counts[kind] += 1
            depth = len(self._log)
            receipt = {
                "seq": self.seq,
                "tip_version": self.tip_version,
                "overlay_depth": depth,
            }
        obs.counter_inc("repro_livetip_updates_total", kind=kind)
        obs.gauge_set("repro_livetip_depth", float(depth))
        return receipt

    def _repair_locked(self, kind: str, edge: EdgeSet) -> None:
        # holds-lock: _lock
        """Repair every tracked state for one applied edge.

        ``self._graph`` already reflects the update (both repair
        algorithms require the *post*-update graph).
        """
        if not self._states:
            return
        graph = self._graph_locked()
        sources, targets = edge.arrays()
        weights = self.weight_fn(sources, targets)
        for (alg_name, source), (alg, state) in self._states.items():
            counters = EngineCounters()
            with obs.phase_span("livetip", "repair",
                                label=f"{alg_name}:{source}", kind=kind):
                if kind == "insert":
                    incremental_additions(
                        graph, alg, state, sources, targets, weights,
                        counters=counters, mode="auto",
                    )
                else:
                    trim_and_repair(
                        graph, alg, state, edge,
                        counters=counters, mode="auto", tagging="hybrid",
                        deleted_weights=weights,
                    )
            frontier = counters.vertices_updated + counters.vertices_trimmed
            obs.observe("repro_livetip_repair_frontier", float(frontier))

    # -- tip reads ------------------------------------------------------------
    def capture(
        self,
        alg: MonotonicAlgorithm,
        source: int,
        *,
        tip_version: Optional[int] = None,
    ) -> Optional[TipCapture]:
        """Capture tip values for a query, or ``None`` when not needed.

        Returns ``None`` when the overlay is clean (the TG tip already
        *is* the answer) or when ``tip_version`` disagrees with the
        overlay's anchor (the caller captured a decomposition the
        overlay no longer sits on; the TG answer is the consistent
        one).  Tracked states resolve to a values copy immediately;
        untracked ones capture the immutable live edge set and compute
        lazily outside any lock.
        """
        with self._lock:
            if not self._log:
                return None
            if tip_version is not None and tip_version != self.tip_version:
                return None
            key = (alg.name, source)
            entry = self._states.get(key)
            if entry is not None:
                self._states.move_to_end(key)
                return TipCapture(
                    seq=self.seq, tip_version=self.tip_version,
                    depth=len(self._log), alg=alg, source=source,
                    values=entry[1].values.copy(),
                )
            return TipCapture(
                seq=self.seq, tip_version=self.tip_version,
                depth=len(self._log), alg=alg, source=source,
                edges=self._edges, overlay=self,
            )

    def _adopt(
        self,
        alg: MonotonicAlgorithm,
        source: int,
        state: VertexState,
        seq: int,
    ) -> None:
        """Adopt a freshly computed state if no update landed since.

        Called by :meth:`TipCapture.resolve` after a lock-free static
        compute; a stale compute (``seq`` moved on) is simply not
        adopted — correctness never depends on adoption.
        """
        with self._lock:
            if seq != self.seq:
                return
            key = (alg.name, source)
            if key in self._states:
                return
            self._states[key] = (alg, state)
            while len(self._states) > self._max_tracked:
                self._states.popitem(last=False)
            tracked = len(self._states)
        obs.gauge_set("repro_livetip_tracked_states", float(tracked))

    # -- compaction protocol ---------------------------------------------------
    def seal(self) -> Tuple[DeltaBatch, int, int]:
        """The pending log as one net batch: ``(batch, depth, seq)``.

        The net batch is the *edge-set* difference between the live
        graph and the anchored tip — insert/delete churn on the same
        edge cancels, so folding never replays intermediate states.
        """
        with self._lock:
            batch = DeltaBatch(
                additions=self._edges.difference(self._base_edges),
                deletions=self._base_edges.difference(self._edges),
            )
            return batch, len(self._log), self.seq

    def collapse(self, seq: int) -> bool:
        """Clear a net-zero log sealed at ``seq`` (churn cancelled out).

        Returns ``False`` when an update landed after the seal — the
        caller re-seals and tries again.
        """
        with self._lock:
            if seq != self.seq:
                return False
            self._base_edges = self._edges
            self._log.clear()
            self._first_pending_at = None
        obs.gauge_set("repro_livetip_depth", 0.0)
        return True

    def rebase_onto(self, tip_edges: EdgeSet, tip_version: int) -> int:
        """Re-anchor on a new TG tip; returns pending updates kept.

        After our own compaction the new tip contains every pending
        effect and the log empties.  After a *foreign* batch (another
        store handle appended) pending updates are replayed: one whose
        effect the new tip already has is dropped as satisfied, the
        rest stay pending — acknowledged updates are never silently
        lost.  Tracked states survive only when the live edge set is
        unchanged by the rebase (the compaction case); otherwise they
        are dropped and lazily recomputed.
        """
        with self._lock:
            edges = tip_edges
            kept: List[TipUpdate] = []
            for update in self._log:
                single = EdgeSet.from_pairs([update.edge])
                present = update.edge in edges
                if update.kind == "insert" and not present:
                    edges = edges.union(single)
                    kept.append(update)
                elif update.kind == "delete" and present:
                    edges = edges.difference(single)
                    kept.append(update)
            if edges == tip_edges:
                # The kept updates compose to a no-op (delete/reinsert
                # churn that the net fold cancelled): weights are
                # deterministic per edge, so the tip already *is* the
                # live graph — nothing stays pending.
                kept = []
            if edges != self._edges:
                self._states.clear()
                self._graph = None
                self._edges = edges
            self._base_edges = tip_edges
            self._log = kept
            self.tip_version = tip_version
            if not kept:
                self._first_pending_at = None
            depth = len(kept)
        obs.gauge_set("repro_livetip_depth", float(depth))
        obs.gauge_set("repro_livetip_tracked_states",
                      float(self.tracked_states))
        return depth

    # -- status ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The status-payload block (cheap; all counters, no arrays)."""
        with self._lock:
            return {
                "tip_version": self.tip_version,
                "overlay_depth": len(self._log),
                "updates_total": self.seq,
                "update_counts": dict(self.update_counts),
                "tracked_states": len(self._states),
                "live_edges": len(self._edges),
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LiveTipOverlay(tip={self.tip_version}, "
                f"depth={len(self._log)}, seq={self.seq}, "
                f"tracked={len(self._states)})"
            )
