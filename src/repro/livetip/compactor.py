"""Fold the live-tip update log into real Triangular Grid batches.

The overlay keeps per-update ingest sub-millisecond by *not* touching
the TG; the :class:`Compactor` is the other half of the bargain — on a
size (and optionally age) threshold it seals the pending log into one
**net** :class:`~repro.evolving.delta.DeltaBatch` (insert/delete churn
on the same edge cancels) and appends it through the service's
ordinary durable ingest lane.  That single append does everything a
client batch does: the store fsyncs it, the decomposition extends by
one column, the epoch bumps, receipts stay strictly consecutive — and
the store notification re-anchors the overlay
(:meth:`~repro.livetip.overlay.LiveTipOverlay.rebase_onto`), emptying
the log.  Answers are bit-identical before and after: the folded tip
column materialises exactly the live edge set the overlay was already
answering from.

Concurrency: one compactor lock serialises folds (two concurrent
folds would race the store's strict batch validation).  Updates keep
landing while a fold is in flight — an update sealed out of the net
batch simply stays pending and rides the next fold.  A foreign append
sneaking between seal and append makes the store reject our stale net
batch (:class:`~repro.errors.DeltaError`); the rejection triggers a
re-seal against the rebased overlay, never a corrupt fold.

Determinism: compaction must fire at the *same point in the update
stream* on every replica of a fleet (receipts are compared per
update), so the default policy is count-based only; the age threshold
is opt-in, uses the injected ``time_fn``, and is meant for
single-node deployments.  This module is in the lint determinism
scope — no wall clock is read here.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro import obs
from repro.errors import DeltaError, ServiceError
from repro.evolving.delta import DeltaBatch
from repro.livetip.overlay import LiveTipOverlay

__all__ = ["CompactionPolicy", "Compactor"]


@dataclass(frozen=True)
class CompactionPolicy:
    """When the update log is folded into the Triangular Grid.

    ``max_updates`` is the deterministic trigger (compaction fires as
    the log reaches this depth); ``max_age_seconds`` additionally
    folds a shallow-but-old log when a clock is available.
    """

    max_updates: int = 64
    max_age_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_updates < 1:
            raise ServiceError("max_updates must be >= 1")
        if self.max_age_seconds is not None and self.max_age_seconds <= 0:
            raise ServiceError("max_age_seconds must be positive")


class Compactor:
    """Background folding of one overlay's log through an ingest lane.

    ``append`` is the durable lane — the service passes its store's
    ``append`` bound method, so a fold and a client batch are
    literally the same code path from the store down.
    """

    def __init__(
        self,
        overlay: LiveTipOverlay,
        append: Callable[[DeltaBatch], Any],
        *,
        policy: Optional[CompactionPolicy] = None,
        time_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self._overlay = overlay
        self._append = append
        self.policy = policy if policy is not None else CompactionPolicy()
        self._time_fn = time_fn
        # Serialises folds; never held while a caller's lock is taken.
        self._lock = threading.Lock()
        self.compactions = 0  # guarded-by: _lock
        self.updates_folded = 0  # guarded-by: _lock
        self.last_compaction_version: Optional[int] = None  # guarded-by: _lock

    # -- policy ---------------------------------------------------------------
    def due(self) -> bool:
        """Whether the pending log has hit a fold threshold."""
        depth = self._overlay.depth
        if depth == 0:
            return False
        if depth >= self.policy.max_updates:
            return True
        if self.policy.max_age_seconds is not None and self._time_fn is not None:
            age = self._overlay.pending_age(self._time_fn())
            return age is not None and age >= self.policy.max_age_seconds
        return False

    def maybe_compact(self) -> Optional[Dict[str, Any]]:
        """Fold if due; the per-update hook on the service's hot path."""
        if not self.due():
            return None
        return self.compact()

    # -- folding --------------------------------------------------------------
    def compact(self) -> Dict[str, Any]:
        """Fold the pending log now; returns the compaction receipt.

        A clean overlay is a cheap no-op (``compacted: False``).  A
        net-zero log (pure churn) collapses without an append — no new
        version, no epoch bump, nothing to replay.
        """
        with self._lock:
            for attempt in range(3):
                batch, depth, seal_seq = self._overlay.seal()
                if depth == 0:
                    return {
                        "compacted": False,
                        "updates_folded": 0,
                        "tip_version": self._overlay.tip_version,
                    }
                with obs.phase_span("livetip", "compact", updates=depth,
                                    net=batch.size):
                    if batch.size == 0:
                        if not self._overlay.collapse(seal_seq):
                            continue  # an update landed mid-seal; re-seal
                    else:
                        try:
                            self._append(batch)
                        except DeltaError:
                            # A foreign append moved the tip between the
                            # seal and our append; the store notification
                            # already rebased the overlay — re-seal.
                            if attempt == 2:
                                raise
                            continue
                obs.counter_inc("repro_livetip_compactions_total")
                self.compactions += 1
                self.updates_folded += depth
                self.last_compaction_version = self._overlay.tip_version
                return {
                    "compacted": True,
                    "updates_folded": depth,
                    "tip_version": self._overlay.tip_version,
                }
            raise ServiceError(
                "live-tip compaction could not seal a stable update log "
                "after 3 attempts (appends kept racing the seal)"
            )

    # -- status ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "compactions": self.compactions,
                "updates_folded": self.updates_folded,
                "last_compaction_version": self.last_compaction_version,
                "max_updates": self.policy.max_updates,
                "max_age_seconds": self.policy.max_age_seconds,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Compactor(compactions={self.compactions}, "
                f"folded={self.updates_folded}, "
                f"policy=max_updates:{self.policy.max_updates})"
            )
