"""repro.livetip — sub-batch per-update ingest over the Triangular Grid.

The second ingest granularity: single-edge inserts/deletes land in a
:class:`LiveTipOverlay` (KickStarter-style exact repair of converged
query state, sub-millisecond), and a :class:`Compactor` periodically
folds the accumulated log into one real batch through the ordinary
durable lane — so the tip is always both *fresh* (overlay) and
*durable within one compaction window* (TG).  See ``docs/livetip.md``.
"""

from repro.livetip.compactor import CompactionPolicy, Compactor
from repro.livetip.overlay import (
    LiveTipOverlay,
    TipCapture,
    TipUpdate,
    UPDATE_KINDS,
)

__all__ = [
    "CompactionPolicy",
    "Compactor",
    "LiveTipOverlay",
    "TipCapture",
    "TipUpdate",
    "UPDATE_KINDS",
]
