"""Trend tracking: a query property traced across snapshots.

:class:`TrendTracker` glues the pieces together: it takes an evolving
graph, decomposes it, evaluates the query on every snapshot (or a
range) with a CommonGraph strategy, and reduces the per-snapshot vertex
values to named metric series.  :func:`detect_changes` flags snapshots
where a series jumps by more than a robust threshold — the "what
changed, and when?" question evolving-graph analytics exists to answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.analysis.metrics import Metric, evaluate_metric
from repro.bench.reporting import render_chart, render_table
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.errors import ReproError
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.weights import WeightFn

__all__ = ["TrendReport", "TrendTracker", "detect_changes"]

MetricSpec = Union[str, Metric]


@dataclass
class TrendReport:
    """Named metric series over a window of snapshots."""

    first_snapshot: int
    series: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def num_snapshots(self) -> int:
        return len(next(iter(self.series.values()), []))

    def snapshots(self) -> List[int]:
        return list(range(self.first_snapshot, self.first_snapshot + self.num_snapshots))

    def render(self, title: str = "trend report") -> str:
        headers = ["snapshot"] + list(self.series)
        rows = [
            [snap] + [round(self.series[name][k], 4) for name in self.series]
            for k, snap in enumerate(self.snapshots())
        ]
        return render_table(headers, rows, title=title)

    def chart(self, names: Optional[Sequence[str]] = None, **kwargs: object) -> str:
        names = list(names) if names is not None else list(self.series)
        return render_chart(
            [float(s) for s in self.snapshots()],
            {name: self.series[name] for name in names},
            **kwargs,
        )


def detect_changes(
    series: Sequence[float], threshold: float = 3.0
) -> List[int]:
    """Indices where the step change is an outlier among all steps.

    A step is flagged when it deviates from the median step by more
    than ``threshold`` times the median absolute deviation (a robust
    z-score).  With fewer than 4 steps nothing is flagged.
    """
    values = np.asarray(series, dtype=np.float64)
    if values.size < 5:
        return []
    steps = np.diff(values)
    med = np.median(steps)
    mad = np.median(np.abs(steps - med))
    # For (nearly) flat series the MAD collapses to zero; fall back to a
    # small fraction of the series' own range so routine noise is not
    # flagged but a genuine level shift is.
    value_range = float(values.max() - values.min())
    scale = mad if mad > 0 else 0.02 * value_range
    if scale == 0:
        return []
    flagged = np.abs(steps - med) > threshold * scale
    return [int(i) + 1 for i in np.flatnonzero(flagged)]


class TrendTracker:
    """Evaluates metric trends for one query over an evolving graph."""

    def __init__(
        self,
        evolving: EvolvingGraph,
        algorithm: MonotonicAlgorithm,
        source: int,
        weight_fn: Optional[WeightFn] = None,
        strategy: str = "work-sharing",
    ) -> None:
        if strategy not in ("direct-hop", "work-sharing"):
            raise ReproError(
                f"unknown strategy {strategy!r}; expected "
                f"'direct-hop' or 'work-sharing'"
            )
        self.evolving = evolving
        self.algorithm = algorithm
        self.source = source
        self.weight_fn = weight_fn
        self.strategy = strategy
        self._decomposition: Optional[CommonGraphDecomposition] = None

    @property
    def decomposition(self) -> CommonGraphDecomposition:
        if self._decomposition is None:
            self._decomposition = CommonGraphDecomposition.from_evolving(self.evolving)
        return self._decomposition

    def track(
        self,
        metrics: Sequence[MetricSpec] = ("reach", "mean", "extreme"),
        first: int = 0,
        last: int = -1,
    ) -> TrendReport:
        """Evaluate the query and reduce each snapshot to metric values."""
        if last < 0:
            last += self.evolving.num_snapshots
        window = self.decomposition.restrict(first, last)
        if self.strategy == "direct-hop":
            evaluator = DirectHopEvaluator(
                window, self.algorithm, self.source, weight_fn=self.weight_fn
            )
        else:
            evaluator = WorkSharingEvaluator(
                window, self.algorithm, self.source, weight_fn=self.weight_fn
            )
        result = evaluator.run()
        report = TrendReport(first_snapshot=first)
        for metric in metrics:
            name = metric if isinstance(metric, str) else getattr(
                metric, "__name__", "metric"
            )
            report.series[name] = [
                evaluate_metric(metric, values, self.algorithm)
                for values in result.snapshot_values
            ]
        return report
