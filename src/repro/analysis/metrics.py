"""Per-snapshot metrics over query results.

A metric maps one snapshot's vertex-value array to a scalar; an
evolving-graph query then yields a *series* of that metric over time —
exactly the trend-tracking use case the paper's introduction motivates
(e.g. "maintain the shortest path to a destination as traffic
conditions change").
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.errors import ReproError

__all__ = ["Metric", "METRICS", "evaluate_metric", "metric_names"]

#: A metric: ``(values, algorithm) -> float``.
Metric = Callable[[np.ndarray, MonotonicAlgorithm], float]


def _finite(values: np.ndarray, alg: MonotonicAlgorithm) -> np.ndarray:
    """Values of vertices actually reached by the query.

    Reached = strictly better than the algorithm's worst value.  (This
    keeps, e.g., SSWP's infinite source width, which ``isfinite`` would
    wrongly drop.)
    """
    worst = np.full(values.shape, alg.worst)
    return values[alg.better(values, worst)]


def reach(values: np.ndarray, alg: MonotonicAlgorithm) -> float:
    """How many vertices hold a non-worst, finite value."""
    return float(_finite(values, alg).size)


def mean_value(values: np.ndarray, alg: MonotonicAlgorithm) -> float:
    reached = _finite(values, alg)
    reached = reached[np.isfinite(reached)]  # drop e.g. SSWP's inf source
    return float(reached.mean()) if reached.size else float("nan")


def extreme_value(values: np.ndarray, alg: MonotonicAlgorithm) -> float:
    """The worst value among reached vertices (eccentricity-like)."""
    reached = _finite(values, alg)
    if not reached.size:
        return float("nan")
    return float(reached.max() if alg.direction == "min" else reached.min())


def best_value(values: np.ndarray, alg: MonotonicAlgorithm) -> float:
    reached = _finite(values, alg)
    if not reached.size:
        return float("nan")
    return float(reached.min() if alg.direction == "min" else reached.max())


def vertex_value(vertex: int) -> Metric:
    """A metric tracking one vertex's value (e.g. a destination)."""

    def metric(values: np.ndarray, alg: MonotonicAlgorithm) -> float:
        return float(values[vertex])

    metric.__name__ = f"vertex_{vertex}"
    return metric


#: Built-in metrics addressable by name.
METRICS: Dict[str, Metric] = {
    "reach": reach,
    "mean": mean_value,
    "extreme": extreme_value,
    "best": best_value,
}


def metric_names() -> list:
    """Names of the built-in metrics, sorted."""
    return sorted(METRICS)


def evaluate_metric(
    name_or_fn, values: np.ndarray, alg: MonotonicAlgorithm
) -> float:
    """Evaluate a metric given by name or as a callable."""
    if callable(name_or_fn):
        return float(name_or_fn(values, alg))
    try:
        metric = METRICS[name_or_fn]
    except KeyError:
        raise ReproError(
            f"unknown metric {name_or_fn!r}; available: {metric_names()}"
        ) from None
    return float(metric(values, alg))
