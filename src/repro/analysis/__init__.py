"""Temporal analytics over evolving-graph query results: per-snapshot
metrics, trend tracking, and change detection."""

from repro.analysis.metrics import (
    METRICS,
    Metric,
    evaluate_metric,
    metric_names,
    vertex_value,
)
from repro.analysis.trends import TrendReport, TrendTracker, detect_changes

__all__ = [
    "Metric",
    "METRICS",
    "evaluate_metric",
    "metric_names",
    "vertex_value",
    "TrendTracker",
    "TrendReport",
    "detect_changes",
]
