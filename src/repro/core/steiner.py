"""Schedule construction: Direct-Hop, greedy Steiner, and exact Steiner.

Finding the minimum-cost query-evaluation schedule is a Steiner tree
problem on the Triangular Grid with terminals {root} ∪ {leaves}
(§3.2, Algorithm 1).  Because TG edge weights telescope
(``w(p→c) = |surplus(c)| − |surplus(p)|``), the shortest-path distance
from any tree node ``A ⊇ x`` down to ``x`` is ``|surplus(x)| −
|surplus(A)|`` regardless of the route, so the classic
nearest-terminal greedy reduces to: repeatedly connect the cheapest
uncovered snapshot to its deepest (largest-surplus) covering node
already in the tree.  Route selection among equal-cost paths still
matters for *future* sharing; we descend through the child with the
larger surplus, which keeps shared edges as high in the grid as
possible.

``exact_steiner`` solves the problem optimally by enumerating subsets
of intermediate nodes (exponential; guarded to small ``n``) — used by
tests and the ablation benchmark to measure the greedy gap.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Tuple

from repro.core.schedule import ScheduleTree
from repro.core.triangular_grid import Interval, TriangularGrid
from repro.errors import ScheduleError

__all__ = [
    "direct_hop_tree",
    "greedy_steiner",
    "agglomerative_schedule",
    "exact_steiner",
    "build_schedule",
]


def direct_hop_tree(grid: TriangularGrid) -> ScheduleTree:
    """The star schedule: every snapshot hangs directly off the root."""
    tree = ScheduleTree(root=grid.root)
    for leaf in grid.leaves:
        if leaf != grid.root:
            tree.parent[leaf] = grid.root
    return tree


def _descend_path(
    grid: TriangularGrid, start: Interval, leaf: Interval
) -> List[Interval]:
    """A root-ward-to-leaf path of grid-adjacent nodes from ``start``.

    Among the two admissible children at each step, prefer the one with
    the larger surplus (ties: the one containing the smaller index),
    deferring additions as long as possible to maximise later sharing.
    """
    if not TriangularGrid.contains(start, leaf):
        raise ScheduleError(f"{start} does not contain {leaf}")
    path = [start]
    node = start
    x = leaf[0]
    while node != leaf:
        candidates = [c for c in grid.children(node) if TriangularGrid.contains(c, leaf)]
        if len(candidates) == 1:
            node = candidates[0]
        else:
            a, b = candidates
            node = a if grid.surplus_size(a) >= grid.surplus_size(b) else b
        path.append(node)
    assert path[-1] == (x, x)
    return path


def greedy_steiner(grid: TriangularGrid, compress: bool = True) -> ScheduleTree:
    """Nearest-terminal greedy Steiner tree (Algorithm 1, step 2).

    With ``compress=True`` the bypass step (Algorithm 1, step 3) is
    applied before returning.
    """
    tree = ScheduleTree(root=grid.root)
    uncovered = [leaf for leaf in grid.leaves if leaf != grid.root]
    while uncovered:
        # For each uncovered leaf, its cheapest anchor is the tree node
        # containing it with the largest surplus (telescoping weights).
        best: Optional[Tuple[int, Interval, Interval]] = None
        tree_nodes = tree.nodes
        for leaf in uncovered:
            leaf_size = grid.surplus_size(leaf)
            anchor = None
            anchor_size = -1
            for node in tree_nodes:
                if TriangularGrid.contains(node, leaf):
                    size = grid.surplus_size(node)
                    if size > anchor_size:
                        anchor, anchor_size = node, size
            assert anchor is not None  # the root contains everything
            cost = leaf_size - anchor_size
            if best is None or cost < best[0]:
                best = (cost, anchor, leaf)
        _, anchor, leaf = best
        path = _descend_path(grid, anchor, leaf)
        # Commit the path; if it runs through an existing tree node,
        # restart from there (those prefix edges would be redundant).
        last_known = max(
            (k for k, node in enumerate(path) if tree.contains_node(node)),
            default=0,
        )
        for parent, child in zip(path[last_known:], path[last_known + 1:]):
            if not tree.contains_node(child):
                tree.add_edge(parent, child)
        uncovered.remove(leaf)
    if compress:
        tree = tree.compressed(grid)
    tree.validate(grid)
    return tree


def agglomerative_schedule(grid: TriangularGrid, compress: bool = True) -> ScheduleTree:
    """Bottom-up schedule construction (an extension beyond the paper).

    Start from the Direct-Hop star and repeatedly apply the best
    cost-reducing move until none exists:

    * **merge** — two siblings are re-hung under the ICG spanning both
      (gain = ``|surplus(span)| − |surplus(parent)|``, the additions the
      pair now shares);
    * **adopt** — a node moves under a sibling that contains it
      (gain = ``|surplus(sibling)| − |surplus(parent)|``).

    Cost strictly decreases with each move, so termination is
    guaranteed.  In the ablation this typically closes most of the gap
    between the paper's greedy Steiner heuristic and the exact optimum.
    """
    tree = ScheduleTree(root=grid.root)
    for leaf in grid.leaves:
        if leaf != grid.root:
            tree.parent[leaf] = grid.root

    def children_of() -> dict:
        return tree.children_map()

    while True:
        children = children_of()
        best: Optional[Tuple[int, str, Interval, Interval, Interval]] = None
        for parent, kids in children.items():
            if len(kids) < 2:
                continue
            parent_size = grid.surplus_size(parent)
            for i, a in enumerate(kids):
                for b in kids[i + 1:]:
                    if TriangularGrid.contains(a, b) and a != b:
                        gain = grid.surplus_size(a) - parent_size
                        if gain > 0 and (best is None or gain > best[0]):
                            best = (gain, "adopt", a, b, a)
                        continue
                    if TriangularGrid.contains(b, a):
                        gain = grid.surplus_size(b) - parent_size
                        if gain > 0 and (best is None or gain > best[0]):
                            best = (gain, "adopt", b, a, b)
                        continue
                    span = (min(a[0], b[0]), max(a[1], b[1]))
                    if span == parent or not grid.is_node(span):
                        continue
                    gain = grid.surplus_size(span) - parent_size
                    if gain > 0 and (best is None or gain > best[0]):
                        best = (gain, "merge", a, b, span)
        if best is None:
            break
        _, kind, a, b, target = best
        if kind == "adopt":
            tree.parent[b] = target
        else:
            parent = tree.parent[a]
            if not tree.contains_node(target):
                tree.parent[target] = parent
            tree.parent[a] = target
            tree.parent[b] = target
    if compress:
        tree = tree.compressed(grid)
    tree.validate(grid)
    return tree


def _optimal_tree_over(
    grid: TriangularGrid, nodes: Iterable[Interval]
) -> Tuple[int, ScheduleTree]:
    """Best tree on a fixed node set: each node hangs off its deepest
    containing node in the set (weights telescope, so this is optimal
    for the given set)."""
    nodes = list(nodes)
    tree = ScheduleTree(root=grid.root)
    cost = 0
    for node in nodes:
        if node == grid.root:
            continue
        best_parent = None
        best_size = -1
        for other in nodes:
            if other != node and TriangularGrid.contains(other, node):
                size = grid.surplus_size(other)
                if size > best_size:
                    best_parent, best_size = other, size
        if best_parent is None:
            raise ScheduleError(f"{node} has no containing node in the set")
        tree.parent[node] = best_parent
        cost += grid.surplus_size(node) - best_size
    return cost, tree


def exact_steiner(grid: TriangularGrid, max_snapshots: int = 6) -> ScheduleTree:
    """Optimal schedule by exhaustive search over intermediate node sets.

    Exponential in the number of intermediate grid nodes; refuses to run
    beyond ``max_snapshots`` snapshots.
    """
    if grid.n > max_snapshots:
        raise ScheduleError(
            f"exact Steiner is exponential; n={grid.n} exceeds "
            f"max_snapshots={max_snapshots}"
        )
    terminals = [grid.root] + [l for l in grid.leaves if l != grid.root]
    intermediates = [
        node
        for node in grid.nodes()
        if node != grid.root and node not in grid.leaves
    ]
    best_cost = None
    best_tree = None
    for r in range(len(intermediates) + 1):
        for subset in combinations(intermediates, r):
            cost, tree = _optimal_tree_over(grid, terminals + list(subset))
            if best_cost is None or cost < best_cost:
                best_cost, best_tree = cost, tree
    assert best_tree is not None
    best_tree = best_tree.compressed(grid)
    best_tree.validate(grid)
    return best_tree


def build_schedule(grid: TriangularGrid, strategy: str = "work-sharing") -> ScheduleTree:
    """Build a schedule by strategy name.

    ``"direct-hop"``, ``"work-sharing"`` (the paper's greedy Steiner +
    bypass), ``"agglomerative"`` (bottom-up extension, usually cheaper
    than greedy) or ``"exact"`` (small inputs only).
    """
    if strategy == "direct-hop":
        return direct_hop_tree(grid)
    if strategy == "work-sharing":
        return greedy_steiner(grid)
    if strategy == "agglomerative":
        return agglomerative_schedule(grid)
    if strategy == "exact":
        return exact_steiner(grid)
    raise ScheduleError(
        f"unknown strategy {strategy!r}; expected 'direct-hop', "
        f"'work-sharing', 'agglomerative' or 'exact'"
    )
