"""Direct-Hop query evaluation (§3.1).

Evaluate the query once on the common graph ``Gc``; then, for every
snapshot independently, overlay that snapshot's surplus batch on ``Gc``
(no mutation) and incrementally propagate the additions.  Deletions
never occur, the expensive trim-and-repair machinery and the transpose
graph are never needed, and every hop starts from the same converged
state — which is what makes the hops embarrassingly parallel.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.algorithms.base import MonotonicAlgorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.results import EvolvingQueryResult
from repro.graph.overlay import OverlayGraph
from repro.graph.weights import UnitWeights, WeightFn
from repro.kickstarter.engine import VertexState, incremental_additions, static_compute

__all__ = ["DirectHopEvaluator"]


class DirectHopEvaluator:
    """Evaluates one query on all snapshots via direct hops from ``Gc``."""

    def __init__(
        self,
        decomposition: CommonGraphDecomposition,
        algorithm: MonotonicAlgorithm,
        source: int,
        weight_fn: Optional[WeightFn] = None,
        mode: str = "auto",
    ) -> None:
        self.decomposition = decomposition
        self.algorithm = algorithm
        self.source = source
        self.weight_fn: WeightFn = weight_fn if weight_fn is not None else UnitWeights()
        self.mode = mode

    def base_state(self, result: Optional[EvolvingQueryResult] = None) -> VertexState:
        """Converge the query on the common graph."""
        counters = result.counters if result is not None else None
        base_csr = self.decomposition.common_csr(self.weight_fn)
        if result is not None:
            with result.timer.phase("initial_compute"):
                return static_compute(
                    base_csr, self.algorithm, self.source,
                    counters=counters, mode="sync",
                )
        return static_compute(base_csr, self.algorithm, self.source, mode="sync")

    def run(self, keep_values: bool = True) -> EvolvingQueryResult:
        """Evaluate all snapshots; hops are timed individually."""
        result = EvolvingQueryResult(strategy="direct-hop")
        decomp = self.decomposition
        base_csr = decomp.common_csr(self.weight_fn)
        with result.timer.phase("initial_compute"):
            base_state = static_compute(
                base_csr, self.algorithm, self.source,
                counters=result.counters, mode="sync",
            )

        values: List = []
        for index in range(decomp.num_snapshots):
            batch = decomp.direct_hop_batch(index)
            t0 = time.perf_counter()
            with result.timer.phase("incremental_add"):
                state = base_state.copy()
                delta_csr = decomp.delta_csr(batch, self.weight_fn)
                overlay = OverlayGraph(base_csr, (delta_csr,))
                src, dst = batch.arrays()
                weights = self.weight_fn(src, dst)
                incremental_additions(
                    overlay, self.algorithm, state, src, dst, weights,
                    counters=result.counters, mode=self.mode,
                )
            result.per_hop_seconds.append(time.perf_counter() - t0)
            result.additions_processed += len(batch)
            result.stabilisations += 1
            if keep_values:
                values.append(state.values)
        result.snapshot_values = values
        return result
