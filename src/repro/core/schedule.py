"""Query-evaluation schedules: trees over Triangular-Grid nodes.

A schedule tells the engine how to reach every snapshot from the common
graph: it is a tree rooted at ``Gc`` whose leaves are the snapshot
intervals ``(i, i)``; each edge carries a batch of edge additions.
Direct-Hop is the star schedule (root → every leaf); Work-Sharing
schedules route through intermediate common graphs to share additions.

:meth:`ScheduleTree.compressed` implements the paper's bypass step
(Compress-Steiner-Tree in Algorithm 1): interior nodes with exactly one
child are cut out and their incoming/outgoing batches merged, which
removes pointless stabilisation stops without changing total cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.core.triangular_grid import Interval, TriangularGrid
from repro.errors import ScheduleError

__all__ = ["ScheduleTree"]


@dataclass
class ScheduleTree:
    """A tree over TG intervals, stored as child → parent pointers.

    Edges may be grid-adjacent or containment "jumps" (produced by
    bypassing); either way the batch on edge ``(p, c)`` is
    ``surplus(c) − surplus(p)`` and its cost the size of that set.
    """

    root: Interval
    parent: Dict[Interval, Interval] = field(default_factory=dict)

    # -- structure ----------------------------------------------------------
    @property
    def nodes(self) -> List[Interval]:
        seen = {self.root}
        seen.update(self.parent.keys())
        seen.update(self.parent.values())
        return sorted(seen)

    def children_map(self) -> Dict[Interval, List[Interval]]:
        children: Dict[Interval, List[Interval]] = {n: [] for n in self.nodes}
        for child, parent in self.parent.items():
            children[parent].append(child)
        for lst in children.values():
            lst.sort()
        return children

    def edges(self) -> Iterator[Tuple[Interval, Interval]]:
        """(parent, child) pairs in top-down (BFS from root) order."""
        children = self.children_map()
        queue = [self.root]
        while queue:
            node = queue.pop(0)
            for child in children.get(node, []):
                yield node, child
                queue.append(child)

    def contains_node(self, node: Interval) -> bool:
        return node == self.root or node in self.parent

    def add_edge(self, parent: Interval, child: Interval) -> None:
        if not self.contains_node(parent):
            raise ScheduleError(f"parent {parent} not in tree")
        if self.contains_node(child):
            raise ScheduleError(f"child {child} already in tree")
        self.parent[child] = parent

    # -- validation -----------------------------------------------------------
    def validate(self, grid: TriangularGrid) -> None:
        """Check this is a well-formed schedule for ``grid``.

        Raises :class:`ScheduleError` on: wrong root, a non-containment
        edge, a cycle/disconnection, or a missing snapshot leaf.
        """
        if self.root != grid.root:
            raise ScheduleError(f"root {self.root} != grid root {grid.root}")
        for child, parent in self.parent.items():
            if parent == child or not TriangularGrid.contains(parent, child):
                raise ScheduleError(f"edge {parent} -> {child} is not a containment")
            if not grid.is_node(child) or not grid.is_node(parent):
                raise ScheduleError(f"edge {parent} -> {child} leaves the grid")
        # Reachability from root == acyclicity + connectivity for a
        # parent-pointer forest.
        reached = set()
        for node in self.parent:
            trail = []
            cursor = node
            while cursor != self.root and cursor not in reached:
                if cursor in trail:
                    raise ScheduleError(f"cycle through {cursor}")
                trail.append(cursor)
                if cursor not in self.parent:
                    raise ScheduleError(f"{cursor} is disconnected from the root")
                cursor = self.parent[cursor]
            reached.update(trail)
        for leaf in grid.leaves:
            if not self.contains_node(leaf):
                raise ScheduleError(f"snapshot leaf {leaf} is not covered")

    # -- cost ------------------------------------------------------------------
    def cost(self, grid: TriangularGrid) -> int:
        """Total additions across all tree edges (the paper's metric)."""
        return sum(grid.weight(p, c) for p, c in self.edges())

    def num_stabilisations(self) -> int:
        """Incremental computations executed (one per tree edge)."""
        return len(self.parent)

    # -- bypass compression ------------------------------------------------------
    def compressed(self, grid: TriangularGrid) -> "ScheduleTree":
        """Bypass interior single-child nodes (Algorithm 1, step 3).

        Interior nodes that merely pass one batch to one child add a
        stabilisation stop without enabling any sharing; cutting them
        merges the two batches (cost is unchanged because weights
        telescope).  Leaves are never bypassed even if they also have a
        child in the tree.
        """
        children = self.children_map()
        leaves = set(grid.leaves)
        parent = dict(self.parent)
        for node in list(parent.keys()):
            if node in leaves or node == self.root:
                continue
            kids = children.get(node, [])
            if len(kids) == 1:
                # Splice: the child now hangs off this node's parent.
                parent[kids[0]] = parent[node]
                del parent[node]
                children[parent[kids[0]]] = [
                    kids[0] if c == node else c
                    for c in children[parent[kids[0]]]
                ]
        return ScheduleTree(root=self.root, parent=parent)

    def __repr__(self) -> str:
        return f"ScheduleTree(root={self.root}, edges={len(self.parent)})"
