"""The paper's core contribution: CommonGraph decomposition, Triangular
Grid, Steiner schedules, and the Direct-Hop / Work-Sharing evaluators."""

from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.core.parallel import (
    ParallelDirectHop,
    ParallelResult,
    ParallelWorkSharing,
    ParallelWorkSharingResult,
    TaskOutcome,
)
from repro.core.results import EvolvingQueryResult
from repro.core.schedule import ScheduleTree
from repro.core.steiner import (
    agglomerative_schedule,
    build_schedule,
    direct_hop_tree,
    exact_steiner,
    greedy_steiner,
)
from repro.core.triangular_grid import Interval, TriangularGrid

__all__ = [
    "CommonGraphDecomposition",
    "TriangularGrid",
    "Interval",
    "ScheduleTree",
    "direct_hop_tree",
    "greedy_steiner",
    "agglomerative_schedule",
    "exact_steiner",
    "build_schedule",
    "DirectHopEvaluator",
    "WorkSharingEvaluator",
    "ParallelDirectHop",
    "ParallelResult",
    "ParallelWorkSharing",
    "ParallelWorkSharingResult",
    "TaskOutcome",
    "EvolvingQueryResult",
]
