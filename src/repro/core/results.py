"""Result container shared by the evolving-graph query evaluators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.kickstarter.engine import EngineCounters
from repro.utils import PhaseTimer

__all__ = ["EvolvingQueryResult"]


@dataclass
class EvolvingQueryResult:
    """Converged per-snapshot values plus cost accounting.

    ``per_hop_seconds`` is filled by the Direct-Hop evaluator: the wall
    time of each snapshot's independent incremental computation.  Its
    maximum is the critical-path estimate used for the parallel
    projection (Table 5 of the paper).
    """

    strategy: str = ""
    snapshot_values: List[np.ndarray] = field(default_factory=list)
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    counters: EngineCounters = field(default_factory=EngineCounters)
    per_hop_seconds: List[float] = field(default_factory=list)
    #: Total additions streamed (the paper's schedule-cost metric).
    additions_processed: int = 0
    #: Number of incremental stabilisations executed (tree edges).
    stabilisations: int = 0

    @property
    def total_seconds(self) -> float:
        return self.timer.total()

    @property
    def work_seconds(self) -> float:
        """Incremental work only — the one-off convergence on the common
        graph is excluded, matching the paper's Table 4 accounting (the
        from-scratch costs of the baselines are assumed similar and net
        out of the comparison)."""
        return self.timer.total() - self.timer.seconds("initial_compute")

    @property
    def critical_path_seconds(self) -> Optional[float]:
        """Longest single hop, or ``None`` if not a Direct-Hop result."""
        if not self.per_hop_seconds:
            return None
        return max(self.per_hop_seconds)

    def phase_seconds(self) -> Dict[str, float]:
        return self.timer.as_dict()
