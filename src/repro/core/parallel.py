"""Parallel evaluation: Direct-Hop (Table 5) and Work-Sharing.

Because every hop starts from the same converged common-graph state and
streams only additions, the hops are embarrassingly parallel — unlike
the streaming baseline, which must visit snapshots in sequence.  The
paper reports, as the parallel projection, the *longest single hop*
("given a system with sufficient cores, this is an estimate of the
overall run time").  We reproduce exactly that estimate from measured
per-hop times, and additionally offer a real thread-pool execution
(NumPy releases the GIL in the bulk kernels, so threads overlap
meaningfully even in pure Python).

:class:`ParallelWorkSharing` realises the paper's closing remark that
the work-sharing variant can be parallelised too: sibling subtrees of
the schedule are independent once their shared parent state exists, so
the parallel time is bounded by the critical (heaviest root-to-leaf)
path rather than the sum of all batches.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.graph.overlay import OverlayGraph
from repro.graph.weights import WeightFn
from repro.core.triangular_grid import Interval
from repro.kickstarter.engine import incremental_additions

if TYPE_CHECKING:
    from repro.core.schedule import ScheduleTree

__all__ = [
    "ParallelDirectHop",
    "ParallelResult",
    "ParallelWorkSharing",
    "ParallelWorkSharingResult",
]


@dataclass
class ParallelResult:
    """Timings of a parallel Direct-Hop evaluation."""

    #: Sequential time of each hop, measured independently.
    per_hop_seconds: List[float] = field(default_factory=list)
    #: Time to converge the query on the common graph.
    initial_seconds: float = 0.0
    #: Wall time of the thread-pool execution (0 if not run).
    pool_wall_seconds: float = 0.0
    snapshot_values: List[np.ndarray] = field(default_factory=list)

    @property
    def critical_path_seconds(self) -> float:
        """The paper's parallel estimate: the longest single hop."""
        return max(self.per_hop_seconds) if self.per_hop_seconds else 0.0

    @property
    def sequential_seconds(self) -> float:
        return sum(self.per_hop_seconds)


class ParallelDirectHop:
    """Runs Direct-Hop hops concurrently and reports both projections."""

    def __init__(
        self,
        decomposition: CommonGraphDecomposition,
        algorithm: MonotonicAlgorithm,
        source: int,
        weight_fn: Optional[WeightFn] = None,
        mode: str = "auto",
    ) -> None:
        self._hopper = DirectHopEvaluator(
            decomposition, algorithm, source, weight_fn=weight_fn, mode=mode
        )

    def run(
        self, max_workers: Optional[int] = None, use_pool: bool = True
    ) -> ParallelResult:
        """Measure per-hop times; optionally execute hops in a pool."""
        hopper = self._hopper
        decomp = hopper.decomposition
        result = ParallelResult()

        t0 = time.perf_counter()
        base_state = hopper.base_state()
        result.initial_seconds = time.perf_counter() - t0
        base_csr = decomp.common_csr(hopper.weight_fn)

        def one_hop(index: int) -> np.ndarray:
            batch = decomp.direct_hop_batch(index)
            state = base_state.copy()
            delta_csr = decomp.delta_csr(batch, hopper.weight_fn)
            overlay = OverlayGraph(base_csr, (delta_csr,))
            src, dst = batch.arrays()
            weights = hopper.weight_fn(src, dst)
            incremental_additions(
                overlay, hopper.algorithm, state, src, dst, weights,
                mode=hopper.mode,
            )
            return state.values

        # Sequential pass for honest per-hop times (no pool interference).
        for index in range(decomp.num_snapshots):
            t0 = time.perf_counter()
            values = one_hop(index)
            result.per_hop_seconds.append(time.perf_counter() - t0)
            result.snapshot_values.append(values)

        if use_pool:
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                list(pool.map(one_hop, range(decomp.num_snapshots)))
            result.pool_wall_seconds = time.perf_counter() - t0
        return result


@dataclass
class ParallelWorkSharingResult:
    """Timings of a parallel Work-Sharing evaluation."""

    #: Sequentially-measured seconds per schedule edge (parent, child).
    edge_seconds: Dict[Tuple[Interval, Interval], float] = field(default_factory=dict)
    initial_seconds: float = 0.0
    pool_wall_seconds: float = 0.0
    snapshot_values: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Heaviest root-to-leaf path: the sufficient-cores projection.
    critical_path_seconds: float = 0.0

    @property
    def sequential_seconds(self) -> float:
        return sum(self.edge_seconds.values())


class ParallelWorkSharing:
    """Executes a Work-Sharing schedule with subtree parallelism.

    Once a schedule node's state has converged, each child batch is an
    independent task; tasks fan out down the tree.  The sequential pass
    measures per-edge times to compute the critical-path projection,
    and ``use_pool=True`` re-executes the schedule on a thread pool.
    """

    def __init__(
        self,
        decomposition: CommonGraphDecomposition,
        algorithm: MonotonicAlgorithm,
        source: int,
        weight_fn: Optional[WeightFn] = None,
        schedule: Optional["ScheduleTree"] = None,
        mode: str = "auto",
    ) -> None:
        from repro.core.steiner import build_schedule
        from repro.core.triangular_grid import TriangularGrid

        self.decomposition = decomposition
        self.algorithm = algorithm
        self.source = source
        self.weight_fn = weight_fn
        self.mode = mode
        self.grid = TriangularGrid(decomposition)
        if schedule is None:
            schedule = build_schedule(self.grid, "work-sharing")
        schedule.validate(self.grid)
        self.schedule = schedule

    def _prepare(self):
        """Converged root state plus per-edge batch materialisation."""
        from repro.kickstarter.engine import static_compute

        weight_fn = self.weight_fn
        base_csr = self.decomposition.common_csr(weight_fn)
        t0 = time.perf_counter()
        root_state = static_compute(base_csr, self.algorithm, self.source)
        initial = time.perf_counter() - t0
        children = self.schedule.children_map()
        edges = {}
        for parent, child in self.schedule.edges():
            batch = self.grid.label(parent, child)
            delta_csr = self.decomposition.delta_csr(batch, weight_fn)
            src, dst = batch.arrays()
            if weight_fn is not None:
                weights = weight_fn(src, dst)
            else:
                weights = np.ones(src.shape, dtype=np.float64)
            edges[(parent, child)] = (delta_csr, src, dst, weights)
        return base_csr, root_state, children, edges, initial

    def run(
        self, max_workers: Optional[int] = None, use_pool: bool = True
    ) -> ParallelWorkSharingResult:
        """Measure per-edge times sequentially; optionally run pooled."""
        base_csr, root_state, children, edges, initial = self._prepare()
        result = ParallelWorkSharingResult(initial_seconds=initial)

        def apply_edge(parent_state, overlay, parent, child, collect):
            delta_csr, src, dst, weights = edges[(parent, child)]
            child_state = parent_state.copy()
            child_overlay = overlay.with_delta(delta_csr)
            t0 = time.perf_counter()
            incremental_additions(
                child_overlay, self.algorithm, child_state, src, dst, weights,
                mode=self.mode,
            )
            elapsed = time.perf_counter() - t0
            if collect is not None:
                collect[(parent, child)] = elapsed
            lo, hi = child
            if lo == hi:
                result.snapshot_values[lo] = child_state.values
            return child_state, child_overlay

        # Sequential pass: depth-first, timing every edge.
        stack = [(self.schedule.root, root_state, OverlayGraph(base_csr))]
        while stack:
            node, state, overlay = stack.pop()
            for child in children.get(node, []):
                child_state, child_overlay = apply_edge(
                    state, overlay, node, child, result.edge_seconds
                )
                if children.get(child):
                    stack.append((child, child_state, child_overlay))
        if self.schedule.root in self.grid.leaves:
            result.snapshot_values[self.schedule.root[0]] = root_state.values.copy()

        # Critical path: heaviest root-to-leaf chain of edge times.
        def path_cost(node) -> float:
            kids = children.get(node, [])
            if not kids:
                return 0.0
            return max(
                result.edge_seconds[(node, k)] + path_cost(k) for k in kids
            )

        result.critical_path_seconds = initial + path_cost(self.schedule.root)

        if use_pool:
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = []

                def launch(node, state, overlay):
                    kids = children.get(node, [])
                    for k, child in enumerate(kids):
                        futures.append(
                            pool.submit(task, node, child, state, overlay)
                        )

                def task(parent, child, parent_state, overlay):
                    child_state, child_overlay = apply_edge(
                        parent_state, overlay, parent, child, None
                    )
                    launch(child, child_state, child_overlay)

                launch(self.schedule.root, root_state, OverlayGraph(base_csr))
                # Futures keep appearing as tasks fan out; drain until quiet.
                cursor = 0
                while cursor < len(futures):
                    futures[cursor].result()
                    cursor += 1
            result.pool_wall_seconds = time.perf_counter() - t0
        return result
