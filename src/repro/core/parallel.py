"""Parallel evaluation: Direct-Hop (Table 5) and Work-Sharing.

Because every hop starts from the same converged common-graph state and
streams only additions, the hops are embarrassingly parallel — unlike
the streaming baseline, which must visit snapshots in sequence.  The
paper reports, as the parallel projection, the *longest single hop*
("given a system with sufficient cores, this is an estimate of the
overall run time").  We reproduce exactly that estimate from measured
per-hop times, and additionally offer a real thread-pool execution
(NumPy releases the GIL in the bulk kernels, so threads overlap
meaningfully even in pure Python).

:class:`ParallelWorkSharing` realises the paper's closing remark that
the work-sharing variant can be parallelised too: sibling subtrees of
the schedule are independent once their shared parent state exists, so
the parallel time is bounded by the critical (heaviest root-to-leaf)
path rather than the sum of all batches.

Resilience
----------

A failed hop or schedule-edge task no longer crashes the whole run.
Each unit executes under a :class:`~repro.resilience.RetryPolicy`; if
the retries are exhausted, the unit is *recomputed sequentially from
the last good parent state* (the converged base state for Direct-Hop,
the parent node's state for Work-Sharing) outside the primary path.
Every unit carries a :class:`TaskOutcome` record — ``ok`` / ``retried``
/ ``degraded`` — so benchmark numbers stay honest: a run that needed
recovery says so.  Fault-injection hooks (:mod:`repro.faults`) fire at
the start of every primary execution; the recovery path is deliberately
un-instrumented.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
    TYPE_CHECKING,
)

import numpy as np

from repro import faults, obs
from repro.algorithms.base import MonotonicAlgorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.errors import ResilienceError
from repro.graph.csr import CSRGraph
from repro.graph.overlay import OverlayGraph
from repro.graph.weights import WeightFn
from repro.core.triangular_grid import Interval
from repro.kickstarter.engine import VertexState, incremental_additions
from repro.resilience import RetryPolicy

if TYPE_CHECKING:
    from repro.core.schedule import ScheduleTree

#: Materialised data of one schedule edge: the Δ CSR plus the batch's
#: flat (sources, targets, weights) arrays.
EdgeData = Tuple[CSRGraph, np.ndarray, np.ndarray, np.ndarray]

__all__ = [
    "ParallelDirectHop",
    "ParallelResult",
    "ParallelWorkSharing",
    "ParallelWorkSharingResult",
    "TaskOutcome",
    "TASK_RETRY_POLICY",
]

T = TypeVar("T")

#: Default retry policy for parallel compute units.  Compute retries
#: are immediate (no backoff): a transient fault either clears on
#: re-execution or the unit degrades to the sequential recovery path.
TASK_RETRY_POLICY = RetryPolicy(
    max_attempts=2, base_delay=0.0, max_delay=0.0, retry_on=(Exception,),
)

_SEVERITY = {"ok": 0, "retried": 1, "degraded": 2}


@dataclass
class TaskOutcome:
    """Execution record of one parallel unit (a hop or a schedule edge).

    ``status`` is ``"ok"`` (first attempt succeeded), ``"retried"``
    (a retry succeeded) or ``"degraded"`` (every primary attempt failed
    and the value came from the sequential recovery path).  When a unit
    is executed more than once (sequential measuring pass plus pooled
    pass), the record keeps the *worst* status observed.  ``error``
    preserves the last primary-path exception, if any.
    """

    label: str
    status: str = "ok"
    attempts: int = 0
    error: Optional[str] = None

    def escalate(self, status: str, attempts: int,
                 error: Optional[BaseException]) -> None:
        """Merge one pass's result, keeping the worst status seen."""
        if _SEVERITY[status] > _SEVERITY[self.status]:
            self.status = status
            if error is not None:
                self.error = repr(error)
        self.attempts = max(self.attempts, attempts)


def _run_resilient(
    primary: Callable[[], T],
    fallback: Callable[[], T],
    outcome: TaskOutcome,
    policy: RetryPolicy,
) -> T:
    """Run ``primary`` under ``policy``; degrade to ``fallback`` if spent.

    ``fallback`` is the sequential recovery path and is allowed to
    raise — a failure there is a real error, not an injected or
    transient one.
    """
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            value = primary()
        except policy.retry_on as exc:
            last = exc
            delay = policy.delay(attempt) if attempt < policy.max_attempts else 0
            if delay > 0:
                time.sleep(delay)
            continue
        outcome.escalate("ok" if attempt == 1 else "retried", attempt, last)
        return value
    value = fallback()
    outcome.escalate("degraded", policy.max_attempts, last)
    return value


def _count_outcomes(outcomes: Iterable[TaskOutcome]) -> Dict[str, int]:
    counts = {"ok": 0, "retried": 0, "degraded": 0}
    for outcome in outcomes:
        counts[outcome.status] += 1
    return counts


@dataclass
class ParallelResult:
    """Timings of a parallel Direct-Hop evaluation."""

    #: Sequential time of each hop, measured independently (includes
    #: any retry/recovery time — check :attr:`outcomes` for honesty).
    per_hop_seconds: List[float] = field(default_factory=list)
    #: Time to converge the query on the common graph.
    initial_seconds: float = 0.0
    #: Wall time of the thread-pool execution (0 if not run).
    pool_wall_seconds: float = 0.0
    snapshot_values: List[np.ndarray] = field(default_factory=list)
    #: Per-hop execution records (``ok`` / ``retried`` / ``degraded``).
    outcomes: List[TaskOutcome] = field(default_factory=list)

    @property
    def critical_path_seconds(self) -> float:
        """The paper's parallel estimate: the longest single hop."""
        return max(self.per_hop_seconds) if self.per_hop_seconds else 0.0

    @property
    def sequential_seconds(self) -> float:
        return sum(self.per_hop_seconds)

    @property
    def outcome_counts(self) -> Dict[str, int]:
        """How many hops were ``ok`` / ``retried`` / ``degraded``."""
        return _count_outcomes(self.outcomes)


class ParallelDirectHop:
    """Runs Direct-Hop hops concurrently and reports both projections."""

    def __init__(
        self,
        decomposition: CommonGraphDecomposition,
        algorithm: MonotonicAlgorithm,
        source: int,
        weight_fn: Optional[WeightFn] = None,
        mode: str = "auto",
    ) -> None:
        self._hopper = DirectHopEvaluator(
            decomposition, algorithm, source, weight_fn=weight_fn, mode=mode
        )

    def run(
        self,
        max_workers: Optional[int] = None,
        use_pool: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> ParallelResult:
        """Measure per-hop times; optionally execute hops in a pool.

        A hop that fails is retried per ``retry_policy`` (default
        :data:`TASK_RETRY_POLICY`) and finally recomputed sequentially
        from the converged base state; ``result.outcomes`` records the
        status of every hop.
        """
        policy = retry_policy or TASK_RETRY_POLICY
        hopper = self._hopper
        decomp = hopper.decomposition
        result = ParallelResult()

        t0 = time.perf_counter()
        base_state = hopper.base_state()
        result.initial_seconds = time.perf_counter() - t0
        base_csr = decomp.common_csr(hopper.weight_fn)

        def one_hop(index: int, hooked: bool = True) -> np.ndarray:
            if hooked:
                faults.task_check("hop", index)
            batch = decomp.direct_hop_batch(index)
            state = base_state.copy()
            delta_csr = decomp.delta_csr(batch, hopper.weight_fn)
            overlay = OverlayGraph(base_csr, (delta_csr,))
            src, dst = batch.arrays()
            weights = hopper.weight_fn(src, dst)
            incremental_additions(
                overlay, hopper.algorithm, state, src, dst, weights,
                mode=hopper.mode,
            )
            return state.values

        def resilient_hop(index: int, outcome: TaskOutcome) -> np.ndarray:
            return _run_resilient(
                lambda: one_hop(index),
                lambda: one_hop(index, hooked=False),
                outcome, policy,
            )

        # Sequential pass for honest per-hop times (no pool interference).
        with obs.phase_span("parallel", "measure", label="direct-hop"):
            for index in range(decomp.num_snapshots):
                outcome = TaskOutcome(label=f"hop:{index}")
                t0 = time.perf_counter()
                values = resilient_hop(index, outcome)
                elapsed = time.perf_counter() - t0
                obs.phase("parallel", "hop", label=str(index),
                          seconds=elapsed)
                result.per_hop_seconds.append(elapsed)
                result.snapshot_values.append(values)
                result.outcomes.append(outcome)

        if use_pool:
            t0 = time.perf_counter()
            with obs.phase_span("parallel", "pool", label="direct-hop"):
                with ThreadPoolExecutor(max_workers=max_workers) as pool:
                    list(pool.map(
                        lambda index: resilient_hop(
                            index, result.outcomes[index]
                        ),
                        range(decomp.num_snapshots),
                    ))
            result.pool_wall_seconds = time.perf_counter() - t0
        for outcome in result.outcomes:
            obs.counter_inc("repro_task_outcomes_total",
                            component="direct-hop", status=outcome.status)
        return result


@dataclass
class ParallelWorkSharingResult:
    """Timings of a parallel Work-Sharing evaluation."""

    #: Sequentially-measured seconds per schedule edge (parent, child).
    edge_seconds: Dict[Tuple[Interval, Interval], float] = field(default_factory=dict)
    initial_seconds: float = 0.0
    pool_wall_seconds: float = 0.0
    snapshot_values: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Heaviest root-to-leaf path: the sufficient-cores projection.
    critical_path_seconds: float = 0.0
    #: Per-edge execution records (``ok`` / ``retried`` / ``degraded``).
    edge_outcomes: Dict[Tuple[Interval, Interval], TaskOutcome] = field(
        default_factory=dict
    )

    @property
    def sequential_seconds(self) -> float:
        return sum(self.edge_seconds.values())

    @property
    def outcome_counts(self) -> Dict[str, int]:
        """How many edges were ``ok`` / ``retried`` / ``degraded``."""
        return _count_outcomes(self.edge_outcomes.values())


class ParallelWorkSharing:
    """Executes a Work-Sharing schedule with subtree parallelism.

    Once a schedule node's state has converged, each child batch is an
    independent task; tasks fan out down the tree.  The sequential pass
    measures per-edge times to compute the critical-path projection,
    and ``use_pool=True`` re-executes the schedule on a thread pool.
    A failed edge task is retried, then recomputed sequentially from
    its parent's (still in hand) state, so one bad task can no longer
    abandon in-flight siblings or lose already-computed snapshot
    values.
    """

    def __init__(
        self,
        decomposition: CommonGraphDecomposition,
        algorithm: MonotonicAlgorithm,
        source: int,
        weight_fn: Optional[WeightFn] = None,
        schedule: Optional["ScheduleTree"] = None,
        mode: str = "auto",
    ) -> None:
        from repro.core.steiner import build_schedule
        from repro.core.triangular_grid import TriangularGrid

        self.decomposition = decomposition
        self.algorithm = algorithm
        self.source = source
        self.weight_fn = weight_fn
        self.mode = mode
        self.grid = TriangularGrid(decomposition)
        if schedule is None:
            schedule = build_schedule(self.grid, "work-sharing")
        schedule.validate(self.grid)
        self.schedule = schedule

    def _prepare(
        self,
    ) -> Tuple[
        CSRGraph,
        VertexState,
        Dict[Interval, List[Interval]],
        Dict[Tuple[Interval, Interval], EdgeData],
        float,
    ]:
        """Converged root state plus per-edge batch materialisation."""
        from repro.kickstarter.engine import static_compute

        weight_fn = self.weight_fn
        base_csr = self.decomposition.common_csr(weight_fn)
        t0 = time.perf_counter()
        root_state = static_compute(base_csr, self.algorithm, self.source)
        initial = time.perf_counter() - t0
        children = self.schedule.children_map()
        edges: Dict[Tuple[Interval, Interval], EdgeData] = {}
        for parent, child in self.schedule.edges():
            batch = self.grid.label(parent, child)
            delta_csr = self.decomposition.delta_csr(batch, weight_fn)
            src, dst = batch.arrays()
            if weight_fn is not None:
                weights = weight_fn(src, dst)
            else:
                weights = np.ones(src.shape, dtype=np.float64)
            edges[(parent, child)] = (delta_csr, src, dst, weights)
        return base_csr, root_state, children, edges, initial

    @staticmethod
    def _edge_label(parent: Interval, child: Interval) -> str:
        return (f"edge:{parent[0]}-{parent[1]}->"
                f"{child[0]}-{child[1]}")

    def run(
        self,
        max_workers: Optional[int] = None,
        use_pool: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> ParallelWorkSharingResult:
        """Measure per-edge times sequentially; optionally run pooled.

        Edge tasks execute under ``retry_policy`` (default
        :data:`TASK_RETRY_POLICY`) with sequential recomputation from
        the parent state as the final fallback;
        ``result.edge_outcomes`` records every edge's status.
        """
        policy = retry_policy or TASK_RETRY_POLICY
        base_csr, root_state, children, edges, initial = self._prepare()
        result = ParallelWorkSharingResult(initial_seconds=initial)
        for parent, child in self.schedule.edges():
            result.edge_outcomes[(parent, child)] = TaskOutcome(
                label=self._edge_label(parent, child)
            )

        def apply_edge(
            parent_state: VertexState,
            overlay: OverlayGraph,
            parent: Interval,
            child: Interval,
            collect: Optional[Dict[Tuple[Interval, Interval], float]],
            hooked: bool = True,
        ) -> Tuple[VertexState, OverlayGraph]:
            if hooked:
                faults.task_check(
                    "edge", self._edge_label(parent, child)[len("edge:"):]
                )
            delta_csr, src, dst, weights = edges[(parent, child)]
            child_state = parent_state.copy()
            child_overlay = overlay.with_delta(delta_csr)
            t0 = time.perf_counter()
            incremental_additions(
                child_overlay, self.algorithm, child_state, src, dst, weights,
                mode=self.mode,
            )
            elapsed = time.perf_counter() - t0
            obs.phase("parallel", "edge",
                      label=self._edge_label(parent, child), seconds=elapsed)
            if collect is not None:
                collect[(parent, child)] = elapsed
            lo, hi = child
            if lo == hi:
                result.snapshot_values[lo] = child_state.values
            return child_state, child_overlay

        def resilient_edge(
            parent_state: VertexState,
            overlay: OverlayGraph,
            parent: Interval,
            child: Interval,
            collect: Optional[Dict[Tuple[Interval, Interval], float]],
        ) -> Tuple[VertexState, OverlayGraph]:
            outcome = result.edge_outcomes[(parent, child)]
            return _run_resilient(
                lambda: apply_edge(parent_state, overlay, parent, child,
                                   collect),
                lambda: apply_edge(parent_state, overlay, parent, child,
                                   collect, hooked=False),
                outcome, policy,
            )

        # Sequential pass: depth-first, timing every edge.
        with obs.phase_span("parallel", "measure", label="work-sharing"):
            stack = [(self.schedule.root, root_state, OverlayGraph(base_csr))]
            while stack:
                node, state, overlay = stack.pop()
                for child in children.get(node, []):
                    child_state, child_overlay = resilient_edge(
                        state, overlay, node, child, result.edge_seconds
                    )
                    if children.get(child):
                        stack.append((child, child_state, child_overlay))
        if self.schedule.root in self.grid.leaves:
            result.snapshot_values[self.schedule.root[0]] = root_state.values.copy()

        # Critical path: heaviest root-to-leaf chain of edge times.
        def path_cost(node: Interval) -> float:
            kids = children.get(node, [])
            if not kids:
                return 0.0
            return max(
                result.edge_seconds[(node, k)] + path_cost(k) for k in kids
            )

        result.critical_path_seconds = initial + path_cost(self.schedule.root)

        if use_pool:
            t0 = time.perf_counter()
            with obs.phase_span("parallel", "pool", label="work-sharing"), \
                    ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures: List["Future[None]"] = []

                def launch(node: Interval, state: VertexState,
                           overlay: OverlayGraph) -> None:
                    kids = children.get(node, [])
                    for k, child in enumerate(kids):
                        futures.append(
                            pool.submit(task, node, child, state, overlay)
                        )

                def task(parent: Interval, child: Interval,
                         parent_state: VertexState,
                         overlay: OverlayGraph) -> None:
                    child_state, child_overlay = resilient_edge(
                        parent_state, overlay, parent, child, None
                    )
                    launch(child, child_state, child_overlay)

                launch(self.schedule.root, root_state, OverlayGraph(base_csr))
                # Futures keep appearing as tasks fan out; drain until
                # quiet, *without* abandoning in-flight work when one
                # task fails beyond recovery.
                cursor = 0
                failures: List[BaseException] = []
                while cursor < len(futures):
                    try:
                        futures[cursor].result()
                    except Exception as exc:
                        failures.append(exc)
                    cursor += 1
                if failures:
                    raise ResilienceError(
                        f"{len(failures)} work-sharing task(s) failed beyond "
                        f"recovery: {failures[0]!r}"
                    ) from failures[0]
            result.pool_wall_seconds = time.perf_counter() - t0
        for outcome in result.edge_outcomes.values():
            obs.counter_inc("repro_task_outcomes_total",
                            component="work-sharing", status=outcome.status)
        return result
