"""The Triangular Grid (TG) representation (§3.2, Figure 5).

Nodes are intervals ``(i, j)`` of consecutive snapshots; node ``(i, j)``
stands for the intermediate common graph ``ICG(i, j)`` (the common graph
of snapshots ``i..j``).  The root ``(0, n-1)`` is the CommonGraph
``Gc``; leaves ``(i, i)`` are the original snapshots.  Each grid edge
connects ``(i, j)`` to ``(i, j-1)`` or ``(i+1, j)`` and is labelled with
the *additions* that grow the parent ICG into the child ICG — all
downward motion in the grid is additions-only.

Key structural facts used throughout (and asserted in tests):

* ``ICG(parent) ⊆ ICG(child)``, so the label is ``child − parent`` and
  the edge weight is ``|child| − |parent|``;
* consequently every downward path between two fixed nodes has the same
  total weight (the weights telescope), and the Steiner-tree structure
  is entirely about *which* intermediate nodes are shared.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.common import CommonGraphDecomposition
from repro.errors import ScheduleError
from repro.graph.edgeset import EdgeSet

__all__ = ["Interval", "TriangularGrid"]

#: A TG node: an inclusive range of snapshot indices.
Interval = Tuple[int, int]


class TriangularGrid:
    """Triangular Grid over a :class:`CommonGraphDecomposition`."""

    def __init__(self, decomposition: CommonGraphDecomposition) -> None:
        self.decomposition = decomposition
        self.n = decomposition.num_snapshots

    # -- structure ----------------------------------------------------------
    @property
    def root(self) -> Interval:
        return (0, self.n - 1)

    @property
    def leaves(self) -> List[Interval]:
        return [(i, i) for i in range(self.n)]

    def is_node(self, node: Interval) -> bool:
        i, j = node
        return 0 <= i <= j < self.n

    def _check(self, node: Interval) -> None:
        if not self.is_node(node):
            raise ScheduleError(f"{node} is not a node of a {self.n}-snapshot TG")

    def nodes(self) -> Iterator[Interval]:
        """All nodes, root first (longest intervals first)."""
        for span in range(self.n - 1, -1, -1):
            for i in range(self.n - span):
                yield (i, i + span)

    def num_nodes(self) -> int:
        return self.n * (self.n + 1) // 2

    def children(self, node: Interval) -> List[Interval]:
        """Grid children: one-snapshot-shorter intervals (0, 1 or 2)."""
        self._check(node)
        i, j = node
        if i == j:
            return []
        if j - i == 1:
            return [(i, i), (j, j)]
        return [(i, j - 1), (i + 1, j)]

    def parents(self, node: Interval) -> List[Interval]:
        """Grid parents: one-snapshot-longer intervals within range."""
        self._check(node)
        i, j = node
        result = []
        if i > 0:
            result.append((i - 1, j))
        if j < self.n - 1:
            result.append((i, j + 1))
        return result

    @staticmethod
    def contains(outer: Interval, inner: Interval) -> bool:
        """Is ``inner`` a (not necessarily proper) sub-interval of ``outer``?"""
        return outer[0] <= inner[0] and inner[1] <= outer[1]

    # -- labels and weights ----------------------------------------------------
    def surplus(self, node: Interval) -> EdgeSet:
        """Edges of ``ICG(node)`` beyond the root common graph."""
        self._check(node)
        return self.decomposition.interval_surplus(*node)

    def surplus_size(self, node: Interval) -> int:
        return len(self.surplus(node))

    def label(self, parent: Interval, child: Interval) -> EdgeSet:
        """Additions converting ``ICG(parent)`` into ``ICG(child)``.

        Valid for any containment pair (grid-adjacent or a bypass jump).
        """
        self._check(parent)
        self._check(child)
        if parent == child or not self.contains(parent, child):
            raise ScheduleError(f"{child} is not contained in {parent}")
        return self.surplus(child) - self.surplus(parent)

    def weight(self, parent: Interval, child: Interval) -> int:
        """Number of additions on the (possibly bypassing) edge."""
        self._check(parent)
        self._check(child)
        if parent == child or not self.contains(parent, child):
            raise ScheduleError(f"{child} is not contained in {parent}")
        return self.surplus_size(child) - self.surplus_size(parent)

    def grid_edges(self) -> Iterator[Tuple[Interval, Interval]]:
        """All (parent, child) grid-adjacent edges."""
        for node in self.nodes():
            for child in self.children(node):
                yield node, child

    def __repr__(self) -> str:
        return f"TriangularGrid(n={self.n}, nodes={self.num_nodes()})"
