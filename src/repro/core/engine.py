"""Work-Sharing query evaluation over a schedule tree (§3.2, §4.2).

Walks a :class:`~repro.core.schedule.ScheduleTree` depth-first from the
common graph.  Each tree edge streams one batch of additions into a
copy of the parent's converged state, over an overlay graph composed of
the common-graph CSR plus the Δ CSRs accumulated along the path — the
common graph itself is never mutated.  Batches shared by several
snapshots (edges into interior ICG nodes) are therefore processed
exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.algorithms.base import MonotonicAlgorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.results import EvolvingQueryResult
from repro.core.schedule import ScheduleTree
from repro.core.steiner import build_schedule
from repro.core.triangular_grid import TriangularGrid
from repro.errors import ScheduleError
from repro.graph.overlay import OverlayGraph
from repro.graph.weights import UnitWeights, WeightFn
from repro.kickstarter.engine import incremental_additions, static_compute

__all__ = ["WorkSharingEvaluator"]


class WorkSharingEvaluator:
    """Evaluates one query on all snapshots following a schedule tree.

    If no schedule is supplied, the greedy-Steiner + bypass schedule of
    Algorithm 1 is built from the decomposition's Triangular Grid.
    """

    def __init__(
        self,
        decomposition: CommonGraphDecomposition,
        algorithm: MonotonicAlgorithm,
        source: int,
        weight_fn: Optional[WeightFn] = None,
        schedule: Optional[ScheduleTree] = None,
        mode: str = "auto",
    ) -> None:
        self.decomposition = decomposition
        self.algorithm = algorithm
        self.source = source
        self.weight_fn: WeightFn = weight_fn if weight_fn is not None else UnitWeights()
        self.mode = mode
        self.grid = TriangularGrid(decomposition)
        if schedule is None:
            schedule = build_schedule(self.grid, "work-sharing")
        schedule.validate(self.grid)
        self.schedule = schedule

    def run(self, keep_values: bool = True) -> EvolvingQueryResult:
        """Execute the schedule; one incremental computation per edge."""
        result = EvolvingQueryResult(strategy="work-sharing")
        decomp = self.decomposition
        base_csr = decomp.common_csr(self.weight_fn)
        with result.timer.phase("initial_compute"), \
                obs.phase_span("engine", "initial_compute"):
            root_state = static_compute(
                base_csr, self.algorithm, self.source,
                counters=result.counters, mode="sync",
            )

        children = self.schedule.children_map()
        values_by_snapshot: Dict[int, np.ndarray] = {}
        if self.schedule.root in [l for l in self.grid.leaves]:
            # Single-snapshot window: the root is the snapshot.
            values_by_snapshot[0] = root_state.values.copy()

        # Depth-first: stack entries carry the node, its converged
        # state, and the overlay reaching it.
        stack: List[tuple] = [(self.schedule.root, root_state, OverlayGraph(base_csr))]
        while stack:
            node, state, overlay = stack.pop()
            kids = children.get(node, [])
            for k, child in enumerate(kids):
                # The last child may take ownership of the parent state;
                # earlier children work on copies.
                child_state = state if k == len(kids) - 1 else state.copy()
                batch = self.grid.label(node, child)
                with result.timer.phase("incremental_add"), \
                        obs.phase_span("engine", "incremental_add"):
                    delta_csr = decomp.delta_csr(batch, self.weight_fn)
                    child_overlay = overlay.with_delta(delta_csr)
                    src, dst = batch.arrays()
                    weights = self.weight_fn(src, dst)
                    incremental_additions(
                        child_overlay, self.algorithm, child_state,
                        src, dst, weights,
                        counters=result.counters, mode=self.mode,
                    )
                result.additions_processed += len(batch)
                result.stabilisations += 1
                lo, hi = child
                if lo == hi:
                    values_by_snapshot[lo] = child_state.values
                if children.get(child):
                    stack.append((child, child_state, child_overlay))

        if keep_values:
            missing = [
                i for i in range(decomp.num_snapshots) if i not in values_by_snapshot
            ]
            if missing:
                raise ScheduleError(f"schedule produced no values for {missing}")
            result.snapshot_values = [
                values_by_snapshot[i] for i in range(decomp.num_snapshots)
            ]
        return result
