"""The CommonGraph decomposition: shared core plus per-snapshot surplus.

Given snapshots ``G_0..G_{n-1}``, the *common graph* ``Gc`` is the set
of edges present in **every** snapshot.  Each snapshot is then
``Gc ∪ surplus_i`` where ``surplus_i = E_i − Gc`` is small (bounded by
the total churn of the update stream).  This converts every deletion
into an addition: starting from ``Gc``, any snapshot is reached by
adding its surplus (§2.2 of the paper).

The same decomposition underlies the Triangular Grid: the intermediate
common graph of a consecutive range ``i..j`` is
``Gc ∪ interval_surplus(i, j)`` where ``interval_surplus(i, j) =
⋂_{t∈[i,j]} surplus_t`` — all the interesting set algebra happens on
the *small* surplus sets, never on full edge sets.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import SnapshotError
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import WeightFn

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.evolving
    from repro.evolving.snapshots import EvolvingGraph

__all__ = ["CommonGraphDecomposition"]


class CommonGraphDecomposition:
    """Common graph + per-snapshot surplus edge sets.

    Build with :meth:`from_evolving` or :meth:`from_snapshots`.

    The interval-surplus memo is guarded by a lock, so a decomposition
    may be shared by concurrent readers (``interval_surplus`` /
    ``restrict`` / ``extended`` from several threads); the common graph
    and the surplus lists themselves are never mutated after
    construction.
    """

    def __init__(
        self,
        num_vertices: int,
        common: EdgeSet,
        surpluses: Sequence[EdgeSet],
    ) -> None:
        if not surpluses:
            raise SnapshotError("decomposition needs at least one snapshot")
        for s in surpluses:
            if not s.isdisjoint(common):
                raise SnapshotError("surplus overlaps the common graph")
        self.num_vertices = int(num_vertices)
        self.common = common
        self.surpluses: List[EdgeSet] = list(surpluses)
        self._interval_cache: Dict[Tuple[int, int], EdgeSet] = {}  # guarded-by: _cache_lock
        # Guards _interval_cache only: lazy memo inserts race with the
        # snapshot-iterations in extended()/restrict() when queries and
        # ingest share one decomposition.  Never held while computing.
        self._cache_lock = threading.Lock()

    # -- construction -----------------------------------------------------
    @classmethod
    def from_snapshots(
        cls, num_vertices: int, snapshots: Sequence[EdgeSet]
    ) -> "CommonGraphDecomposition":
        """Decompose explicit snapshot edge sets."""
        if not snapshots:
            raise SnapshotError("need at least one snapshot")
        common = snapshots[0]
        for edges in snapshots[1:]:
            common = common & edges
        surpluses = [edges - common for edges in snapshots]
        return cls(num_vertices, common, surpluses)

    @classmethod
    def from_evolving(cls, evolving: "EvolvingGraph") -> "CommonGraphDecomposition":
        """Decompose an evolving graph.

        Uses the stream structure for efficiency: an edge is common iff
        it is in snapshot 0 and never touched by any batch (§4.1 — new
        edges, both additions and deletions, are removed from the
        common graph).
        """
        touched = EdgeSet.empty()
        for batch in evolving.batches:
            touched = touched | batch.additions | batch.deletions
        common = evolving.snapshot_edges(0) - touched
        surpluses = [
            evolving.snapshot_edges(i) - common
            for i in range(evolving.num_snapshots)
        ]
        return cls(evolving.num_vertices, common, surpluses)

    # -- incremental growth -------------------------------------------------
    def extended(self, new_edges: EdgeSet) -> "CommonGraphDecomposition":
        """Decomposition with one more snapshot appended, built incrementally.

        Per §4.1, the new common graph is ``old Gc ∩ new snapshot``; the
        edges that leave the common graph were present in *every* old
        snapshot, so they move into every old surplus unchanged.  The
        result's interval-surplus memo (= the Triangular Grid's interior
        nodes) is carried over from this decomposition — old ICG edge
        sets are unchanged by the append, their surpluses merely absorb
        the departed common edges — and the new TG column
        ``(i, n)`` is derived by intersecting down the new surplus, so
        extension never recomputes the existing grid.
        """
        if new_edges.max_vertex() >= self.num_vertices:
            raise SnapshotError("new snapshot references vertex out of range")
        n = self.num_snapshots
        new_common = self.common & new_edges
        departed = self.common - new_common
        if departed:
            surpluses = [s | departed for s in self.surpluses]
        else:
            surpluses = list(self.surpluses)
        new_surplus = new_edges - new_common
        surpluses.append(new_surplus)
        result = CommonGraphDecomposition(self.num_vertices, new_common, surpluses)
        # ICG(i, j) is unchanged for j < n, so every memoised interval
        # surplus is still valid once it absorbs the departed edges.
        with self._cache_lock:
            carried = list(self._interval_cache.items())
        for key, surplus in carried:
            result._interval_cache[key] = (
                surplus | departed if departed else surplus
            )
        # New column: interval_surplus(i, n) = surplus_i ∩ ... ∩ surplus_n,
        # built by one shrinking intersection pass over the leaf surpluses.
        column = new_surplus
        result._interval_cache[(n, n)] = new_surplus
        for i in range(n - 1, -1, -1):
            column = surpluses[i] & column
            result._interval_cache[(i, n)] = column
        return result

    # -- shape ------------------------------------------------------------
    @property
    def num_snapshots(self) -> int:
        return len(self.surpluses)

    def snapshot_edges(self, index: int) -> EdgeSet:
        """Full edge set of snapshot ``index``."""
        return self.common | self.surpluses[index]

    # -- interval surpluses (Triangular Grid support) -----------------------
    def interval_surplus(self, i: int, j: int) -> EdgeSet:
        """Surplus of the intermediate common graph for snapshots ``i..j``.

        ``ICG(i, j) = Gc ∪ interval_surplus(i, j)``; computed by
        intersecting surpluses and memoised.  ``interval_surplus(0,
        n-1)`` is empty by construction.
        """
        n = self.num_snapshots
        if not 0 <= i <= j < n:
            raise SnapshotError(f"invalid interval ({i}, {j}) for {n} snapshots")
        key = (i, j)
        with self._cache_lock:
            cached = self._interval_cache.get(key)
        if cached is not None:
            return cached
        if i == j:
            result = self.surpluses[i]
        else:
            # Split anywhere; halving keeps the memo reusable.
            mid = (i + j) // 2
            result = self.interval_surplus(i, mid) & self.interval_surplus(mid + 1, j)
        # A concurrent thread may have raced us to the same key; both
        # computed the same immutable value, so last-write-wins is fine.
        with self._cache_lock:
            self._interval_cache[key] = result
        return result

    def interval_edges(self, i: int, j: int) -> EdgeSet:
        """Full edge set of the intermediate common graph for ``i..j``."""
        return self.common | self.interval_surplus(i, j)

    def restrict(self, first: int, last: int) -> "CommonGraphDecomposition":
        """Sub-decomposition for the snapshot range ``first..last``.

        The restricted common graph is the range's intermediate common
        graph ``ICG(first, last)`` — a *superset* of the global ``Gc`` —
        so range queries start from a larger shared core and stream
        fewer additions per snapshot.  This realises the range-query
        direction sketched in the paper's concluding remarks: a window
        query needs no walk from the initial snapshot.
        """
        n = self.num_snapshots
        if not 0 <= first <= last < n:
            raise SnapshotError(f"invalid range ({first}, {last}) for {n} snapshots")
        range_surplus = self.interval_surplus(first, last)
        common = self.common | range_surplus
        surpluses = [
            self.surpluses[t] - range_surplus for t in range(first, last + 1)
        ]
        result = CommonGraphDecomposition(self.num_vertices, common, surpluses)
        # Re-use memoised interval surpluses that fall inside the window:
        # for [i, j] ⊆ [first, last] the restricted interval surplus is
        # the global one minus the window surplus (the common graphs
        # cancel), so the restricted grid starts pre-populated.
        with self._cache_lock:
            memo = list(self._interval_cache.items())
        for (i, j), surplus in memo:
            if first <= i and j <= last:
                result._interval_cache[(i - first, j - first)] = (
                    surplus - range_surplus
                )
        return result

    # -- materialisation -----------------------------------------------------
    def common_csr(self, weight_fn: Optional[WeightFn] = None) -> CSRGraph:
        """The common graph in CSR form."""
        return CSRGraph.from_edge_set(self.common, self.num_vertices, weight_fn=weight_fn)

    def delta_csr(self, edges: EdgeSet, weight_fn: Optional[WeightFn] = None) -> CSRGraph:
        """A Δ batch in CSR form, ready to overlay on the common graph."""
        return CSRGraph.from_edge_set(edges, self.num_vertices, weight_fn=weight_fn)

    def direct_hop_batch(self, index: int) -> EdgeSet:
        """The additions needed to hop from ``Gc`` to snapshot ``index``."""
        return self.surpluses[index]

    def total_direct_hop_additions(self) -> int:
        """Cost (in additions) of the Direct-Hop schedule."""
        return sum(len(s) for s in self.surpluses)

    def storage_edges(self) -> int:
        """Edges stored by the common-graph representation.

        The paper's §4.1 space claim: the common graph plus the per-
        snapshot surplus batches stores each edge once per *distinct*
        role, versus ``num_snapshots`` copies for one-CSR-per-snapshot
        storage.
        """
        return len(self.common) + sum(len(s) for s in self.surpluses)

    def snapshot_storage_edges(self) -> int:
        """Edges stored if every snapshot kept its own full CSR."""
        return sum(len(self.snapshot_edges(i)) for i in range(self.num_snapshots))

    def __repr__(self) -> str:
        return (
            f"CommonGraphDecomposition(V={self.num_vertices}, "
            f"snapshots={self.num_snapshots}, |Gc|={len(self.common)})"
        )
