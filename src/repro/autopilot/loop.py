"""The control loop: observe → diagnose → act, one decision per cycle.

:class:`FleetAutopilot` wires the scraper, the policy and the executor
together and records every cycle as one :class:`AutopilotDecision` —
the observed signals, the pressure reading, the rule that fired, the
action taken (or the hysteresis gate that held it), and the outcome.
The record is JSON-serialisable and replayable: feeding the same
signal sequence through a fresh policy reproduces the same decisions,
which is how the FakeClock hysteresis tests pin the loop's behaviour.

``once(dry_run=True)`` runs a full observe → diagnose cycle and
reports the action that *would* run, touching nothing — the CLI's
``repro autopilot once --dry-run``.

:class:`AutopilotRunner` drives ``once()`` on a background thread with
a jittered interval (seeded RNG, injected clock — the loop itself
never reads the wall clock), swallowing per-cycle errors: a scrape or
action failure is a recorded decision, not a dead control loop.
"""

from __future__ import annotations

import random
import threading
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, TYPE_CHECKING

from repro import obs
from repro.errors import ReproError
from repro.obs.clock import Clock, MonotonicClock

from repro.autopilot.actions import ActionExecutor
from repro.autopilot.policy import (
    Action,
    AutopilotConfig,
    AutopilotPolicy,
    PressureReading,
)
from repro.autopilot.signals import FleetScraper, FleetSignals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.supervisor import FleetSupervisor

__all__ = ["AutopilotDecision", "AutopilotRunner", "FleetAutopilot",
           "decision_log"]

#: Weak handle to the most recently constructed autopilot, so the test
#: harness can dump its decision log as a failure artifact without
#: keeping the fleet alive.
_LAST: Optional["weakref.ReferenceType[FleetAutopilot]"] = None


def decision_log() -> List[Dict[str, Any]]:
    """The last-constructed autopilot's decisions, JSON-safe."""
    autopilot = _LAST() if _LAST is not None else None
    if autopilot is None:
        return []
    return [decision.to_dict() for decision in autopilot.decisions]


@dataclass(frozen=True)
class AutopilotDecision:
    """One replayable observe → diagnose → act record."""

    cycle: int
    at: float
    condition: str
    rule: str
    signals: Dict[str, Any]
    pressure: Dict[str, float]
    action: Optional[Dict[str, Optional[str]]]
    held: Optional[str]
    outcome: Optional[Dict[str, Any]]
    dry_run: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cycle": self.cycle,
            "at": self.at,
            "condition": self.condition,
            "rule": self.rule,
            "signals": self.signals,
            "pressure": self.pressure,
            "action": self.action,
            "held": self.held,
            "outcome": self.outcome,
            "dry_run": self.dry_run,
        }


def _hold_family(held: str) -> str:
    """Normalise a held reason to its obs label (cooldowns collapse)."""
    return "cooldown" if held.startswith("cooldown:") else held


class FleetAutopilot:
    """Closed-loop controller over one supervised fleet."""

    def __init__(self, supervisor: "FleetSupervisor",
                 config: Optional[AutopilotConfig] = None, *,
                 clock: Optional[Clock] = None) -> None:
        global _LAST
        self.supervisor = supervisor
        self.config = config or AutopilotConfig()
        self.clock = clock or self.config.clock or MonotonicClock()
        self.scraper = FleetScraper(supervisor, clock=self.clock)
        self.policy = AutopilotPolicy(self.config, clock=self.clock)
        self.executor = ActionExecutor(
            supervisor, action_deadline_s=self.config.action_deadline_s
        )
        self.decisions: Deque[AutopilotDecision] = deque(
            maxlen=self.config.decision_log_size
        )
        self.counters: Dict[str, int] = {
            "cycles": 0, "actions": 0, "action_failures": 0,
            "grows": 0, "shrinks": 0, "heals": 0, "holds": 0,
            "membership_changes": 0, "scrape_errors": 0,
        }
        self._last_signals: Optional[FleetSignals] = None
        self._unregister_collector = obs.register_collector(
            self._collect_metrics
        )
        _LAST = weakref.ref(self)

    def close(self) -> None:
        self._unregister_collector()
        self._unregister_collector = lambda: None

    def __enter__(self) -> "FleetAutopilot":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the cycle -----------------------------------------------------------
    def once(self, *, dry_run: bool = False) -> AutopilotDecision:
        """One observe → diagnose → act cycle; returns its decision.

        With ``dry_run`` the cycle observes and diagnoses for real but
        executes nothing and publishes nothing — the returned decision
        carries the action that *would* have run.
        """
        with obs.phase_span("autopilot", "cycle"):
            cycle = self.counters["cycles"]
            self.counters["cycles"] += 1
            obs.counter_inc("repro_autopilot_cycles_total")
            try:
                signals = self.scraper.scrape()
            except (ReproError, OSError) as exc:
                decision = self._held_decision(cycle, exc, dry_run)
            else:
                self._last_signals = signals
                reading = self.policy.observe(signals)
                obs.gauge_set("repro_autopilot_pressure", reading.smoothed)
                decision = self._decide_and_act(
                    cycle, signals, reading, dry_run
                )
        self.decisions.append(decision)
        obs.counter_inc("repro_autopilot_decisions_total",
                        condition=decision.condition)
        if not dry_run:
            self.publish()
        return decision

    def _held_decision(self, cycle: int, exc: BaseException,
                       dry_run: bool) -> AutopilotDecision:
        """A cycle that could not even observe: diagnose ``unknown``.

        Acting on stale or absent signals is how control loops wreck
        fleets; a failed router scrape therefore holds every action and
        simply records why.
        """
        self.counters["scrape_errors"] += 1
        self.counters["holds"] += 1
        obs.counter_inc("repro_autopilot_holds_total",
                        reason="scrape-failed")
        return AutopilotDecision(
            cycle=cycle, at=self.clock.now(), condition="unknown",
            rule=f"scrape failed: {exc}", signals={"error": str(exc)},
            pressure={"raw": 0.0, "smoothed": self.policy.pressure},
            action=None, held="scrape-failed", outcome=None,
            dry_run=dry_run,
        )

    def _decide_and_act(self, cycle: int, signals: FleetSignals,
                        reading: PressureReading,
                        dry_run: bool) -> AutopilotDecision:
        condition, rule, action, held = self.policy.decide(signals, reading)
        outcome: Optional[Dict[str, Any]] = None
        if action is not None:
            if dry_run:
                outcome = {"dry_run": True}
                obs.counter_inc("repro_autopilot_actions_total",
                                verb=action.verb, outcome="dry_run")
            else:
                outcome = self._act(action)
        elif held is not None:
            self.counters["holds"] += 1
            obs.counter_inc("repro_autopilot_holds_total",
                            reason=_hold_family(held))
        return AutopilotDecision(
            cycle=cycle, at=signals.at, condition=condition, rule=rule,
            signals=signals.to_dict(), pressure=reading.to_dict(),
            action=None if action is None else action.to_dict(),
            held=held, outcome=outcome, dry_run=dry_run,
        )

    def _act(self, action: Action) -> Dict[str, Any]:
        self.policy.begin(action)
        try:
            outcome = self.executor.apply(action)
        except BaseException:
            # ``apply`` reports failures instead of raising, so this is
            # belt-and-braces: whatever happens, the action is no longer
            # in flight and its cooldown runs.
            self.policy.complete(action, ok=False)
            raise
        self.policy.complete(action, ok=bool(outcome.get("ok")))
        self.counters["actions"] += 1
        self.counters[action.verb + "s"] += 1
        if outcome.get("ok"):
            obs.counter_inc("repro_autopilot_actions_total",
                            verb=action.verb, outcome="ok")
            if action.verb in ("grow", "shrink"):
                self.counters["membership_changes"] += 1
                obs.counter_inc(
                    "repro_autopilot_membership_changes_total"
                )
        else:
            self.counters["action_failures"] += 1
            obs.counter_inc("repro_autopilot_actions_total",
                            verb=action.verb, outcome="failed")
        return outcome

    # -- reporting -----------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """JSON-safe loop status (router status payload, CLI)."""
        last = self.decisions[-1] if self.decisions else None
        return {
            "counters": dict(self.counters),
            "pressure": self.policy.pressure,
            "cooldowns": self.policy.cooldowns(),
            "in_flight": (None if self.policy.in_flight is None
                          else self.policy.in_flight.to_dict()),
            "config": self.config.to_dict(),
            "last_decision": None if last is None else last.to_dict(),
        }

    def publish(self) -> None:
        """Best-effort: surface loop status in the router status doc."""
        runner = self.supervisor.router_runner
        if runner is None:
            return
        try:
            runner.set_autopilot(self.status())
        except (ReproError, OSError):
            # The router may be mid-shutdown; status publication is
            # telemetry, never worth failing a control cycle over.
            pass

    def _collect_metrics(self, registry: "obs.MetricsRegistry") -> None:
        """Scrape-time bridge: loop state → autopilot gauges."""
        pressure = obs.instruments.family(
            registry, "repro_autopilot_pressure"
        )
        pressure.labels().set(self.policy.pressure)
        if self._last_signals is None:
            return
        tally: Dict[str, int] = {}
        for state in self._last_signals.states.values():
            tally[state] = tally.get(state, 0) + 1
        replicas = obs.instruments.family(
            registry, "repro_autopilot_replicas"
        )
        for state in ("ready", "unhealthy", "quarantined", "draining",
                      "stopped"):
            replicas.labels(state=state).set(tally.get(state, 0))


class AutopilotRunner:
    """Drive :meth:`FleetAutopilot.once` on a background thread."""

    def __init__(self, autopilot: FleetAutopilot) -> None:
        self.autopilot = autopilot
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._rng = random.Random(autopilot.config.jitter_seed)

    def start(self) -> "AutopilotRunner":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._main, name="repro-autopilot", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=60)
            self._thread = None

    def _main(self) -> None:
        config = self.autopilot.config
        while not self._stop.is_set():
            try:
                self.autopilot.once()
            except (ReproError, OSError):
                # ``once`` already turns expected failures into held
                # decisions; anything that still escapes (a racing
                # teardown, a dead router) must not kill the loop.
                pass
            pause = config.interval_s * (
                1.0 + config.jitter * self._rng.random()
            )
            self._stop.wait(pause)

    def __enter__(self) -> "AutopilotRunner":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
