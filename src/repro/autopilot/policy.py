"""Diagnose: signals → fleet condition → (maybe) one action.

The policy is deliberately a pure state machine over injected time —
no I/O, no threads — so every hysteresis property (smoothing,
asymmetric thresholds, cooldowns, bounds, one-action-in-flight) is
unit-testable with a :class:`~repro.obs.clock.FakeClock`.

Hysteresis layers, in the order they gate a decision:

1. **EWMA smoothing** — the overload pressure the policy acts on is an
   exponentially weighted moving average of the per-cycle raw
   pressure, so one bad scrape cannot trigger a membership change.
2. **Asymmetric thresholds** — scaling up fires at
   ``scale_up_pressure``; scaling down requires the smoothed pressure
   to sit at or under the (strictly lower) ``scale_down_pressure`` for
   ``calm_cycles`` consecutive cycles.  The gap between the two
   thresholds is the dead band that prevents flapping.
3. **Per-verb cooldowns** — after any grow/shrink/heal attempt
   (successful *or* failed: failures are neutral, never retried hot)
   that verb is held for its cooldown window.  The membership verbs
   grow and shrink additionally hold *each other*: a completed change
   in either direction gates both directions until its cooldown
   lapses, so a flapping signal can change membership at most once
   per cooldown window.
4. **Bounds** — membership never leaves ``[min_replicas,
   max_replicas]``.
5. **One action in flight** — a second action is held until
   :meth:`AutopilotPolicy.complete` lands, so concurrent loops or a
   slow action can never interleave membership changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import FleetError
from repro.obs.clock import Clock, MonotonicClock

from repro.autopilot.signals import FleetSignals

__all__ = ["Action", "AutopilotConfig", "AutopilotPolicy", "CONDITIONS",
           "Ewma"]

#: Every condition :meth:`AutopilotPolicy.decide` can diagnose.
CONDITIONS = ("steady", "underprovisioned", "overprovisioned",
              "unhealthy-replica", "diverged", "unknown")

#: Quarantine reason that marks a *grow in progress*, not a casualty:
#: the provision workflow parks the new replica as quarantined until
#: its resync proves it holds the fleet tip.
PROVISIONING = "provisioning"


class Ewma:
    """Exponentially weighted moving average; first sample seeds it."""

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise FleetError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None

    @property
    def value(self) -> float:
        return 0.0 if self._value is None else self._value

    def update(self, sample: float) -> float:
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (float(sample) - self._value)
        return self._value


@dataclass(frozen=True)
class Action:
    """One membership action the policy asks the executor to run."""

    verb: str  # "grow" | "shrink" | "heal"
    target: Optional[str] = None  # replica name; None = policy default
    rule: str = ""

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {"verb": self.verb, "target": self.target, "rule": self.rule}


@dataclass
class AutopilotConfig:
    """Tunables of one autopilot (see ``docs/autopilot.md``)."""

    min_replicas: int = 2
    max_replicas: int = 5
    #: EWMA smoothing factor for the pressure signal.
    ewma_alpha: float = 0.5
    #: Smoothed pressure at or above which the fleet is underprovisioned.
    scale_up_pressure: float = 0.25
    #: Smoothed pressure at or below which a cycle counts as calm.
    scale_down_pressure: float = 0.05
    #: Queue depth that alone saturates the pressure signal to 1.0.
    queue_pressure_depth: int = 8
    #: Consecutive calm cycles required before a shrink may fire.
    calm_cycles: int = 3
    grow_cooldown_s: float = 2.0
    shrink_cooldown_s: float = 10.0
    heal_cooldown_s: float = 1.0
    #: Seconds between control cycles (the runner adds jitter on top).
    interval_s: float = 0.5
    #: Per-cycle jitter as a fraction of ``interval_s``, so N autopilots
    #: started together do not synchronize scrape storms.
    jitter: float = 0.2
    jitter_seed: int = 0
    #: Wall-clock budget for one grow action (clone + resync + restore).
    action_deadline_s: float = 30.0
    #: Ring-buffer size of the replayable decision log.
    decision_log_size: int = 256
    #: Injected time source (tests pass ``FakeClock``).
    clock: Optional[Clock] = None

    def __post_init__(self) -> None:
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise FleetError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}..{self.max_replicas}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise FleetError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if not 0.0 <= self.scale_down_pressure < self.scale_up_pressure:
            raise FleetError(
                "scale_down_pressure must be strictly below "
                f"scale_up_pressure, got {self.scale_down_pressure} vs "
                f"{self.scale_up_pressure}"
            )
        if self.calm_cycles < 1:
            raise FleetError("calm_cycles must be >= 1")
        if self.queue_pressure_depth < 1:
            raise FleetError("queue_pressure_depth must be >= 1")

    def cooldown_s(self, verb: str) -> float:
        return {"grow": self.grow_cooldown_s,
                "shrink": self.shrink_cooldown_s,
                "heal": self.heal_cooldown_s}[verb]

    def to_dict(self) -> Dict[str, object]:
        return {
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "ewma_alpha": self.ewma_alpha,
            "scale_up_pressure": self.scale_up_pressure,
            "scale_down_pressure": self.scale_down_pressure,
            "queue_pressure_depth": self.queue_pressure_depth,
            "calm_cycles": self.calm_cycles,
            "grow_cooldown_s": self.grow_cooldown_s,
            "shrink_cooldown_s": self.shrink_cooldown_s,
            "heal_cooldown_s": self.heal_cooldown_s,
            "interval_s": self.interval_s,
        }


@dataclass
class PressureReading:
    """Raw and smoothed pressure for one cycle (decision record)."""

    raw: float = 0.0
    smoothed: float = 0.0
    shed_delta: int = 0
    answered_delta: int = 0
    calm_streak: int = 0

    def to_dict(self) -> Dict[str, float]:
        return {
            "raw": self.raw,
            "smoothed": self.smoothed,
            "shed_delta": self.shed_delta,
            "answered_delta": self.answered_delta,
            "calm_streak": self.calm_streak,
        }


@dataclass
class _VerbState:
    cooldown_until: Optional[float] = None


class AutopilotPolicy:
    """The hysteresis state machine between signals and actions."""

    def __init__(self, config: Optional[AutopilotConfig] = None, *,
                 clock: Optional[Clock] = None) -> None:
        self.config = config or AutopilotConfig()
        self.clock = clock or self.config.clock or MonotonicClock()
        self._ewma = Ewma(self.config.ewma_alpha)
        self._previous: Optional[FleetSignals] = None
        self._calm_streak = 0
        self._verbs: Dict[str, _VerbState] = {
            verb: _VerbState() for verb in ("grow", "shrink", "heal")
        }
        self._in_flight: Optional[Action] = None

    # -- observe -------------------------------------------------------------
    def observe(self, signals: FleetSignals) -> PressureReading:
        """Fold one scrape into the smoothed pressure signal.

        Raw pressure is the worse of two saturating fractions: the shed
        fraction of this cycle's *new* traffic (counter deltas, so a
        long-gone historical storm cannot keep pressure high) and the
        current admission queue depth against
        ``queue_pressure_depth``.  Queue depth leads shedding — a
        filling waiting room is the pre-echo of the sheds to come — so
        including it lets the loop grow *before* conservation suffers.
        """
        shed_delta = 0
        answered_delta = 0
        if self._previous is not None:
            shed_delta = max(0, signals.shed - self._previous.shed)
            answered_delta = max(
                0, signals.answered - self._previous.answered
            )
        self._previous = signals
        handled = shed_delta + answered_delta
        shed_fraction = shed_delta / handled if handled else 0.0
        queue_fraction = min(
            1.0, signals.queue_depth / self.config.queue_pressure_depth
        )
        raw = max(shed_fraction, queue_fraction)
        smoothed = self._ewma.update(raw)
        if smoothed <= self.config.scale_down_pressure:
            self._calm_streak += 1
        else:
            self._calm_streak = 0
        return PressureReading(
            raw=raw, smoothed=smoothed, shed_delta=shed_delta,
            answered_delta=answered_delta, calm_streak=self._calm_streak,
        )

    @property
    def pressure(self) -> float:
        return self._ewma.value

    # -- diagnose ------------------------------------------------------------
    def decide(
        self, signals: FleetSignals, reading: PressureReading,
    ) -> Tuple[str, str, Optional[Action], Optional[str]]:
        """Diagnose one condition; returns ``(condition, rule, action,
        held)``.

        ``action`` is the membership change the condition calls for, or
        ``None``; ``held`` names the hysteresis gate that suppressed an
        indicated action (``None`` when the action may proceed or none
        was indicated).  Healing outranks scaling: a fleet with a dead
        or diverged replica gets repaired before its size is judged.
        """
        config = self.config
        casualty = self._casualty(signals)
        if casualty is not None:
            name, state, reason = casualty
            condition = ("diverged" if reason == "divergence"
                         else "unhealthy-replica")
            rule = f"heal {name}: {state}" + (
                f" ({reason})" if reason else ""
            )
            action = Action("heal", target=name, rule=rule)
            return (condition, rule, *self._gate(action))
        if reading.smoothed >= config.scale_up_pressure:
            rule = (f"pressure {reading.smoothed:.3f} >= "
                    f"{config.scale_up_pressure} (scale up)")
            if signals.total_replicas >= config.max_replicas:
                return "underprovisioned", rule, None, "at-max-replicas"
            action = Action("grow", rule=rule)
            return ("underprovisioned", rule, *self._gate(action))
        if (reading.smoothed <= config.scale_down_pressure
                and reading.calm_streak >= config.calm_cycles):
            rule = (f"pressure {reading.smoothed:.3f} <= "
                    f"{config.scale_down_pressure} for "
                    f"{reading.calm_streak} cycles (scale down)")
            if signals.ready_replicas <= config.min_replicas:
                return "overprovisioned", rule, None, "at-min-replicas"
            action = Action("shrink", rule=rule)
            return ("overprovisioned", rule, *self._gate(action))
        return ("steady",
                f"pressure {reading.smoothed:.3f} in dead band",
                None, None)

    @staticmethod
    def _casualty(
        signals: FleetSignals,
    ) -> Optional[Tuple[str, str, Optional[str]]]:
        """The first replica heal should act on, diverged ones first."""
        casualties = [
            (name, state, signals.reasons.get(name))
            for name, state in sorted(signals.states.items())
            if state in ("stopped", "unhealthy", "quarantined")
            and signals.reasons.get(name) != PROVISIONING
        ]
        if not casualties:
            return None
        for entry in casualties:
            if entry[2] == "divergence":
                return entry
        return casualties[0]

    def _gate(
        self, action: Action,
    ) -> Tuple[Optional[Action], Optional[str]]:
        """Apply cooldown and one-action-in-flight to an indicated action.

        Grow and shrink check each other's cooldown as well as their
        own — one membership change per window, whatever its
        direction.  Heal only checks itself, so a casualty can still
        be repaired while a scale action cools.
        """
        if self._in_flight is not None:
            return None, "action-in-flight"
        if action.verb in ("grow", "shrink"):
            gated = ("grow", "shrink")
        else:
            gated = (action.verb,)
        now = self.clock.now()
        for verb in gated:
            until = self._verbs[verb].cooldown_until
            if until is not None and now < until:
                return None, f"cooldown:{verb}"
        return action, None

    # -- act bookkeeping -----------------------------------------------------
    def begin(self, action: Action) -> None:
        if self._in_flight is not None:
            raise FleetError(
                f"action {self._in_flight.verb!r} already in flight"
            )
        self._in_flight = action

    def complete(self, action: Action, ok: bool) -> None:
        """Land an action; the cooldown starts whether it succeeded.

        Failure is *neutral*: the supervisor rolled the fleet back to
        its prior membership, so the correct response is to wait out
        the cooldown and re-diagnose, not to retry hot.
        """
        self._in_flight = None
        state = self._verbs[action.verb]
        state.cooldown_until = (self.clock.now()
                                + self.config.cooldown_s(action.verb))

    @property
    def in_flight(self) -> Optional[Action]:
        return self._in_flight

    def cooldowns(self) -> Dict[str, Optional[float]]:
        """Remaining cooldown per verb (``None`` = not cooling)."""
        remaining: Dict[str, Optional[float]] = {}
        for verb, state in self._verbs.items():
            if state.cooldown_until is None:
                remaining[verb] = None
            else:
                remaining[verb] = max(
                    0.0, state.cooldown_until - self.clock.now()
                )
        return remaining
