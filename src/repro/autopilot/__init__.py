"""repro.autopilot — closed-loop fleet autoscaling and self-healing.

The fleet plane (:mod:`repro.fleet`) can grow, shrink and heal
replicas, but only when an operator drives it by hand.  This package
closes the loop: a :class:`FleetAutopilot` periodically *observes* the
signals the stack already exports (admission queue depth and shed
totals, router counters, per-replica lifecycle, breaker states,
live-tip overlay depth), *diagnoses* a fleet condition
(``underprovisioned`` / ``overprovisioned`` / ``unhealthy-replica`` /
``diverged`` / ``steady``), and *acts* through the
:class:`~repro.fleet.supervisor.FleetSupervisor`:

* **grow** — provision a fresh replica from a donor-store copy, resync
  it to the fleet tip, restore it into rotation.  The paper's
  mutation-free snapshot sharing is what makes this cheap: a new
  replica is a file copy plus a receipt-ordered replay, not a rebuild.
* **shrink** — mark the youngest replica draining, let its in-flight
  work finish, retire it.
* **heal** — recover a crashed replica, resync a lagging one, rebuild
  a diverged one, automatically.

Every decision passes a **hysteresis** layer — EWMA-smoothed pressure,
asymmetric scale-up/scale-down thresholds, per-verb cooldowns, min/max
replica bounds, one action in flight at a time — so a bursty storm
cannot thrash membership.  Each cycle produces one structured,
replayable :class:`AutopilotDecision` (observed signals → rule fired →
action → outcome), exposed via obs instruments, the router status
payload, and ``repro autopilot`` (run / once ``--dry-run`` / status).
"""

from __future__ import annotations

from repro.autopilot.actions import ActionExecutor
from repro.autopilot.loop import (
    AutopilotDecision,
    AutopilotRunner,
    FleetAutopilot,
    decision_log,
)
from repro.autopilot.policy import (
    Action,
    AutopilotConfig,
    AutopilotPolicy,
    Ewma,
)
from repro.autopilot.signals import FleetScraper, FleetSignals

__all__ = [
    "Action",
    "ActionExecutor",
    "AutopilotConfig",
    "AutopilotDecision",
    "AutopilotPolicy",
    "AutopilotRunner",
    "Ewma",
    "FleetAutopilot",
    "FleetScraper",
    "FleetSignals",
    "decision_log",
]
