"""Act: run one policy action through the supervisor, fail neutrally.

The executor is the only place the autopilot touches the fleet.  Every
action goes through the supervisor's existing workflows — provision,
retire, heal — which reuse the router's serialized restore/fan-out
discipline, so an action racing live ingest can never produce a
half-configured membership: the supervisor either completes the whole
workflow or rolls it back.

A failed action is reported, never raised: the loop records the
outcome, the policy starts the verb's cooldown, and the next cycle
re-diagnoses from fresh signals.  ``faults.fail_autopilot`` /
``delay_autopilot`` hook the ``autopilot:action:<verb>:<target>``
label, so chaos plans can kill exactly one action.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

from repro import faults, obs
from repro.errors import ReproError, ResyncStalledError
from repro.resilience import Deadline

from repro.autopilot.policy import Action

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.supervisor import FleetSupervisor

__all__ = ["ActionExecutor"]


class ActionExecutor:
    """Dispatch grow / shrink / heal onto a :class:`FleetSupervisor`."""

    def __init__(self, supervisor: "FleetSupervisor", *,
                 action_deadline_s: float = 30.0) -> None:
        self.supervisor = supervisor
        self.action_deadline_s = action_deadline_s

    def apply(self, action: Action) -> Dict[str, Any]:
        """Run one action; returns its outcome document (never raises)."""
        label = f"action:{action.verb}:{action.target or 'fleet'}"
        with obs.phase_span("autopilot", action.verb,
                            label=action.target or ""):
            try:
                faults.service_check("autopilot", label)
                report = self._dispatch(action)
            except ResyncStalledError as exc:
                # Partial progress is durable — the next heal/grow
                # resumes the replay from the tip already reached.
                return {"ok": False, "error": str(exc),
                        "error_type": type(exc).__name__,
                        "progress": exc.progress}
            except (ReproError, OSError) as exc:
                return {"ok": False, "error": str(exc),
                        "error_type": type(exc).__name__}
        outcome: Dict[str, Any] = {"ok": True}
        outcome.update(report)
        return outcome

    def _dispatch(self, action: Action) -> Dict[str, Any]:
        if action.verb == "grow":
            return self.supervisor.provision_replica(
                deadline=Deadline.after(self.action_deadline_s)
            )
        if action.verb == "shrink":
            return self.supervisor.retire_replica(action.target)
        if action.verb == "heal":
            if action.target is None:
                raise ReproError("heal needs a target replica")
            return self.supervisor.heal_replica(action.target)
        raise ReproError(f"unknown autopilot verb {action.verb!r}")
