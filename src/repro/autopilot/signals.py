"""Observe: one consistent snapshot of the fleet's health signals.

The scraper reads only what the stack already publishes — the router's
status document (rotation, counters, per-replica state and breaker)
and each running replica's own status (admission queue totals) — so
the autopilot sees exactly what an operator watching the dashboards
would see.  A scrape is a read: it never mutates the fleet.

Fault injection: every network read is preceded by
``faults.service_check("autopilot", "scrape:<target>")``, so a chaos
plan can fail exactly one scrape.  A failed *router* scrape raises
(there is nothing to diagnose from); a failed *replica* scrape is
recorded in ``scrape_errors`` and the cycle proceeds on partial data —
a replica that cannot answer status is precisely the kind the loop
exists to notice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro import faults
from repro.errors import ReproError
from repro.obs.clock import Clock, MonotonicClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.supervisor import FleetSupervisor

__all__ = ["FleetScraper", "FleetSignals"]


@dataclass(frozen=True)
class FleetSignals:
    """One observed snapshot of the fleet, as the policy consumes it."""

    at: float
    #: Replica name → lifecycle state; ``stopped`` for a replica the
    #: supervisor owns but whose process is not running.
    states: Dict[str, str] = field(default_factory=dict)
    #: Replica name → why it left rotation (``None`` while in it).
    reasons: Dict[str, Optional[str]] = field(default_factory=dict)
    fleet_version: Optional[int] = None
    overlay_depth: int = 0
    #: Router lifetime counters (the policy works on deltas).
    answered: int = 0
    shed: int = 0
    errors: int = 0
    #: Admission totals summed over the replicas that answered status.
    queue_depth: int = 0
    queue_high_water: int = 0
    shed_by_reason: Dict[str, int] = field(default_factory=dict)
    breakers_open: int = 0
    scrape_errors: Tuple[str, ...] = ()

    @property
    def total_replicas(self) -> int:
        return len(self.states)

    @property
    def ready_replicas(self) -> int:
        return sum(1 for state in self.states.values() if state == "ready")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "states": dict(self.states),
            "reasons": dict(self.reasons),
            "fleet_version": self.fleet_version,
            "overlay_depth": self.overlay_depth,
            "answered": self.answered,
            "shed": self.shed,
            "errors": self.errors,
            "queue_depth": self.queue_depth,
            "queue_high_water": self.queue_high_water,
            "shed_by_reason": dict(self.shed_by_reason),
            "breakers_open": self.breakers_open,
            "scrape_errors": list(self.scrape_errors),
        }


class FleetScraper:
    """Collect :class:`FleetSignals` from a supervised fleet."""

    def __init__(self, supervisor: "FleetSupervisor", *,
                 clock: Optional[Clock] = None) -> None:
        self.supervisor = supervisor
        self.clock = clock or MonotonicClock()

    def scrape(self) -> FleetSignals:
        faults.service_check("autopilot", "scrape:router")
        status = self.supervisor.fleet_status()
        fleet = status.get("fleet", {})
        server = status.get("server", {})
        router_view: Dict[str, Any] = fleet.get("replicas", {})

        states: Dict[str, str] = {}
        reasons: Dict[str, Optional[str]] = {}
        breakers_open = 0
        for name, doc in router_view.items():
            states[name] = str(doc.get("state", "unhealthy"))
            reasons[name] = doc.get("reason")
            if doc.get("breaker", {}).get("state") == "open":
                breakers_open += 1
        # The supervisor knows about processes the router only infers:
        # a crashed replica still shows a (stale) router entry, but its
        # runner is gone — that is the signal heal acts on.
        for name, managed in self.supervisor.replicas.items():
            if not managed.running:
                states[name] = "stopped"
                reasons.setdefault(name, None)

        queue_depth = 0
        queue_high_water = 0
        shed_by_reason: Dict[str, int] = {}
        scrape_errors = []
        for name, managed in self.supervisor.replicas.items():
            if not managed.running:
                continue
            try:
                faults.service_check("autopilot", f"scrape:{name}")
                with self.supervisor.replica_client(name) as client:
                    replica_status = client.status()
            except (ReproError, OSError) as exc:
                scrape_errors.append(f"{name}: {exc}")
                continue
            totals = replica_status.get("admission", {}).get("totals", {})
            queue_depth += int(totals.get("waiting", 0))
            queue_high_water = max(queue_high_water,
                                   int(totals.get("max_depth", 0)))
            for reason, count in totals.get("shed", {}).items():
                shed_by_reason[reason] = (shed_by_reason.get(reason, 0)
                                          + int(count))

        return FleetSignals(
            at=self.clock.now(),
            states=states,
            reasons=reasons,
            fleet_version=fleet.get("fleet_version"),
            overlay_depth=int(fleet.get("fleet_overlay_depth", 0)),
            answered=int(server.get("answered", 0)),
            shed=int(server.get("shed", 0)),
            errors=int(server.get("errors", 0)),
            queue_depth=queue_depth,
            queue_high_water=queue_high_water,
            shed_by_reason=shed_by_reason,
            breakers_open=breakers_open,
            scrape_errors=tuple(scrape_errors),
        )
