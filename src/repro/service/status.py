"""Machine-readable store/decomposition summaries.

One payload shape serves two consumers: ``python -m repro info --json``
prints it for scripts, and the query service returns it (augmented with
window / epoch / cache counters) as its ``status`` response — so a
health check and an offline audit read the same fields.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.common import CommonGraphDecomposition
from repro.evolving.snapshots import EvolvingGraph
from repro.evolving.store import SnapshotStore

__all__ = ["store_summary"]


def store_summary(
    store: SnapshotStore,
    evolving: Optional[EvolvingGraph] = None,
    decomposition: Optional[CommonGraphDecomposition] = None,
) -> Dict[str, Any]:
    """Summarise a store (and optionally its decomposition) as a dict.

    Callers that already hold the evolving graph or the decomposition
    pass them in to avoid a re-load; otherwise both are materialised
    from the store.
    """
    if evolving is None:
        evolving = store.load()
    if decomposition is None:
        decomposition = CommonGraphDecomposition.from_evolving(evolving)
    base_size = len(evolving.snapshot_edges(0))
    batch_sizes = [batch.size for batch in evolving.batches]
    common_size = len(decomposition.common)
    return {
        "name": store.name,
        "directory": str(store.directory),
        "format_version": store.format_version,
        "num_vertices": store.num_vertices,
        "num_snapshots": store.num_snapshots,
        "base_edges": base_size,
        "updates_total": sum(batch_sizes),
        "batch_size_min": min(batch_sizes) if batch_sizes else 0,
        "batch_size_max": max(batch_sizes) if batch_sizes else 0,
        "common_edges": common_size,
        "common_share_of_base": round(common_size / max(base_size, 1), 4),
        "direct_hop_additions": decomposition.total_direct_hop_additions(),
        "storage_edges": decomposition.storage_edges(),
        "snapshot_storage_edges": decomposition.snapshot_storage_edges(),
    }
