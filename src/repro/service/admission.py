"""Admission control: bounded concurrency and queueing per request class.

Before this layer the server accepted every connection and queued every
request without limit — a burst did not fail, it just grew the event
loop's backlog until latency (or memory) blew up.  Admission control
makes the capacity explicit:

* each request class (``query`` / ``ingest`` / ``live``) owns an
  :class:`asyncio.Semaphore` of execution slots and a **bounded waiting
  room**; a request that finds the room full is *shed* immediately with
  :class:`~repro.errors.ServiceOverloadedError` and a ``retry_after_ms``
  hint instead of being buffered;
* a waiting request carries its :class:`~repro.resilience.Deadline`
  into the queue — it is shed when the class's ``queue_timeout`` or its
  own remaining budget runs out, whichever is sooner, so queue time is
  always charged against the request's end-to-end budget;
* at drain time the controller sheds every not-yet-admitted request
  with reason ``"draining"`` so the server can finish in-flight work
  and stop.

Counters (admitted, shed-by-reason, high-water queue depth) are kept
under a plain lock so the metrics scrape thread can read a consistent
snapshot while the event loop mutates; the scrape-time collector lives
in the server, which owns the observability registration.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro import obs
from repro.errors import DeadlineExceededError, ServiceOverloadedError
from repro.resilience import Deadline

__all__ = ["AdmissionController", "AdmissionPolicy", "SHED_REASONS"]

#: Every reason an admission can be refused with (label set of the
#: ``repro_admission_shed_total`` counter).
SHED_REASONS = ("queue_full", "timeout", "draining")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounds for one request class.

    ``max_concurrent`` execution slots, at most ``max_queue`` requests
    waiting for a slot, and at most ``queue_timeout`` seconds of
    waiting before the request is shed.
    """

    max_concurrent: int = 8
    max_queue: int = 64
    queue_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.queue_timeout < 0:
            raise ValueError("queue_timeout must be >= 0")

    def retry_after_ms(self) -> int:
        """The hint shipped with a shed response: half the queue budget.

        By then roughly half the waiting room has drained (waiters are
        admitted or shed within ``queue_timeout``), so an immediate
        retry storm is spread out without a caller waiting longer than
        the service's own queue discipline would have.
        """
        return max(1, int(self.queue_timeout * 1000) // 2)


class _Gate:
    """One request class: slots, waiting room, and shed accounting."""

    def __init__(self, kind: str, policy: AdmissionPolicy) -> None:
        self.kind = kind
        self.policy = policy
        self._semaphore = asyncio.Semaphore(policy.max_concurrent)
        # The event loop mutates, the metrics scrape thread reads.
        self._lock = threading.Lock()
        self.waiting = 0  # guarded-by: _lock
        self.active = 0  # guarded-by: _lock
        self.admitted = 0  # guarded-by: _lock
        self.max_depth = 0  # guarded-by: _lock
        self.shed: Dict[str, int] = dict.fromkeys(SHED_REASONS, 0)  # guarded-by: _lock

    def _shed(self, reason: str, what: str) -> ServiceOverloadedError:
        with self._lock:
            self.shed[reason] += 1
        obs.counter_inc("repro_admission_shed_total",
                        kind=self.kind, reason=reason)
        hint = 0 if reason == "draining" else self.policy.retry_after_ms()
        return ServiceOverloadedError(
            f"{self.kind} admission shed {what} ({reason}); "
            f"retry after {hint}ms",
            retry_after_ms=hint,
        )

    async def acquire(self, deadline: Deadline, *, draining: bool,
                      what: str = "request") -> None:
        """Take one execution slot or raise the appropriate refusal.

        Raises :class:`ServiceOverloadedError` when the waiting room is
        full, the class queue timeout expires, or the service is
        draining; raises :class:`DeadlineExceededError` when the
        request's own budget dies while it queues.
        """
        if draining:
            raise self._shed("draining", what)
        # The waiting room only fills when no slot is free: with a free
        # slot the acquire below returns immediately, so even
        # ``max_queue=0`` admits up to ``max_concurrent`` requests.
        blocked = self._semaphore.locked()
        with self._lock:
            if blocked and self.waiting >= self.policy.max_queue:
                queue_full = True
            else:
                queue_full = False
                self.waiting += 1
                self.max_depth = max(self.max_depth, self.waiting)
        if queue_full:
            raise self._shed("queue_full", what)
        try:
            budget: Optional[float] = self.policy.queue_timeout
            remaining = deadline.remaining()
            if remaining is not None:
                budget = min(budget, remaining)
            try:
                await asyncio.wait_for(self._semaphore.acquire(),
                                       timeout=budget)
            except asyncio.TimeoutError:
                if deadline.expired():
                    raise DeadlineExceededError(
                        f"deadline expired while {what} queued for a "
                        f"{self.kind} slot"
                    ) from None
                raise self._shed("timeout", what) from None
        finally:
            with self._lock:
                self.waiting -= 1
        with self._lock:
            self.active += 1
            self.admitted += 1

    def release(self) -> None:
        with self._lock:
            self.active -= 1
        self._semaphore.release()

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "max_concurrent": self.policy.max_concurrent,
                "max_queue": self.policy.max_queue,
                "queue_timeout": self.policy.queue_timeout,
                "waiting": self.waiting,
                "active": self.active,
                "admitted": self.admitted,
                "max_depth": self.max_depth,
                "shed": dict(self.shed),
            }


class AdmissionController:
    """Separate bounded lanes for queries, ingests, and live updates.

    Use as an async context manager factory::

        async with admission.slot("query", deadline, what=label):
            ...  # holds one query execution slot

    The ``live`` lane serves single-edge ``update`` requests: one
    execution slot (updates are serialised through the overlay lock
    anyway, so extra slots would only hide queueing in lock
    contention) but a deep waiting room with a short timeout — a
    per-update stream is high-rate and each item is sub-millisecond,
    so depth is cheap and staleness is not.

    The controller itself never blocks the event loop: queue waits are
    ``asyncio.Semaphore`` acquisitions under ``asyncio.wait_for``.
    """

    def __init__(self, *, query: Optional[AdmissionPolicy] = None,
                 ingest: Optional[AdmissionPolicy] = None,
                 live: Optional[AdmissionPolicy] = None) -> None:
        self._gates: Dict[str, _Gate] = {
            "query": _Gate("query", query or AdmissionPolicy()),
            "ingest": _Gate("ingest", ingest or AdmissionPolicy(
                max_concurrent=1, max_queue=32, queue_timeout=10.0,
            )),
            "live": _Gate("live", live or AdmissionPolicy(
                max_concurrent=1, max_queue=256, queue_timeout=2.0,
            )),
        }
        self._draining = False  # event-loop-confined; read-only elsewhere

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        """From now on every not-yet-admitted request is shed."""
        self._draining = True

    def gate(self, kind: str) -> _Gate:
        try:
            return self._gates[kind]
        except KeyError:
            raise ServiceOverloadedError(
                f"unknown admission class {kind!r}"
            ) from None

    def slot(self, kind: str, deadline: Deadline,
             what: str = "request") -> "_Slot":
        """An async context manager holding one ``kind`` execution slot."""
        return _Slot(self, kind, deadline, what)

    def total_shed(self) -> int:
        return sum(
            sum(gate.shed.values()) for gate in self._gates.values()
        )

    def snapshot(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            kind: gate.snapshot() for kind, gate in self._gates.items()
        }
        payload["draining"] = self._draining
        # Cross-lane aggregate for control loops (the autopilot scrapes
        # one pressure number per replica, not one per lane).
        gates = [payload[kind] for kind in self._gates]
        shed_by_reason: Dict[str, int] = {}
        for gate in gates:
            for reason, count in gate["shed"].items():
                shed_by_reason[reason] = shed_by_reason.get(reason, 0) + count
        payload["totals"] = {
            "waiting": sum(gate["waiting"] for gate in gates),
            "active": sum(gate["active"] for gate in gates),
            "admitted": sum(gate["admitted"] for gate in gates),
            "max_depth": max(gate["max_depth"] for gate in gates),
            "shed": shed_by_reason,
        }
        return payload


class _Slot:
    """The ticket: acquire on ``__aenter__``, release on ``__aexit__``."""

    __slots__ = ("_controller", "_kind", "_deadline", "_what", "_held")

    def __init__(self, controller: AdmissionController, kind: str,
                 deadline: Deadline, what: str) -> None:
        self._controller = controller
        self._kind = kind
        self._deadline = deadline
        self._what = what
        self._held = False

    async def __aenter__(self) -> "_Slot":
        gate = self._controller.gate(self._kind)
        await gate.acquire(self._deadline,
                           draining=self._controller.draining,
                           what=self._what)
        self._held = True
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._held:
            self._held = False
            self._controller.gate(self._kind).release()
