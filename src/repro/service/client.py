"""A small blocking client for the query service.

Used by the ``python -m repro query`` subcommand, the tests and the
benchmarks.  One socket, JSON lines both ways; every request blocks for
its response (the server supports pipelining, the client keeps it
simple).

Overload handling: when the server sheds a request (``"overloaded":
true`` with a ``retry_after_ms`` hint) the client raises
:class:`~repro.errors.ServiceOverloadedError` — but ``query`` and
``ingest`` first retry up to ``overload_retries`` times, sleeping a
*jittered* fraction of the server's hint (capped by
``max_retry_sleep``).  The jitter RNG is seeded, so tests replay the
exact backoff schedule; the jitter itself keeps a fleet of shed clients
from re-arriving as one synchronised stampede.

Connection handling: a dropped TCP connection (refused connect, reset
mid-write, server gone mid-read) is retried with a fresh connection up
to ``reconnect_attempts`` times, sleeping a capped jittered backoff
between attempts; exhaustion raises
:class:`~repro.errors.ServiceUnavailableError`.  This is at-least-once
delivery — a request that died after the server read it may execute
twice on resend — which is safe for the idempotent operations this
client speaks (queries re-answer, a duplicate ingest is rejected by
batch validation rather than applied twice).  A response *timeout* is
deliberately not retried: the request may still be executing, and only
the caller knows whether resending is safe.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import (
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.service import protocol

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking JSON-lines client; usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7421,
                 timeout: Optional[float] = 30.0, *,
                 overload_retries: int = 2,
                 max_retry_sleep: float = 1.0,
                 reconnect_attempts: int = 2,
                 reconnect_backoff: float = 0.05,
                 seed: int = 0) -> None:
        if overload_retries < 0:
            raise ValueError("overload_retries must be >= 0")
        if max_retry_sleep < 0:
            raise ValueError("max_retry_sleep must be >= 0")
        if reconnect_attempts < 0:
            raise ValueError("reconnect_attempts must be >= 0")
        if reconnect_backoff < 0:
            raise ValueError("reconnect_backoff must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.overload_retries = overload_retries
        self.max_retry_sleep = max_retry_sleep
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_backoff = reconnect_backoff
        self._rng = random.Random(seed)
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection -----------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw requests -----------------------------------------------------------
    def request(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, return its (raw) response document.

        A dropped connection (at connect, write or read) is retried on
        a fresh connection up to ``reconnect_attempts`` times with a
        capped jittered backoff; exhaustion raises
        :class:`ServiceUnavailableError`.  A response timeout is not
        retried (the request may still be executing server-side) and
        propagates as-is after dropping the now-desynchronised
        connection.
        """
        attempts = self.reconnect_attempts + 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            try:
                self.connect()
                assert self._file is not None
                self._file.write(protocol.encode_line(doc))
                self._file.flush()
                line = self._file.readline()
            except TimeoutError:
                # The server may still answer this request later; the
                # connection is desynchronised either way, and a resend
                # could execute the operation twice.  Drop the socket
                # and let the caller decide.
                self.close()
                raise
            except (ConnectionError, OSError) as exc:
                self.close()
                last_error = exc
                if attempt + 1 < attempts:
                    self._reconnect_sleep(attempt)
                continue
            if not line:
                # The server closed the connection without answering —
                # indistinguishable from a reset for our purposes.
                self.close()
                last_error = ServiceError("connection closed by server")
                if attempt + 1 < attempts:
                    self._reconnect_sleep(attempt)
                continue
            return protocol.decode_line(line)
        raise ServiceUnavailableError(
            f"service at {self.host}:{self.port} unreachable after "
            f"{attempts} attempt(s): {last_error}"
        ) from last_error

    def _reconnect_sleep(self, attempt: int) -> None:
        """Capped, jittered exponential backoff between reconnects."""
        delay = min(self.reconnect_backoff * (2 ** attempt),
                    self.max_retry_sleep)
        time.sleep(delay * (0.5 + self._rng.random() / 2))

    def request_ok(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`request`, raising :class:`ServiceError` on errors.

        A shed response becomes :class:`ServiceOverloadedError` carrying
        the server's ``retry_after_ms`` hint so callers can back off.
        """
        response = self.request(doc)
        if not response.get("ok"):
            message = (f"{response.get('error_type', 'error')}: "
                       f"{response.get('error', 'unknown service error')}")
            if response.get("overloaded"):
                raise ServiceOverloadedError(
                    message,
                    retry_after_ms=int(response.get("retry_after_ms", 0)),
                )
            raise ServiceError(message)
        return response

    def _request_retrying_overload(self,
                                   doc: Dict[str, Any]) -> Dict[str, Any]:
        """``request_ok`` with overload retries honouring the hint."""
        for attempt in range(self.overload_retries + 1):
            try:
                return self.request_ok(doc)
            except ServiceOverloadedError as exc:
                if attempt == self.overload_retries:
                    raise
                self._overload_sleep(exc.retry_after_ms)
        raise AssertionError("unreachable")  # pragma: no cover

    def _overload_sleep(self, retry_after_ms: int) -> None:
        """Sleep 50–100% of the hint, never longer than the cap."""
        hint = max(retry_after_ms, 1) / 1000.0
        jittered = hint * (0.5 + self._rng.random() / 2)
        time.sleep(min(jittered, self.max_retry_sleep))

    # -- typed operations ---------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request_ok({"op": "ping"}).get("ok"))

    def status(self) -> Dict[str, Any]:
        return self.request_ok({"op": "status"})

    def shutdown(self) -> None:
        self.request_ok({"op": "shutdown"})
        self.close()

    def query(
        self,
        algorithm: str,
        source: int,
        first: Optional[int] = None,
        last: Optional[int] = None,
        timeout_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Run a range query; ``values`` is decoded to float64 arrays.

        ``timeout_ms`` ships the client's end-to-end budget to the
        server, which charges admission queueing, retries and execution
        against it as one deadline.
        """
        doc: Dict[str, Any] = {
            "op": "query", "algorithm": algorithm, "source": source,
        }
        if first is not None:
            doc["first"] = first
        if last is not None:
            doc["last"] = last
        if timeout_ms is not None:
            doc["timeout_ms"] = timeout_ms
        # Face-invalid ranges (negative, reversed) die here with a
        # ProtocolError, before a socket is even opened.
        protocol.validate_request(doc)
        response = self._request_retrying_overload(doc)
        response["values"] = self.decode_values(response.get("values", []))
        return response

    def temporal(
        self,
        algorithm: str,
        source: int,
        queries: Any,
        timeout_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Run a temporal batch; ``results`` is decoded to NumPy arrays.

        ``queries`` is one spec dict or a list of them (see
        ``docs/temporal.md`` for the vocabulary).  The batch is
        validated client-side first, so a malformed spec raises
        :class:`ProtocolError` without touching the server.
        """
        from repro.temporal.timeline import decode_results

        if isinstance(queries, dict):
            queries = [queries]
        doc: Dict[str, Any] = {
            "op": "temporal", "algorithm": algorithm, "source": source,
            "queries": queries,
        }
        if timeout_ms is not None:
            doc["timeout_ms"] = timeout_ms
        protocol.validate_request(doc)
        response = self._request_retrying_overload(doc)
        response["results"] = decode_results(response.get("results", []))
        return response

    def ingest(
        self,
        additions: Optional[List[List[int]]] = None,
        deletions: Optional[List[List[int]]] = None,
        timeout_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "op": "ingest",
            "additions": additions or [],
            "deletions": deletions or [],
        }
        if timeout_ms is not None:
            doc["timeout_ms"] = timeout_ms
        return self._request_retrying_overload(doc)

    def update(
        self,
        kind: str,
        u: Optional[int] = None,
        v: Optional[int] = None,
        timeout_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One single-edge live-tip update (or an explicit ``compact``).

        ``kind`` is ``"insert"`` / ``"delete"`` with an ``(u, v)`` edge,
        or ``"compact"`` with no edge to force the pending update log
        into a durable batch.  The receipt carries the overlay ``seq``,
        ``tip_version`` and ``overlay_depth`` the update landed at.

        Unlike ``ingest``, a shed update is retried client-side only —
        the server never retries it — so an applied insert is never
        re-sent into the overlay's already-present validation.
        """
        doc: Dict[str, Any] = {"op": "update", "kind": kind}
        if u is not None or v is not None:
            doc["edge"] = [u, v]
        if timeout_ms is not None:
            doc["timeout_ms"] = timeout_ms
        # Malformed kinds/edges die here, before a socket is opened.
        protocol.validate_request(doc)
        return self._request_retrying_overload(doc)

    @staticmethod
    def decode_values(encoded: Any) -> List[np.ndarray]:
        if not isinstance(encoded, list):
            raise ProtocolError("query response carries no value vectors")
        return protocol.decode_values(encoded)

    def __repr__(self) -> str:
        state = "connected" if self._sock is not None else "disconnected"
        return f"ServiceClient({self.host}:{self.port}, {state})"
