"""A small blocking client for the query service.

Used by the ``python -m repro query`` subcommand, the tests and the
benchmarks.  One socket, JSON lines both ways; every request blocks for
its response (the server supports pipelining, the client keeps it
simple).
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ProtocolError, ServiceError
from repro.service import protocol

__all__ = ["ServiceClient"]


class ServiceClient:
    """Blocking JSON-lines client; usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7421,
                 timeout: Optional[float] = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection -----------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw requests -----------------------------------------------------------
    def request(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, return its (raw) response document."""
        self.connect()
        assert self._file is not None
        self._file.write(protocol.encode_line(doc))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("connection closed by server")
        return protocol.decode_line(line)

    def request_ok(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Like :meth:`request`, raising :class:`ServiceError` on errors."""
        response = self.request(doc)
        if not response.get("ok"):
            raise ServiceError(
                f"{response.get('error_type', 'error')}: "
                f"{response.get('error', 'unknown service error')}"
            )
        return response

    # -- typed operations ---------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request_ok({"op": "ping"}).get("ok"))

    def status(self) -> Dict[str, Any]:
        return self.request_ok({"op": "status"})

    def shutdown(self) -> None:
        self.request_ok({"op": "shutdown"})
        self.close()

    def query(
        self,
        algorithm: str,
        source: int,
        first: Optional[int] = None,
        last: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Run a range query; ``values`` is decoded to float64 arrays."""
        doc: Dict[str, Any] = {
            "op": "query", "algorithm": algorithm, "source": source,
        }
        if first is not None:
            doc["first"] = first
        if last is not None:
            doc["last"] = last
        response = self.request_ok(doc)
        response["values"] = self.decode_values(response.get("values", []))
        return response

    def ingest(
        self,
        additions: Optional[List[List[int]]] = None,
        deletions: Optional[List[List[int]]] = None,
    ) -> Dict[str, Any]:
        return self.request_ok({
            "op": "ingest",
            "additions": additions or [],
            "deletions": deletions or [],
        })

    @staticmethod
    def decode_values(encoded: Any) -> List[np.ndarray]:
        if not isinstance(encoded, list):
            raise ProtocolError("query response carries no value vectors")
        return protocol.decode_values(encoded)

    def __repr__(self) -> str:
        state = "connected" if self._sock is not None else "disconnected"
        return f"ServiceClient({self.host}:{self.port}, {state})"
