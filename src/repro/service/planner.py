"""The memoizing query planner: work-sharing with cross-query reuse.

The offline :class:`~repro.core.engine.WorkSharingEvaluator` shares
interior-ICG states *within* one query.  The planner extends that
sharing *across* queries: the converged :class:`VertexState` at every
Triangular-Grid node visited by a schedule is cached, keyed by
``(algorithm, source, epoch, node)`` in window coordinates, so a later
query whose schedule passes through a cached node resumes from it —
no static recompute at the window root, no re-streaming of the path
above the node.

Correctness rests on the same fixpoint property as the paper's
evaluators: for a monotonic algorithm, the converged state on
``ICG(i, j)`` from a given source is *unique*, regardless of which
ancestor state the incremental computation started from.  A resumed
walk therefore produces values bit-identical to a cold one (the
service's end-to-end test asserts exactly this against the offline
evaluator).

The overlay used to push from a cached node is rebuilt as
``common CSR + one Δ CSR of the node's interval surplus`` — the same
edge set the offline evaluator reaches through its accumulated Δ chain,
each edge appearing exactly once either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.algorithms.base import MonotonicAlgorithm
from repro.core.common import CommonGraphDecomposition
from repro.core.steiner import build_schedule
from repro.core.triangular_grid import Interval, TriangularGrid
from repro.graph.overlay import OverlayGraph
from repro.graph.weights import UnitWeights, WeightFn
from repro.kickstarter.engine import (
    VertexState,
    incremental_additions,
    static_compute,
)
from repro.service.cache import LRUCache

__all__ = ["MemoizingPlanner", "PlannedAnswer"]

#: Cache key of a converged state at a TG node, in window coordinates.
NodeKey = Tuple[str, int, int, Interval]


@dataclass
class PlannedAnswer:
    """One planned evaluation: per-snapshot values plus reuse accounting."""

    values: List[np.ndarray] = field(default_factory=list)
    additions_processed: int = 0
    stabilisations: int = 0
    node_hits: int = 0
    node_misses: int = 0
    #: The node the walk actually started from ((first, last)-relative).
    start_node: Optional[Interval] = None


class MemoizingPlanner:
    """Plans and executes range queries against a node-state cache.

    The planner itself is stateless between calls apart from the shared
    ``node_cache``; the caller (the service state) owns epochs and the
    full-result cache.
    """

    def __init__(
        self,
        node_cache: LRUCache,
        weight_fn: Optional[WeightFn] = None,
    ) -> None:
        self.node_cache = node_cache
        self.weight_fn: WeightFn = (
            weight_fn if weight_fn is not None else UnitWeights()
        )

    # -- key helpers --------------------------------------------------------
    @staticmethod
    def node_key(
        algorithm: str, source: int, epoch: int, node: Interval
    ) -> NodeKey:
        return (algorithm, source, epoch, node)

    # -- execution ----------------------------------------------------------
    def evaluate(
        self,
        decomposition: CommonGraphDecomposition,
        algorithm: MonotonicAlgorithm,
        source: int,
        first: int,
        last: int,
        epoch: int,
    ) -> PlannedAnswer:
        """Answer ``algorithm`` from ``source`` on snapshots ``first..last``.

        ``first``/``last`` are indices into ``decomposition`` (the
        service window); cache keys carry the same coordinates plus the
        epoch, so entries die with the decomposition that produced them.
        """
        with obs.phase_span("planner", "evaluate",
                            label=f"{algorithm.name}:{source}",
                            first=first, last=last, epoch=epoch) as plan_span:
            answer = self._evaluate(
                decomposition, algorithm, source, first, last, epoch
            )
            plan_span.annotate(node_hits=answer.node_hits,
                               node_misses=answer.node_misses)
        return answer

    def _evaluate(
        self,
        decomposition: CommonGraphDecomposition,
        algorithm: MonotonicAlgorithm,
        source: int,
        first: int,
        last: int,
        epoch: int,
    ) -> PlannedAnswer:
        window = decomposition.restrict(first, last)
        grid = TriangularGrid(window)
        schedule = build_schedule(grid, "work-sharing")
        answer = PlannedAnswer()
        alg_name = algorithm.name

        def key(node: Interval) -> NodeKey:
            return self.node_key(
                alg_name, source, epoch,
                (first + node[0], first + node[1]),
            )

        base_csr = window.common_csr(self.weight_fn)

        def overlay_for(node: Interval) -> OverlayGraph:
            surplus = window.interval_surplus(*node)
            if not surplus:
                return OverlayGraph(base_csr)
            return OverlayGraph(
                base_csr, (window.delta_csr(surplus, self.weight_fn),)
            )

        # Root state: cached, or one static compute on the window's ICG.
        root = schedule.root
        with obs.phase_span("planner", "root") as root_span:
            root_state = self.node_cache.get(key(root))
            if root_state is None:
                answer.node_misses += 1
                root_span.annotate(cache="miss")
                root_state = static_compute(base_csr, algorithm, source,
                                            mode="sync")
                self.node_cache.put(key(root), root_state)
            else:
                answer.node_hits += 1
                root_span.annotate(cache="hit")
        answer.start_node = (first + root[0], first + root[1])

        values_by_snapshot: Dict[int, np.ndarray] = {}
        states: Dict[Interval, VertexState] = {root: root_state}
        lo, hi = root
        if lo == hi:
            values_by_snapshot[lo] = root_state.values

        # schedule.edges() yields parents before children, so a state is
        # always available (computed or cached) when its child streams.
        for parent, child in schedule.edges():
            with obs.phase_span(
                "planner", "edge", label=f"{child[0]}-{child[1]}",
            ) as edge_span:
                cached = self.node_cache.get(key(child))
                if cached is not None:
                    answer.node_hits += 1
                    edge_span.annotate(cache="hit")
                    states[child] = cached
                else:
                    answer.node_misses += 1
                    edge_span.annotate(cache="miss")
                    batch = grid.label(parent, child)
                    state = states[parent].copy()
                    src, dst = batch.arrays()
                    incremental_additions(
                        overlay_for(child), algorithm, state,
                        src, dst, self.weight_fn(src, dst),
                    )
                    answer.additions_processed += len(batch)
                    answer.stabilisations += 1
                    self.node_cache.put(key(child), state)
                    states[child] = state
            lo, hi = child
            if lo == hi:
                values_by_snapshot[lo] = states[child].values

        answer.values = [
            values_by_snapshot[i].copy() for i in range(window.num_snapshots)
        ]
        return answer
