"""Bounded, thread-safe LRU caches for the query service.

Two caches share this machinery:

* the **result cache** memoises full query answers keyed by
  ``(algorithm, source, first, last, epoch)``;
* the **node-state cache** memoises converged :class:`VertexState`
  objects at Triangular-Grid nodes, keyed by
  ``(algorithm, source, epoch, (i, j))`` — this is what lets a query
  over an overlapping range resume from another query's interior work.

Both keys embed the decomposition *epoch*: every ingest or window
slide bumps it, so entries from a superseded decomposition can never be
returned.  Stale-epoch entries are also purged eagerly
(:meth:`LRUCache.purge`) to free memory immediately rather than waiting
for LRU pressure.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["CacheStats", "LRUCache"]


@dataclass
class CacheStats:
    """Counters for one cache; cheap enough to sample on every status call."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A small thread-safe LRU map with observable statistics.

    ``copy_in`` / ``copy_out`` (optional) defensively copy values on
    insert and on hit — the planner mutates states in place, so cached
    arrays must never alias live ones.
    """

    def __init__(
        self,
        max_entries: int,
        copy_in: Optional[Callable[[Any], Any]] = None,
        copy_out: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._copy_in = copy_in
        self._copy_out = copy_out
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (most-recently-used afterwards), or ``None``."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return self._copy_out(value) if self._copy_out else value

    def put(self, key: Hashable, value: Any) -> None:
        if self._copy_in:
            value = self._copy_in(value)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def purge(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key matches; returns the count dropped."""
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> int:
        return self.purge(lambda _key: True)

    def keys(self) -> Tuple[Hashable, ...]:
        with self._lock:
            return tuple(self._entries)

    def __repr__(self) -> str:
        return (f"LRUCache({len(self)}/{self.max_entries} entries, "
                f"hit_rate={self.stats.hit_rate:.2f})")
