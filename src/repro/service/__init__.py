"""Live evolving-graph query service.

A long-lived serving layer over a :class:`~repro.evolving.store.SnapshotStore`:

* :mod:`repro.service.state` — :class:`ServiceState`: ingestion with
  *incremental* CommonGraph/Triangular-Grid maintenance, a sliding
  window over the last W snapshots, and epoch bookkeeping;
* :mod:`repro.service.cache` — bounded LRU caches for full query
  results and per-ICG-node converged states;
* :mod:`repro.service.planner` — the memoizing work-sharing planner
  that shares interior-ICG states across queries;
* :mod:`repro.service.admission` — bounded admission lanes that shed
  load explicitly instead of queueing without limit;
* :mod:`repro.service.server` — the asyncio JSON-lines front end
  (request coalescing, deadlines, circuit breakers, graceful
  degradation and drain);
* :mod:`repro.service.client` — a small blocking client;
* :mod:`repro.service.status` — the machine-readable store/service
  summary shared with ``python -m repro info --json``.

See ``docs/service.md`` for the protocol and the cache/epoch semantics.
"""

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.cache import CacheStats, LRUCache
from repro.service.client import ServiceClient
from repro.service.planner import MemoizingPlanner, PlannedAnswer
from repro.service.server import GraphService, ServiceConfig, ServiceRunner
from repro.service.state import QueryAnswer, ServiceState
from repro.service.status import store_summary

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "CacheStats",
    "GraphService",
    "LRUCache",
    "MemoizingPlanner",
    "PlannedAnswer",
    "QueryAnswer",
    "ServiceClient",
    "ServiceConfig",
    "ServiceRunner",
    "ServiceState",
    "store_summary",
]
