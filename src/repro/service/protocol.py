"""The service wire protocol: JSON lines over a byte stream.

One request per line, one response per line, UTF-8 JSON with no
embedded newlines — trivially debuggable with ``nc`` and stdlib-only on
both ends.  Requests carry an ``op`` plus op-specific fields and an
optional client-chosen ``id`` that is echoed back, so a client may
pipeline requests and match responses.

Operations::

    {"op": "ping"}
    {"op": "status"}
    {"op": "query", "algorithm": "SSSP", "source": 3,
     "first": 2, "last": 5}            # first/last optional => window
    {"op": "temporal", "algorithm": "SSSP", "source": 3,
     "queries": [{"mode": "timeline", "vertex": 7}, ...]}
    {"op": "ingest", "additions": [[u, v], ...],
     "deletions": [[u, v], ...]}
    {"op": "update", "kind": "insert", "edge": [u, v]}
    {"op": "update", "kind": "compact"}   # force a live-tip fold
    {"op": "shutdown"}

Query, temporal and ingest requests may carry an optional ``timeout_ms`` — the
client's end-to-end budget for the request, capped server-side by the
configured ``request_timeout``.

Responses are ``{"ok": true, ...payload}`` or ``{"ok": false,
"error": "...", "error_type": "..."}``; query responses additionally
carry ``outcome`` (``"ok"`` / ``"retried"`` / ``"degraded"``) following
the :class:`~repro.core.parallel.TaskOutcome` vocabulary, and
``values`` as one list of per-vertex floats per snapshot
(non-finite values are encoded as strings ``"inf"`` / ``"-inf"`` since
JSON has no infinities).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.evolving.delta import DeltaBatch
from repro.graph.edgeset import EdgeSet

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "UPDATE_WIRE_KINDS",
    "decode_line",
    "decode_values",
    "encode_line",
    "encode_values",
    "parse_edge_pairs",
    "parse_ingest_batch",
    "parse_update",
    "validate_request",
]

#: Hard cap on one protocol line; a longer line is a malformed request.
MAX_LINE_BYTES = 64 * 1024 * 1024

OPS = ("ping", "status", "query", "temporal", "ingest", "update",
       "shutdown")

_QUERY_FIELDS = {"op", "id", "algorithm", "source", "first", "last",
                 "timeout_ms"}
_TEMPORAL_FIELDS = {"op", "id", "algorithm", "source", "queries",
                    "timeout_ms"}
_INGEST_FIELDS = {"op", "id", "additions", "deletions", "timeout_ms"}
_UPDATE_FIELDS = {"op", "id", "kind", "edge", "timeout_ms"}

#: ``update`` verbs: single-edge mutations plus the explicit fold.
UPDATE_WIRE_KINDS = ("insert", "delete", "compact")


def encode_line(message: Dict[str, Any]) -> bytes:
    """One JSON-lines frame (compact separators, trailing newline)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on malformed input."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"malformed JSON line: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("request must be a JSON object")
    return doc


def _require_int(doc: Dict[str, Any], field: str,
                 optional: bool = False) -> Optional[int]:
    value = doc.get(field)
    if value is None:
        if optional:
            return None
        raise ProtocolError(f"missing required field {field!r}")
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {field!r} must be an integer")
    return value


def validate_request(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Check shape and types of a request; returns it unchanged.

    Snapshot ranges are rejected here when they are malformed *on
    their face* (negative versions, ``first > last``) — the client
    gets a clean :class:`ProtocolError` payload instead of a
    server-side evaluation error.  Semantics that need live state
    (window bounds, algorithm names) are validated by the service
    state, which raises the same error type for out-of-window ranges.
    """
    op = doc.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    if op == "query":
        unknown = set(doc) - _QUERY_FIELDS
        if unknown:
            raise ProtocolError(f"unknown query fields {sorted(unknown)}")
        if not isinstance(doc.get("algorithm"), str):
            raise ProtocolError("field 'algorithm' must be a string")
        _require_int(doc, "source")
        first = _require_int(doc, "first", optional=True)
        last = _require_int(doc, "last", optional=True)
        for name, value in (("first", first), ("last", last)):
            if value is not None and value < 0:
                raise ProtocolError(
                    f"field {name!r} must be a non-negative snapshot "
                    f"version, got {value}"
                )
        if first is not None and last is not None and first > last:
            raise ProtocolError(
                f"version range [{first}, {last}] is reversed "
                "(first > last)"
            )
        _require_timeout(doc)
    elif op == "temporal":
        from repro.temporal.plan import parse_specs

        unknown = set(doc) - _TEMPORAL_FIELDS
        if unknown:
            raise ProtocolError(
                f"unknown temporal fields {sorted(unknown)}"
            )
        if not isinstance(doc.get("algorithm"), str):
            raise ProtocolError("field 'algorithm' must be a string")
        _require_int(doc, "source")
        parse_specs(doc.get("queries"))
        _require_timeout(doc)
    elif op == "ingest":
        unknown = set(doc) - _INGEST_FIELDS
        if unknown:
            raise ProtocolError(f"unknown ingest fields {sorted(unknown)}")
        _require_timeout(doc)
    elif op == "update":
        unknown = set(doc) - _UPDATE_FIELDS
        if unknown:
            raise ProtocolError(f"unknown update fields {sorted(unknown)}")
        parse_update(doc)
        _require_timeout(doc)
    return doc


def _require_timeout(doc: Dict[str, Any]) -> Optional[int]:
    """``timeout_ms`` — the client's end-to-end budget, if any.

    The server caps it with its own ``request_timeout``; the budget then
    covers admission queueing, retries and execution as one deadline.
    """
    timeout_ms = _require_int(doc, "timeout_ms", optional=True)
    if timeout_ms is not None and timeout_ms <= 0:
        raise ProtocolError("field 'timeout_ms' must be a positive integer")
    return timeout_ms


def parse_edge_pairs(pairs: Any, field: str) -> EdgeSet:
    """``[[u, v], ...]`` from the wire into an :class:`EdgeSet`."""
    if pairs is None:
        return EdgeSet.empty()
    if not isinstance(pairs, list):
        raise ProtocolError(f"field {field!r} must be a list of [u, v] pairs")
    for pair in pairs:
        if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                or not all(isinstance(x, int) and not isinstance(x, bool)
                           and x >= 0 for x in pair)):
            raise ProtocolError(
                f"field {field!r} must contain [u, v] pairs of "
                f"non-negative integers"
            )
    return EdgeSet.from_pairs(tuple(map(tuple, pairs)))


def parse_ingest_batch(doc: Dict[str, Any]) -> DeltaBatch:
    """The Δ batch of an ``ingest`` request (additions/deletions pairs)."""
    from repro.errors import DeltaError

    additions = parse_edge_pairs(doc.get("additions"), "additions")
    deletions = parse_edge_pairs(doc.get("deletions"), "deletions")
    if not additions and not deletions:
        raise ProtocolError("ingest batch is empty")
    try:
        return DeltaBatch(additions=additions, deletions=deletions)
    except DeltaError as exc:
        raise ProtocolError(str(exc)) from exc


def parse_update(
    doc: Dict[str, Any],
) -> Tuple[str, Optional[int], Optional[int]]:
    """``(kind, u, v)`` of an ``update`` request.

    ``kind`` is one of :data:`UPDATE_WIRE_KINDS`; ``insert``/``delete``
    carry exactly one ``edge`` pair, ``compact`` (the explicit fold)
    carries none — so ``(u, v)`` is ``(None, None)`` for it.
    """
    kind = doc.get("kind")
    if kind not in UPDATE_WIRE_KINDS:
        raise ProtocolError(
            f"unknown update kind {kind!r}; expected one of "
            f"{UPDATE_WIRE_KINDS}"
        )
    edge = doc.get("edge")
    if kind == "compact":
        if edge is not None:
            raise ProtocolError("a compact update carries no 'edge'")
        return kind, None, None
    if (not isinstance(edge, (list, tuple)) or len(edge) != 2
            or not all(isinstance(x, int) and not isinstance(x, bool)
                       and x >= 0 for x in edge)):
        raise ProtocolError(
            "field 'edge' must be one [u, v] pair of non-negative integers"
        )
    return kind, int(edge[0]), int(edge[1])


def encode_values(values: Sequence[np.ndarray]) -> List[List[Any]]:
    """Per-snapshot value vectors as JSON-safe lists.

    Infinities (the unreached-vertex markers of SSSP and friends) are
    mapped to the strings ``"inf"`` / ``"-inf"``; everything else stays
    a float.  The mapping round-trips exactly through
    :func:`decode_values`.
    """
    encoded: List[List[Any]] = []
    for vector in values:
        row: List[Any] = []
        for value in map(float, vector):
            if math.isinf(value):
                row.append("inf" if value > 0 else "-inf")
            else:
                row.append(value)
        encoded.append(row)
    return encoded


def decode_values(encoded: Sequence[Sequence[Any]]) -> List[np.ndarray]:
    """Inverse of :func:`encode_values`, back to float64 arrays."""
    decoded: List[np.ndarray] = []
    for row in encoded:
        decoded.append(np.asarray(
            [float(value) for value in row], dtype=np.float64
        ))
    return decoded
