"""The asyncio front end: JSON-lines over TCP.

Request lifecycle::

    client line ──> validate (protocol) ──> dispatch
        query  ──> coalesce identical in-flight ──> admission slot
                   ──> circuit breaker gate ──> executor thread
                   (fault hook + memoizing planner) under retry/deadline
                   ──> degraded fallback (offline evaluator) if the
                   primary path is exhausted or the breaker is open
        ingest ──> admission slot ──> breaker gate ──> serialised,
                   executor thread (fault hook + store append +
                   incremental decomposition extension)
        status ──> store/window/epoch/cache payload + lifecycle,
                   admission and breaker health (health check)

Design points, mirroring the rest of the codebase:

* **Coalescing** — concurrent identical queries (same algorithm,
  source, range) share one execution; followers await the leader's
  future and receive the same response payload.
* **Admission control** — queries and ingests each pass a bounded
  :class:`~repro.service.admission.AdmissionController` lane before
  touching an executor thread; a full waiting room or an expired queue
  budget sheds the request with an explicit ``overloaded`` response
  (``retry_after_ms`` hint) instead of buffering without limit.
* **Deadlines / retries** — the client-supplied ``timeout_ms`` (capped
  by the server's ``request_timeout``) becomes one shared
  :class:`~repro.resilience.Deadline` that flows through admission
  wait → retry policy → executor dispatch, so a request never queues,
  retries or sleeps past its own budget.
* **Circuit breakers** — the planner executor path and the store
  append path each sit behind a
  :class:`~repro.resilience.CircuitBreaker`; repeated exhausted-retry
  failures trip it open, after which queries short-circuit straight to
  the degraded fallback (no retry burn) and ingests fail fast with a
  ``retry_after_ms`` hint until a half-open probe heals the breaker.
* **Graceful degradation** — when retries are spent (or the breaker is
  open) the server answers from the plain offline evaluator, bypassing
  planner and caches (``outcome: "degraded"``), consistent with the
  parallel evaluators' :class:`~repro.core.parallel.TaskOutcome` model.
  Client errors (bad range, unknown algorithm, malformed batch) are
  never retried and never trip the breaker.
* **Graceful drain** — :meth:`GraphService.drain` stops accepting new
  work (admission sheds with reason ``"draining"``), lets in-flight
  requests finish within a drain deadline, flushes the store
  subscription and only then stops the loop; ``status`` exposes
  ``live`` / ``ready`` / ``draining`` so orchestrators can sequence
  rollouts.
* **Fault hooks** — the primary query/ingest paths call
  :func:`repro.faults.service_check`, so tests inject failures and
  latency deterministically; the degraded path is un-instrumented.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro import faults, obs
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    RetryExhaustedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.obs.clock import Clock
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    retry_call_async,
)
from repro.service import protocol
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.state import ServiceState

__all__ = ["GraphService", "ServiceConfig", "ServiceRunner"]

#: Coalescing key of a query: algorithm, source, first, last (as sent).
QueryKey = Tuple[str, int, Optional[int], Optional[int]]

#: Breaker states as gauge values (``repro_breaker_state``).
BREAKER_STATE_VALUES = {
    CircuitBreaker.CLOSED: 0,
    CircuitBreaker.HALF_OPEN: 1,
    CircuitBreaker.OPEN: 2,
}


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick an ephemeral port
    #: Per-request wall-clock budget in seconds (``None`` = unbounded).
    #: A client-supplied ``timeout_ms`` can only shrink it, never grow.
    request_timeout: Optional[float] = 30.0
    #: Retry policy for the primary query/ingest paths.
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=3, base_delay=0.005, multiplier=2.0, max_delay=0.1,
        retry_on=(OSError,),
    ))
    #: Admission bounds per request class (the overload valve).
    query_admission: AdmissionPolicy = field(
        default_factory=lambda: AdmissionPolicy(
            max_concurrent=8, max_queue=64, queue_timeout=5.0,
        ))
    ingest_admission: AdmissionPolicy = field(
        default_factory=lambda: AdmissionPolicy(
            max_concurrent=1, max_queue=32, queue_timeout=10.0,
        ))
    #: The ``update`` lane: one slot (the overlay lock serialises
    #: repairs anyway) with a deep, short-fused waiting room — see
    #: :class:`~repro.service.admission.AdmissionController`.
    live_admission: AdmissionPolicy = field(
        default_factory=lambda: AdmissionPolicy(
            max_concurrent=1, max_queue=256, queue_timeout=2.0,
        ))
    #: Consecutive exhausted-retry failures before a breaker opens.
    breaker_failure_threshold: int = 5
    #: Seconds an open breaker waits before admitting a probe.
    breaker_reset_timeout: float = 5.0
    #: Hard cap on one request line; longer lines are rejected with a
    #: ``ProtocolError`` response instead of being buffered into memory.
    max_line_bytes: int = 1 << 20
    #: Default budget for :meth:`GraphService.drain`.
    drain_timeout: float = 10.0
    #: Injected time source for the breakers (tests pass ``FakeClock``).
    clock: Optional[Clock] = None


class GraphService:
    """One serving instance: a :class:`ServiceState` behind a TCP listener."""

    def __init__(self, state: ServiceState, config: Optional[ServiceConfig] = None) -> None:
        self.state = state
        self.config = config or ServiceConfig()
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {
            "connections": 0, "requests": 0, "queries": 0, "coalesced": 0,
            "temporals": 0, "ingests": 0, "updates": 0, "retried": 0,
            "degraded": 0, "errors": 0, "shed": 0, "breaker_fastfail": 0,
        }
        self.admission = AdmissionController(
            query=self.config.query_admission,
            ingest=self.config.ingest_admission,
            live=self.config.live_admission,
        )
        self.query_breaker = self._make_breaker("planner")
        self.store_breaker = self._make_breaker("store")
        self._inflight: Dict[QueryKey, "asyncio.Future[Dict[str, Any]]"] = {}
        self._ingest_lock: Optional[asyncio.Lock] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        # Lifecycle (all event-loop-confined).
        self._live = False
        self._draining = False
        self._drain_report: Optional[Dict[str, Any]] = None
        self._inflight_requests = 0
        self._idle: Optional[asyncio.Event] = None
        self._unregister_collector = lambda: None

    def _make_breaker(self, name: str) -> CircuitBreaker:
        def record_transition(previous: str, to: str) -> None:
            obs.counter_inc("repro_breaker_transitions_total",
                            breaker=name, to=to)

        return CircuitBreaker(
            name,
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout,
            clock=self.config.clock,
            on_transition=record_transition,
        )

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self._ingest_lock = asyncio.Lock()
        self._stop = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=self.config.max_line_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._live = True
        self._unregister_collector = obs.register_collector(
            self._collect_metrics
        )

    def request_stop(self) -> None:
        """Stop accepting and drop open connections (idempotent)."""
        if self._stop is not None:
            self._stop.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`request_stop`, then tear the listener down."""
        assert self._stop is not None and self._server is not None
        await self._stop.wait()
        self._server.close()
        for writer in list(self._writers):
            writer.close()
        await self._server.wait_closed()
        self._live = False
        self._unregister_collector()

    async def run(self) -> None:
        """Start and serve until stopped (the CLI entry point)."""
        await self.start()
        await self.wait_closed()

    async def drain(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Graceful shutdown: stop admitting, finish in-flight, stop.

        Sequence: flag the service as draining (admission sheds every
        not-yet-admitted query/ingest with reason ``"draining"``), close
        the listener so no new connections arrive, wait up to the drain
        deadline for in-flight requests to land, flush the store
        subscription, then stop the serve loop.  Idempotent: a second
        call returns the first call's report.
        """
        if self._draining:
            return dict(self._drain_report or {"draining": True})
        self._draining = True
        budget = self.config.drain_timeout if timeout is None else timeout
        deadline = Deadline.after(budget)
        self.admission.begin_drain()
        if self._server is not None:
            self._server.close()
        with obs.timer("repro_drain_seconds"):
            assert self._idle is not None
            remaining = deadline.remaining()
            if self._inflight_requests > 0:
                try:
                    await asyncio.wait_for(self._idle.wait(),
                                           timeout=remaining)
                except asyncio.TimeoutError:
                    pass
        abandoned = self._inflight_requests
        self.state.close()  # flush the store subscription
        report = {
            "drained": abandoned == 0,
            "abandoned_requests": abandoned,
            "abandoned_futures": len(self._inflight),
            "shed_total": self.admission.total_shed(),
        }
        self._drain_report = report
        self.request_stop()
        return report

    def _lifecycle_payload(self, serving: bool = True) -> Dict[str, Any]:
        """``live`` / ``ready`` / ``draining`` for orchestrators.

        *live* — the listener exists (restart me if false); *ready* —
        accepting new work (route traffic only if true); *draining* —
        shutting down gracefully (stop routing, don't kill yet).
        """
        return {
            "live": self._live,
            "ready": self._live and serving and not self._draining,
            "draining": self._draining,
        }

    def _collect_metrics(self, registry: "obs.MetricsRegistry") -> None:
        """Scrape-time bridge: admission + breaker health → gauges."""
        def gauge(name: str, value: float, **labels: str) -> None:
            obs.instruments.family(registry, name).labels(**labels).set(value)

        snapshot = self.admission.snapshot()
        for kind in ("query", "ingest", "live"):
            gate = snapshot[kind]
            gauge("repro_admission_depth", gate["waiting"], kind=kind)
            gauge("repro_admission_active", gate["active"], kind=kind)
            gauge("repro_admission_queue_high_water", gate["max_depth"],
                  kind=kind)
        for breaker in (self.query_breaker, self.store_breaker):
            gauge("repro_breaker_state",
                  BREAKER_STATE_VALUES[breaker.snapshot()["state"]],
                  breaker=breaker.name)

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line outgrew max_line_bytes: answer with a
                    # protocol error and drop the connection — the
                    # stream cannot be resynchronised mid-line, and
                    # reading further would buffer attacker-controlled
                    # bytes into memory.
                    await self._send(writer, self._error_response(
                        None, ProtocolError(
                            "request line exceeds "
                            f"{self.config.max_line_bytes} bytes"
                        )))
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                await self._send(writer, response)
                if response.get("op") == "shutdown" and response.get("ok"):
                    self.request_stop()
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _send(self, writer: asyncio.StreamWriter,
                    response: Dict[str, Any]) -> None:
        writer.write(protocol.encode_line(response))
        await writer.drain()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        self.counters["requests"] += 1
        self._inflight_requests += 1
        if self._idle is not None:
            self._idle.clear()
        request_id = None
        try:
            doc = protocol.decode_line(line)
            request_id = doc.get("id")
            protocol.validate_request(doc)
            response = await self._dispatch(doc)
        except ReproError as exc:
            response = self._error_response(request_id, exc)
        except Exception as exc:  # never let a handler kill the server
            response = self._error_response(request_id, exc)
        finally:
            self._inflight_requests -= 1
            if self._inflight_requests == 0 and self._idle is not None:
                self._idle.set()
        if request_id is not None:
            response["id"] = request_id
        return response

    def _error_payload(self, request_id: Optional[Any],
                       exc: BaseException) -> Dict[str, Any]:
        """Build an error response without touching the counters."""
        response = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
        if isinstance(exc, ServiceOverloadedError):
            response["overloaded"] = True
            response["retry_after_ms"] = exc.retry_after_ms
            if self._draining:
                response["draining"] = True
        elif isinstance(exc, CircuitOpenError):
            response["retry_after_ms"] = max(
                0, int(exc.retry_after * 1000)
            )
        if request_id is not None:
            response["id"] = request_id
        return response

    def _error_response(self, request_id: Optional[Any],
                        exc: BaseException) -> Dict[str, Any]:
        self.counters["errors"] += 1
        if isinstance(exc, ServiceOverloadedError):
            self.counters["shed"] += 1
        obs.counter_inc("repro_errors_total")
        return self._error_payload(request_id, exc)

    # -- dispatch ------------------------------------------------------------
    async def _dispatch(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        op = doc["op"]
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "status":
            return await self._handle_status()
        if op == "ingest":
            return await self._handle_ingest(doc)
        if op == "update":
            return await self._handle_update(doc)
        if op == "temporal":
            return await self._handle_temporal(doc)
        return await self._handle_query(doc)

    def _request_deadline(self, doc: Dict[str, Any]) -> Deadline:
        """One shared budget: ``min(server cap, client timeout_ms)``.

        The resulting deadline gates the admission wait, the retry
        policy, and every executor dispatch of this request.
        """
        budget = self.config.request_timeout
        timeout_ms = doc.get("timeout_ms")
        if timeout_ms is not None:
            client_budget = timeout_ms / 1000.0
            budget = (client_budget if budget is None
                      else min(budget, client_budget))
        return (Deadline.after(budget) if budget is not None
                else Deadline.never())

    async def _handle_status(self) -> Dict[str, Any]:
        obs.counter_inc("repro_requests_total", op="status")
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, self.state.status)
        payload.update({
            "ok": True,
            "op": "status",
            "server": dict(self.counters),
            "lifecycle": self._lifecycle_payload(
                serving=bool(payload.get("serving", True))
            ),
            "admission": self.admission.snapshot(),
            "breakers": {
                breaker.name: breaker.snapshot()
                for breaker in (self.query_breaker, self.store_breaker)
            },
        })
        return payload

    async def _handle_ingest(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        batch = protocol.parse_ingest_batch(doc)
        loop = asyncio.get_running_loop()
        assert self._ingest_lock is not None
        obs.counter_inc("repro_requests_total", op="ingest")
        deadline = self._request_deadline(doc)

        def primary() -> Dict[str, Any]:
            faults.service_check("ingest", self.state.num_versions)
            return self.state.ingest(batch)

        async def attempt() -> Dict[str, Any]:
            deadline.check("ingest")
            # run_in_executor does not propagate contextvars: carry the
            # active span into the worker thread so the store/state
            # spans nest under this ingest's trace.
            ctx = contextvars.copy_context()
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(None, lambda: ctx.run(primary)),
                    timeout=deadline.remaining(),
                )
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    "ingest exceeded its deadline"
                ) from None

        breaker = self.store_breaker
        with obs.timer("repro_ingest_seconds"):
            with obs.phase_span("server", "ingest",
                                batch_size=batch.size):
                async with self.admission.slot("ingest", deadline,
                                               what="ingest"):
                    # An open store breaker fails fast (CircuitOpenError
                    # response with retry_after_ms) instead of burning
                    # retries into a store that keeps failing.
                    breaker.before_call("ingest")
                    recorded = False
                    try:
                        async with self._ingest_lock:
                            receipt = await retry_call_async(
                                attempt, policy=self.config.retry,
                                deadline=deadline, label="ingest",
                            )
                        breaker.record_success()
                        recorded = True
                    except RetryExhaustedError:
                        breaker.record_failure()
                        recorded = True
                        raise
                    finally:
                        if not recorded:
                            breaker.record_neutral()
        self.counters["ingests"] += 1
        receipt.update({"ok": True, "op": "ingest",
                        "batch_size": batch.size})
        return receipt

    async def _handle_update(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """One single-edge update (or explicit fold) through the live lane.

        Deliberately *not* retried: a retried insert whose first attempt
        landed would bounce off the overlay's strict already-present
        validation and turn one applied update into an error response.
        Each update either applies exactly once (receipt carries its
        overlay ``seq``) or fails with the state untouched.
        """
        kind, u, v = protocol.parse_update(doc)
        loop = asyncio.get_running_loop()
        obs.counter_inc("repro_requests_total", op="update")
        deadline = self._request_deadline(doc)

        def primary() -> Dict[str, Any]:
            faults.service_check("update", self.state.num_versions)
            return self.state.update(kind, u, v)

        with obs.timer("repro_livetip_update_seconds"):
            async with self.admission.slot("live", deadline,
                                           what=f"update:{kind}"):
                deadline.check("update")
                # run_in_executor does not propagate contextvars: carry
                # the active span so the overlay's repair/compact spans
                # nest under this update's trace.
                ctx = contextvars.copy_context()
                try:
                    receipt = await asyncio.wait_for(
                        loop.run_in_executor(
                            None, lambda: ctx.run(primary)
                        ),
                        timeout=deadline.remaining(),
                    )
                except asyncio.TimeoutError:
                    raise DeadlineExceededError(
                        "update exceeded its deadline"
                    ) from None
        self.counters["updates"] += 1
        receipt.update({"ok": True, "op": "update"})
        return receipt

    async def _handle_query(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        key: QueryKey = (
            doc["algorithm"].lower(), doc["source"],
            doc.get("first"), doc.get("last"),
        )
        inflight = self._inflight.get(key)
        if inflight is not None:
            # Identical query already running: share its outcome.
            self.counters["coalesced"] += 1
            obs.counter_inc("repro_coalesced_total")
            shared = await inflight
            response = dict(shared)
            response["coalesced"] = True
            return response
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._inflight[key] = future
        try:
            response = await self._run_query(doc)
        except BaseException as exc:
            # Resolve followers with an error payload, then re-raise for
            # this request's own error path.  The payload builder does
            # not bump the "errors" counter — _handle_line counts the
            # failure exactly once when the re-raised exception lands.
            future.set_result(self._error_payload(None, exc))
            raise
        else:
            future.set_result(response)
            return response
        finally:
            del self._inflight[key]

    async def _run_query(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        self.counters["queries"] += 1
        obs.counter_inc("repro_requests_total", op="query")
        algorithm = doc["algorithm"]
        source = doc["source"]
        first, last = doc.get("first"), doc.get("last")
        deadline = self._request_deadline(doc)
        loop = asyncio.get_running_loop()
        attempts = [0]
        label = f"{algorithm}:{source}:{first}:{last}"

        def primary():
            attempts[0] += 1
            faults.service_check("query", label)
            return self.state.query(algorithm, source, first, last)

        async def attempt():
            deadline.check("query")
            # run_in_executor does not propagate contextvars: carry the
            # root span into the worker thread so the planner/kernel
            # spans of this attempt nest under one query trace.
            ctx = contextvars.copy_context()
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(None, lambda: ctx.run(primary)),
                    timeout=deadline.remaining(),
                )
            except asyncio.TimeoutError:
                # Convert before the retry policy sees it: TimeoutError
                # is an OSError subclass on Python 3.11+, and retrying a
                # deadline expiry would race a duplicate attempt against
                # the still-running executor task.
                raise DeadlineExceededError(
                    f"query {label} exceeded its deadline"
                ) from None

        with obs.timer("repro_query_seconds"):
            with obs.phase_span("server", "query", label=label,
                                algorithm=algorithm,
                                source=source) as root_span:
                async with self.admission.slot("query", deadline,
                                               what=f"query {label}"):
                    answer, outcome = await self._execute_gated(
                        attempt, attempts, deadline, f"query {label}",
                        lambda: self._degraded_query(doc, deadline),
                    )
                root_span.annotate(outcome=outcome, attempts=attempts[0])
        obs.counter_inc("repro_task_outcomes_total",
                        component="service", status=outcome)
        response = {
            "ok": True,
            "op": "query",
            "algorithm": answer.algorithm,
            "source": answer.source,
            "first": answer.first,
            "last": answer.last,
            "epoch": answer.epoch,
            "from_cache": answer.from_cache,
            "node_hits": answer.node_hits,
            "node_misses": answer.node_misses,
            "outcome": outcome,
            "values": protocol.encode_values(answer.values),
        }
        if answer.livetip_seq is not None:
            # The tip column was patched by the live-tip overlay: expose
            # which update stream position the answer reflects, so a
            # client (or a chaos test) can pin expectations to it.
            response["livetip_seq"] = answer.livetip_seq
        if root_span.trace_id is not None:
            response["trace_id"] = root_span.trace_id
        return response

    async def _execute_gated(self, attempt, attempts, deadline, label,
                             degraded):
        """The breaker-gated primary path, falling back to ``degraded``.

        Shared by the query and temporal paths.  Returns
        ``(answer, outcome)``.  The breaker counts *requests* (one
        ``before_call`` each), not attempts: a retried-then-healed
        request records one success, an exhausted one records one
        failure, and anything that says nothing about the planner's
        health (client errors, expired budgets) records neutrally so a
        half-open probe is always returned.
        """
        breaker = self.query_breaker
        try:
            breaker.before_call(label)
        except CircuitOpenError:
            # Short-circuit: no retries against a path that keeps
            # failing — answer from the offline evaluator immediately.
            self.counters["breaker_fastfail"] += 1
            obs.annotate(breaker="open")
            answer = await degraded()
            return answer, "degraded"
        recorded = False
        try:
            answer = await retry_call_async(
                attempt, policy=self.config.retry, deadline=deadline,
                label=label,
            )
            breaker.record_success()
            recorded = True
            if attempts[0] > 1:
                self.counters["retried"] += 1
                return answer, "retried"
            return answer, "ok"
        except RetryExhaustedError:
            # Primary path spent: degrade to the offline evaluator.
            # Client errors (bad range, unknown algorithm) are not
            # retryable, so they never reach this branch — they
            # propagate straight to the error response.
            breaker.record_failure()
            recorded = True
            answer = await degraded()
            return answer, "degraded"
        finally:
            if not recorded:
                breaker.record_neutral()

    async def _degraded_query(self, doc: Dict[str, Any],
                              deadline: Deadline):
        """The recovery path: no planner, no caches, no fault hooks."""
        self.counters["degraded"] += 1
        deadline.check("degraded query")
        loop = asyncio.get_running_loop()
        state = self.state
        with state._lock:
            base = state.base_version
            latest = base + state.decomposition.num_snapshots - 1
        first = doc.get("first")
        last = doc.get("last")
        with obs.phase_span("server", "degraded", label=doc["algorithm"]):
            ctx = contextvars.copy_context()
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(
                        None, ctx.run, state.offline_answer,
                        doc["algorithm"], doc["source"],
                        base if first is None else first,
                        latest if last is None else last,
                    ),
                    timeout=deadline.remaining(),
                )
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    "degraded query exceeded its deadline"
                ) from None

    # -- temporal -------------------------------------------------------------
    async def _handle_temporal(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """One temporal batch through the query lane.

        Shares the query admission lane, the planner breaker and the
        retry/degrade ladder with plain queries — a temporal batch is
        just a bigger read.  The degraded fallback is the cache-free
        :meth:`ServiceState.temporal_offline`, which still coalesces
        ranges, so even a degraded answer costs one offline evaluation
        per merged range.
        """
        from repro.temporal.plan import parse_specs
        from repro.temporal.timeline import encode_results

        self.counters["temporals"] += 1
        obs.counter_inc("repro_requests_total", op="temporal")
        algorithm = doc["algorithm"]
        source = doc["source"]
        specs = parse_specs(doc["queries"])
        deadline = self._request_deadline(doc)
        loop = asyncio.get_running_loop()
        attempts = [0]
        label = f"{algorithm}:{source}:{len(specs)} specs"

        def primary():
            attempts[0] += 1
            faults.service_check("temporal", label)
            return self.state.temporal(algorithm, source, specs)

        async def attempt():
            deadline.check("temporal")
            # run_in_executor does not propagate contextvars: carry the
            # root span into the worker thread so the temporal/planner
            # spans of this attempt nest under one trace.
            ctx = contextvars.copy_context()
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(None, lambda: ctx.run(primary)),
                    timeout=deadline.remaining(),
                )
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    f"temporal {label} exceeded its deadline"
                ) from None

        async def degraded():
            self.counters["degraded"] += 1
            deadline.check("degraded temporal")
            with obs.phase_span("server", "degraded", label=algorithm):
                ctx = contextvars.copy_context()
                try:
                    return await asyncio.wait_for(
                        loop.run_in_executor(
                            None, ctx.run, self.state.temporal_offline,
                            algorithm, source, specs,
                        ),
                        timeout=deadline.remaining(),
                    )
                except asyncio.TimeoutError:
                    raise DeadlineExceededError(
                        "degraded temporal exceeded its deadline"
                    ) from None

        with obs.timer("repro_query_seconds"):
            with obs.phase_span("server", "temporal", label=label,
                                algorithm=algorithm, source=source,
                                specs=len(specs)) as root_span:
                async with self.admission.slot("query", deadline,
                                               what=f"temporal {label}"):
                    answer, outcome = await self._execute_gated(
                        attempt, attempts, deadline, f"temporal {label}",
                        degraded,
                    )
                root_span.annotate(outcome=outcome, attempts=attempts[0])
        obs.counter_inc("repro_task_outcomes_total",
                        component="service", status=outcome)
        response = {
            "ok": True,
            "op": "temporal",
            "algorithm": answer.algorithm,
            "source": answer.source,
            "window_first": answer.window_first,
            "window_last": answer.window_last,
            "epoch": answer.epoch,
            "outcome": outcome,
            "ranges_evaluated": answer.ranges_evaluated,
            "snapshots_scanned": answer.snapshots_scanned,
            "results": encode_results(answer.results),
        }
        if root_span.trace_id is not None:
            response["trace_id"] = root_span.trace_id
        return response


class ServiceRunner:
    """Run a :class:`GraphService` on a background thread.

    For tests, benchmarks and embedding: the caller's thread stays free,
    the service gets its own event loop, and ``stop()`` (or the context
    manager exit) tears everything down.  ``drain()`` performs the
    graceful variant and returns the drain report.  ``port`` is
    available once the context is entered.
    """

    def __init__(self, state: ServiceState,
                 config: Optional[ServiceConfig] = None) -> None:
        self.state = state
        self.config = config or ServiceConfig()
        self.service: Optional[GraphService] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServiceRunner":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("service failed to start within 30s")
        if self._startup_error is not None:
            raise ServiceError(
                f"service failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self.service is not None:
            try:
                self._loop.call_soon_threadsafe(self.service.request_stop)
            except RuntimeError:
                pass  # loop already closed (a drain beat us to it)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def drain(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Gracefully drain the service and join the serve thread.

        Blocks the calling thread until the drain report is available
        (at most the drain deadline plus scheduling slack), then joins
        the serve loop.  Raises :class:`ServiceError` if the service
        never started.
        """
        if self._loop is None or self.service is None:
            raise ServiceError("cannot drain: the service never started")
        budget = (timeout if timeout is not None
                  else self.config.drain_timeout)
        future = asyncio.run_coroutine_threadsafe(
            self.service.drain(timeout), self._loop
        )
        try:
            report = future.result(timeout=budget + 30)
        except TimeoutError:
            raise ServiceError(
                "drain did not complete within its deadline plus slack"
            ) from None
        if self._thread is not None:
            self._thread.join(timeout=30)
        return report

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.service = GraphService(self.state, self.config)
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.port = self.service.port
        self._started.set()
        await self.service.wait_closed()

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
