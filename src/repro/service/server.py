"""The asyncio front end: JSON-lines over TCP.

Request lifecycle::

    client line ──> validate (protocol) ──> dispatch
        query  ──> coalesce identical in-flight ──> executor thread
                   (fault hook + memoizing planner) under retry/deadline
                   ──> degraded fallback (offline evaluator) if the
                   primary path is exhausted
        ingest ──> serialised, executor thread (fault hook + store
                   append + incremental decomposition extension)
        status ──> store/window/epoch/cache payload (health check)

Design points, mirroring the rest of the codebase:

* **Coalescing** — concurrent identical queries (same algorithm,
  source, range) share one execution; followers await the leader's
  future and receive the same response payload.
* **Deadlines / retries** — every query carries a
  :class:`~repro.resilience.Deadline`; primary attempts run under
  :func:`~repro.resilience.retry_call_async` with an I/O-style policy,
  so an injected or transient fault is healed by a retry
  (``outcome: "retried"``).
* **Graceful degradation** — when retries are spent the server answers
  from the plain offline evaluator, bypassing planner and caches
  (``outcome: "degraded"``), consistent with the parallel evaluators'
  :class:`~repro.core.parallel.TaskOutcome` model.  Client errors (bad
  range, unknown algorithm, malformed batch) are never retried.
* **Fault hooks** — the primary query/ingest paths call
  :func:`repro.faults.service_check`, so tests inject failures
  deterministically; the degraded path is un-instrumented.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro import faults, obs
from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    RetryExhaustedError,
    ServiceError,
)
from repro.resilience import Deadline, RetryPolicy, retry_call_async
from repro.service import protocol
from repro.service.state import ServiceState

__all__ = ["GraphService", "ServiceConfig", "ServiceRunner"]

#: Coalescing key of a query: algorithm, source, first, last (as sent).
QueryKey = Tuple[str, int, Optional[int], Optional[int]]


@dataclass
class ServiceConfig:
    """Tunables of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick an ephemeral port
    #: Per-request wall-clock budget in seconds (``None`` = unbounded).
    request_timeout: Optional[float] = 30.0
    #: Retry policy for the primary query/ingest paths.
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=3, base_delay=0.005, multiplier=2.0, max_delay=0.1,
        retry_on=(OSError,),
    ))


class GraphService:
    """One serving instance: a :class:`ServiceState` behind a TCP listener."""

    def __init__(self, state: ServiceState, config: Optional[ServiceConfig] = None) -> None:
        self.state = state
        self.config = config or ServiceConfig()
        self.port: Optional[int] = None
        self.counters: Dict[str, int] = {
            "connections": 0, "requests": 0, "queries": 0, "coalesced": 0,
            "ingests": 0, "retried": 0, "degraded": 0, "errors": 0,
        }
        self._inflight: Dict[QueryKey, "asyncio.Future[Dict[str, Any]]"] = {}
        self._ingest_lock: Optional[asyncio.Lock] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop: Optional[asyncio.Event] = None
        self._writers: Set[asyncio.StreamWriter] = set()

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        self._ingest_lock = asyncio.Lock()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Stop accepting and drop open connections (idempotent)."""
        if self._stop is not None:
            self._stop.set()

    async def wait_closed(self) -> None:
        """Block until :meth:`request_stop`, then tear the listener down."""
        assert self._stop is not None and self._server is not None
        await self._stop.wait()
        self._server.close()
        for writer in list(self._writers):
            writer.close()
        await self._server.wait_closed()

    async def run(self) -> None:
        """Start and serve until stopped (the CLI entry point)."""
        await self.start()
        await self.wait_closed()

    # -- connection handling -------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.counters["connections"] += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, self._error_response(
                        None, ProtocolError("request line too long")))
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                await self._send(writer, response)
                if response.get("op") == "shutdown" and response.get("ok"):
                    self.request_stop()
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _send(self, writer: asyncio.StreamWriter,
                    response: Dict[str, Any]) -> None:
        writer.write(protocol.encode_line(response))
        await writer.drain()

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        self.counters["requests"] += 1
        request_id = None
        try:
            doc = protocol.decode_line(line)
            request_id = doc.get("id")
            protocol.validate_request(doc)
            response = await self._dispatch(doc)
        except ReproError as exc:
            response = self._error_response(request_id, exc)
        except Exception as exc:  # never let a handler kill the server
            response = self._error_response(request_id, exc)
        if request_id is not None:
            response["id"] = request_id
        return response

    def _error_payload(self, request_id: Optional[Any],
                       exc: BaseException) -> Dict[str, Any]:
        """Build an error response without touching the counters."""
        response = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
        }
        if request_id is not None:
            response["id"] = request_id
        return response

    def _error_response(self, request_id: Optional[Any],
                        exc: BaseException) -> Dict[str, Any]:
        self.counters["errors"] += 1
        obs.counter_inc("repro_errors_total")
        return self._error_payload(request_id, exc)

    # -- dispatch ------------------------------------------------------------
    async def _dispatch(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        op = doc["op"]
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "shutdown":
            return {"ok": True, "op": "shutdown"}
        if op == "status":
            return await self._handle_status()
        if op == "ingest":
            return await self._handle_ingest(doc)
        return await self._handle_query(doc)

    async def _handle_status(self) -> Dict[str, Any]:
        obs.counter_inc("repro_requests_total", op="status")
        loop = asyncio.get_running_loop()
        payload = await loop.run_in_executor(None, self.state.status)
        payload.update({"ok": True, "op": "status",
                        "server": dict(self.counters)})
        return payload

    async def _handle_ingest(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        batch = protocol.parse_ingest_batch(doc)
        loop = asyncio.get_running_loop()
        assert self._ingest_lock is not None
        obs.counter_inc("repro_requests_total", op="ingest")

        def primary() -> Dict[str, Any]:
            faults.service_check("ingest", self.state.num_versions)
            return self.state.ingest(batch)

        async def attempt() -> Dict[str, Any]:
            # run_in_executor does not propagate contextvars: carry the
            # active span into the worker thread so the store/state
            # spans nest under this ingest's trace.
            ctx = contextvars.copy_context()
            return await loop.run_in_executor(None, lambda: ctx.run(primary))

        with obs.timer("repro_ingest_seconds"):
            with obs.phase_span("server", "ingest",
                                batch_size=batch.size):
                async with self._ingest_lock:
                    receipt = await retry_call_async(
                        attempt, policy=self.config.retry, label="ingest",
                    )
        self.counters["ingests"] += 1
        receipt.update({"ok": True, "op": "ingest",
                        "batch_size": batch.size})
        return receipt

    async def _handle_query(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        key: QueryKey = (
            doc["algorithm"].lower(), doc["source"],
            doc.get("first"), doc.get("last"),
        )
        inflight = self._inflight.get(key)
        if inflight is not None:
            # Identical query already running: share its outcome.
            self.counters["coalesced"] += 1
            obs.counter_inc("repro_coalesced_total")
            shared = await inflight
            response = dict(shared)
            response["coalesced"] = True
            return response
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Dict[str, Any]]" = loop.create_future()
        self._inflight[key] = future
        try:
            response = await self._run_query(doc)
        except BaseException as exc:
            # Resolve followers with an error payload, then re-raise for
            # this request's own error path.  The payload builder does
            # not bump the "errors" counter — _handle_line counts the
            # failure exactly once when the re-raised exception lands.
            future.set_result(self._error_payload(None, exc))
            raise
        else:
            future.set_result(response)
            return response
        finally:
            del self._inflight[key]

    async def _run_query(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        self.counters["queries"] += 1
        obs.counter_inc("repro_requests_total", op="query")
        algorithm = doc["algorithm"]
        source = doc["source"]
        first, last = doc.get("first"), doc.get("last")
        timeout = self.config.request_timeout
        deadline = (Deadline.after(timeout) if timeout is not None
                    else Deadline.never())
        loop = asyncio.get_running_loop()
        attempts = [0]
        label = f"{algorithm}:{source}:{first}:{last}"

        def primary():
            attempts[0] += 1
            faults.service_check("query", label)
            return self.state.query(algorithm, source, first, last)

        async def attempt():
            deadline.check("query")
            # run_in_executor does not propagate contextvars: carry the
            # root span into the worker thread so the planner/kernel
            # spans of this attempt nest under one query trace.
            ctx = contextvars.copy_context()
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(None, lambda: ctx.run(primary)),
                    timeout=deadline.remaining(),
                )
            except asyncio.TimeoutError:
                # Convert before the retry policy sees it: TimeoutError
                # is an OSError subclass on Python 3.11+, and retrying a
                # deadline expiry would race a duplicate attempt against
                # the still-running executor task.
                raise DeadlineExceededError(
                    f"query {label} exceeded its {timeout}s deadline"
                ) from None

        outcome = "ok"
        with obs.timer("repro_query_seconds"):
            with obs.phase_span("server", "query", label=label,
                                algorithm=algorithm,
                                source=source) as root_span:
                try:
                    answer = await retry_call_async(
                        attempt, policy=self.config.retry, deadline=deadline,
                        label=f"query {label}",
                    )
                    if attempts[0] > 1:
                        outcome = "retried"
                        self.counters["retried"] += 1
                except RetryExhaustedError:
                    # Primary path spent: degrade to the offline
                    # evaluator.  Client errors (bad range, unknown
                    # algorithm) are not retryable, so they never reach
                    # this branch — they propagate straight to the
                    # error response.
                    answer = await self._degraded_query(doc, deadline)
                    outcome = "degraded"
                root_span.annotate(outcome=outcome, attempts=attempts[0])
        obs.counter_inc("repro_task_outcomes_total",
                        component="service", status=outcome)
        response = {
            "ok": True,
            "op": "query",
            "algorithm": answer.algorithm,
            "source": answer.source,
            "first": answer.first,
            "last": answer.last,
            "epoch": answer.epoch,
            "from_cache": answer.from_cache,
            "node_hits": answer.node_hits,
            "node_misses": answer.node_misses,
            "outcome": outcome,
            "values": protocol.encode_values(answer.values),
        }
        if root_span.trace_id is not None:
            response["trace_id"] = root_span.trace_id
        return response

    async def _degraded_query(self, doc: Dict[str, Any],
                              deadline: Deadline):
        """The recovery path: no planner, no caches, no fault hooks."""
        self.counters["degraded"] += 1
        deadline.check("degraded query")
        loop = asyncio.get_running_loop()
        state = self.state
        with state._lock:
            base = state.base_version
            latest = base + state.decomposition.num_snapshots - 1
        first = doc.get("first")
        last = doc.get("last")
        with obs.phase_span("server", "degraded", label=doc["algorithm"]):
            ctx = contextvars.copy_context()
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(
                        None, ctx.run, state.offline_answer,
                        doc["algorithm"], doc["source"],
                        base if first is None else first,
                        latest if last is None else last,
                    ),
                    timeout=deadline.remaining(),
                )
            except asyncio.TimeoutError:
                raise DeadlineExceededError(
                    "degraded query exceeded its deadline"
                ) from None


class ServiceRunner:
    """Run a :class:`GraphService` on a background thread.

    For tests, benchmarks and embedding: the caller's thread stays free,
    the service gets its own event loop, and ``stop()`` (or the context
    manager exit) tears everything down.  ``port`` is available once the
    context is entered.
    """

    def __init__(self, state: ServiceState,
                 config: Optional[ServiceConfig] = None) -> None:
        self.state = state
        self.config = config or ServiceConfig()
        self.service: Optional[GraphService] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServiceRunner":
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("service failed to start within 30s")
        if self._startup_error is not None:
            raise ServiceError(
                f"service failed to start: {self._startup_error!r}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self.service is not None:
            self._loop.call_soon_threadsafe(self.service.request_stop)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures
            if not self._started.is_set():
                self._startup_error = exc
                self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.service = GraphService(self.state, self.config)
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self.port = self.service.port
        self._started.set()
        await self.service.wait_closed()

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
