"""Service state: a store, its live decomposition, and the caches.

:class:`ServiceState` is the single mutable object behind the server.
It owns:

* the :class:`~repro.evolving.store.SnapshotStore` (durability);
* a :class:`~repro.core.common.CommonGraphDecomposition` over the
  current window, maintained **incrementally**: an ingested batch
  extends the decomposition and its Triangular Grid by one column
  (:meth:`CommonGraphDecomposition.extended`) instead of recomputing
  from scratch, and a full window slides forward via ``restrict``;
* the **epoch** counter: bumped on every ingest/slide, embedded in
  every cache key, so no cache entry can outlive the decomposition
  that produced it;
* the result cache (full answers) and node-state cache (interior-ICG
  states shared across queries) plus the
  :class:`~repro.service.planner.MemoizingPlanner` that uses them.

Versions are *absolute*: snapshot numbers keep counting up as batches
arrive, even after old snapshots slide out of the window.  A query for
a version outside the window is refused with a clear error rather than
silently answered from the wrong graph.

Thread model: ``ingest`` mutates under a lock; queries capture
``(decomposition, epoch, base_version)`` atomically at entry and then
run lock-free on that immutable snapshot of the state — an ingest that
lands mid-query swaps in a *new* decomposition object, it never mutates
the one an in-flight query holds.  (The decomposition's lazy
interval-surplus memo is internally locked, so sharing one
decomposition between in-flight queries and an extension is safe.)

Failure model: the store notifies *after* an append is durable, so the
state must never silently fall behind it.  If the incremental extension
fails, ``_on_append`` resynchronises with a full rebuild from the store
(counted in ``resyncs``); if even that fails, the state is *poisoned* —
queries raise :class:`~repro.errors.ServiceError` loudly until a later
notification rebuilds successfully — rather than answering from a graph
that no longer matches the store.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.algorithms.base import MonotonicAlgorithm
from repro.algorithms.registry import get_algorithm
from repro.core.common import CommonGraphDecomposition
from repro.errors import ProtocolError, ServiceError
from repro.evolving.delta import DeltaBatch
from repro.evolving.store import SnapshotStore
from repro.graph.weights import UnitWeights, WeightFn
from repro.kickstarter.engine import VertexState
from repro.livetip import CompactionPolicy, Compactor, LiveTipOverlay
from repro.livetip.overlay import TipCapture
from repro.service.cache import LRUCache
from repro.service.planner import MemoizingPlanner
from repro.service.status import store_summary
from repro.temporal.engine import TemporalEngine
from repro.temporal.plan import TemporalSpec
from repro.temporal.timeline import TemporalAnswer

__all__ = ["QueryAnswer", "ServiceState"]


@dataclass
class QueryAnswer:
    """A served query: values plus provenance for the response payload."""

    algorithm: str
    source: int
    first: int
    last: int
    epoch: int
    values: List[np.ndarray] = field(default_factory=list)
    from_cache: bool = False
    node_hits: int = 0
    node_misses: int = 0
    additions_processed: int = 0
    #: Set when the tip snapshot's values were patched from the
    #: live-tip overlay: the overlay sequence number the patch reflects.
    livetip_seq: Optional[int] = None

    def key(self) -> Tuple[str, int, int, int, int]:
        return (self.algorithm, self.source, self.first, self.last,
                self.epoch)


class ServiceState:
    """Mutable service core: ingestion, window, epochs, caches, queries."""

    def __init__(
        self,
        store: SnapshotStore,
        weight_fn: Optional[WeightFn] = None,
        window: Optional[int] = None,
        result_cache_entries: int = 256,
        node_cache_entries: int = 1024,
        time_fn: Callable[[], float] = time.time,
        livetip: bool = True,
        livetip_max_updates: int = 64,
        livetip_max_age: Optional[float] = None,
        livetip_max_tracked: int = 8,
    ) -> None:
        if window is not None and window < 1:
            raise ServiceError("window must be >= 1 snapshot")
        self.store = store
        self.weight_fn: WeightFn = (
            weight_fn if weight_fn is not None else UnitWeights()
        )
        self.window = window
        self.epoch = 0  # guarded-by: _lock
        self.ingests = 0  # guarded-by: _lock
        #: Recoveries from a failed incremental extension (full rebuilds).
        self.resyncs = 0  # guarded-by: _lock
        #: Set when the state could not be resynchronised with the
        #: store; queries fail loudly rather than serve a stale graph.
        self._poisoned: Optional[BaseException] = None  # guarded-by: _lock
        # Reentrant: the version properties lock internally and must
        # stay callable from code that already holds the lock.
        self._lock = threading.RLock()
        self.result_cache = LRUCache(result_cache_entries)
        self.node_cache = LRUCache(
            node_cache_entries,
            copy_in=VertexState.copy,
            copy_out=VertexState.copy,
        )
        self.planner = MemoizingPlanner(self.node_cache, self.weight_fn)
        decomposition, base = self._state_from_store()
        #: Absolute version number of the window's first snapshot.
        self.base_version = base  # guarded-by: _lock
        self.decomposition = decomposition  # guarded-by: _lock
        #: Ingest timestamps *as observed by this service instance*:
        #: versions already in the store at startup are stamped at
        #: init, later versions as their batch lands.  The temporal
        #: ``as_of_timestamp`` queries resolve against this map; the
        #: store itself records no timestamps, so the semantics are
        #: deliberately instance-local (documented in docs/temporal.md).
        self._time_fn = time_fn
        now = time_fn()
        self.version_times: Dict[int, float] = {  # guarded-by: _lock
            version: now
            for version in range(base, base + decomposition.num_snapshots)
        }
        #: Live-tip overlay (PR 9): sub-batch single-edge updates against
        #: the tip, compacted into real batches on a threshold.  Created
        #: lazily on the first update so batch-only deployments pay
        #: nothing; ``None`` also after construction with
        #: ``livetip=False``, where updates are refused.
        self.livetip_enabled = livetip
        self._livetip_policy = CompactionPolicy(
            max_updates=livetip_max_updates,
            max_age_seconds=livetip_max_age,
        )
        self._livetip_max_tracked = livetip_max_tracked
        self._livetip: Optional[LiveTipOverlay] = None  # guarded-by: _lock
        self._compactor: Optional[Compactor] = None  # guarded-by: _lock
        # Appends made through the store handle (by us or any other
        # same-process caller) keep the decomposition in sync.
        self._unsubscribe = store.subscribe(self._on_append)

    def _state_from_store(self) -> Tuple[CommonGraphDecomposition, int]:
        """Rebuild ``(decomposition, base_version)`` from the store."""
        evolving = self.store.load()
        decomposition = CommonGraphDecomposition.from_evolving(evolving)
        base = 0
        n = decomposition.num_snapshots
        if self.window is not None and n > self.window:
            base = n - self.window
            decomposition = decomposition.restrict(base, n - 1)
        return decomposition, base

    def _check_serviceable(self) -> None:  # holds-lock: _lock
        """Raise loudly if the state has diverged from the store."""
        if self._poisoned is not None:
            raise ServiceError(
                "service state out of sync with the store "
                f"(last resync failed: {self._poisoned!r}); "
                "refusing to answer from a stale graph"
            )

    # -- shape ----------------------------------------------------------------
    @property
    def num_versions(self) -> int:
        """Total versions ever ingested (window start + window length)."""
        with self._lock:
            return self.base_version + self.decomposition.num_snapshots

    @property
    def latest_version(self) -> int:
        return self.num_versions - 1

    def close(self) -> None:
        self._unsubscribe()

    # -- ingestion ------------------------------------------------------------
    def ingest(self, batch: DeltaBatch) -> Dict[str, Any]:
        """Append one batch; the store notification updates the state.

        Pending live-tip updates are folded *first* (their own version,
        then the client batch lands on top), so the batch is validated
        against the true tip and receipts stay strictly consecutive —
        a batch never silently swallows or reorders acknowledged
        single-edge updates.  Returns a small receipt (new version,
        epoch, window bounds) for the service response.
        """
        with self._lock:
            compactor = self._compactor
        # compact() outside the state lock: the fold appends through the
        # store, whose notification re-enters _apply_append -> _lock.
        if compactor is not None:
            compactor.compact()
        self.store.append(batch)  # -> _on_append under the hood
        with self._lock:
            latest = self.base_version + self.decomposition.num_snapshots - 1
            return {
                "version": latest,
                "epoch": self.epoch,
                "window_first": self.base_version,
                "window_last": latest,
            }

    def _on_append(self, index: int, batch: DeltaBatch) -> None:
        """Store-change notification: extend incrementally, slide, re-epoch.

        The store notifies *after* the append is durable, so this must
        not leave the state behind the store.  If the incremental path
        fails (or the state was already poisoned), resynchronise with a
        full rebuild from the store; if even that fails, poison the
        state so queries fail loudly instead of answering from a stale
        graph, and re-raise to the appender.
        """
        with obs.phase_span("state", "extend", label=f"batch:{index}"):
            self._apply_append(batch)

    def _apply_append(self, batch: DeltaBatch) -> None:
        with self._lock:
            decomp: Optional[CommonGraphDecomposition] = None
            base = self.base_version
            if self._poisoned is None:
                try:
                    current = self.decomposition
                    tip = current.snapshot_edges(current.num_snapshots - 1)
                    # strict=True: the store validated the batch against
                    # its own tip, so a DeltaError here means *our* tip
                    # is stale — fall through to the rebuild below
                    # rather than silently extending the wrong graph.
                    new_edges = batch.apply(tip, strict=True)
                    decomp = current.extended(new_edges)
                    n = decomp.num_snapshots
                    if self.window is not None and n > self.window:
                        excess = n - self.window
                        decomp = decomp.restrict(excess, n - 1)
                        base += excess
                # lint: allow(error-taxonomy): recovered by the full rebuild below (counted in resyncs); a rebuild failure poisons the state and re-raises loudly
                except Exception:
                    decomp = None
            if decomp is None:
                try:
                    decomp, base = self._state_from_store()
                except Exception as exc:
                    self._poisoned = exc
                    raise
                self.resyncs += 1
                obs.annotate(resync=True)
            self._poisoned = None
            self.decomposition = decomp
            self.base_version = base
            if self._livetip is not None:
                # Re-anchor the overlay on the new tip.  After our own
                # compaction this empties the log; after a foreign
                # append it replays pending updates (dropping ones the
                # new tip already satisfies) so acknowledged updates
                # are never lost.
                tip = decomp.snapshot_edges(decomp.num_snapshots - 1)
                self._livetip.rebase_onto(
                    tip, base + decomp.num_snapshots - 1
                )
            now = self._time_fn()
            for version in range(base, base + decomp.num_snapshots):
                self.version_times.setdefault(version, now)
            for version in [v for v in self.version_times if v < base]:
                del self.version_times[version]  # slid out of the window
            self.epoch += 1
            self.ingests += 1
            epoch = self.epoch
        # Entries keyed with older epochs can never hit again; free them.
        self.result_cache.purge(lambda key: key[-1] != epoch)
        self.node_cache.purge(lambda key: key[2] != epoch)

    # -- live-tip updates ----------------------------------------------------
    def _ensure_livetip_locked(
        self,
    ) -> Tuple[LiveTipOverlay, Compactor]:  # holds-lock: _lock
        """Create the overlay/compactor pair on first use."""
        if not self.livetip_enabled:
            raise ServiceError(
                "live-tip updates are disabled on this service "
                "(constructed with livetip=False)"
            )
        if self._livetip is None or self._compactor is None:
            decomp = self.decomposition
            tip = decomp.snapshot_edges(decomp.num_snapshots - 1)
            self._livetip = LiveTipOverlay(
                tip, decomp.num_vertices,
                self.base_version + decomp.num_snapshots - 1,
                weight_fn=self.weight_fn,
                max_tracked=self._livetip_max_tracked,
                time_fn=self._time_fn,
            )
            self._compactor = Compactor(
                self._livetip, self.store.append,
                policy=self._livetip_policy, time_fn=self._time_fn,
            )
        return self._livetip, self._compactor

    def update(
        self, kind: str, u: Optional[int] = None, v: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Absorb one single-edge update (or force a fold); returns a receipt.

        ``insert``/``delete`` go through the overlay's exact repair and
        return sub-millisecond; ``compact`` folds the pending log into
        a real batch now.  A threshold-due fold runs inline after the
        triggering update — deterministically at the same point of the
        update stream on every replica, which is what keeps fleet
        fan-out receipts comparable.
        """
        if kind == "compact":
            if u is not None or v is not None:
                raise ProtocolError("a compact update carries no edge")
            return self.compact_tip()
        if u is None or v is None:
            raise ProtocolError(f"a {kind!r} update requires an edge")
        with self._lock:
            self._check_serviceable()
            overlay, compactor = self._ensure_livetip_locked()
        # The overlay lock serialises the mutation; the state lock is
        # deliberately *not* held here so queries capture freely while
        # the repair pushes.
        receipt = overlay.apply_update(kind, int(u), int(v))
        fold = compactor.maybe_compact()
        result = {
            "kind": kind,
            "edge": [int(u), int(v)],
            "seq": receipt["seq"],
            "compacted": bool(fold is not None and fold["compacted"]),
            "updates_folded": 0 if fold is None else fold["updates_folded"],
        }
        with self._lock:
            result.update({
                "tip_version": overlay.tip_version,
                "overlay_depth": overlay.depth,
                "epoch": self.epoch,
            })
        return result

    def compact_tip(self) -> Dict[str, Any]:
        """Fold pending live-tip updates into the TG now (receipt)."""
        with self._lock:
            self._check_serviceable()
            overlay, compactor = self._ensure_livetip_locked()
        fold = compactor.compact()
        with self._lock:
            return {
                "kind": "compact",
                "seq": overlay.seq,
                "compacted": fold["compacted"],
                "updates_folded": fold["updates_folded"],
                "tip_version": overlay.tip_version,
                "overlay_depth": overlay.depth,
                "epoch": self.epoch,
            }

    # -- queries ------------------------------------------------------------
    def query(
        self,
        algorithm: str,
        source: int,
        first: Optional[int] = None,
        last: Optional[int] = None,
    ) -> QueryAnswer:
        """Answer a range query, memoizing whole results and node states.

        When the live-tip overlay holds pending updates and the range
        ends at the tip, the tip snapshot's values are *patched* from
        the overlay's repaired state — captured under the same lock
        hold as the decomposition, so the answer is exactly "TG at
        history, overlay at tip" for one consistent instant.  Patched
        values never enter the result cache (the cache stays pure-TG
        and epoch-keyed; the overlay moves without epoch bumps).
        """
        alg = get_algorithm(algorithm)  # raises AlgorithmError if unknown
        with self._lock:
            self._check_serviceable()
            decomposition = self.decomposition
            epoch = self.epoch
            base = self.base_version
            latest = base + decomposition.num_snapshots - 1
            patch: Optional[TipCapture] = None
            if self._livetip is not None and (last is None or last == latest):
                patch = self._livetip.capture(alg, source,
                                              tip_version=latest)
        if first is None:
            first = base
        if last is None:
            last = latest
        if not 0 <= source < decomposition.num_vertices:
            raise ServiceError(
                f"source {source} out of range "
                f"[0, {decomposition.num_vertices})"
            )
        if not base <= first <= last <= latest:
            # ProtocolError (a ServiceError subclass): the request named
            # versions this window cannot answer — a client mistake, not
            # a server fault, so the client sees a clean payload.
            raise ProtocolError(
                f"version range [{first}, {last}] outside the window "
                f"[{base}, {latest}]"
            )
        answer = self._answer_range(
            decomposition, epoch, base, alg, source, first, last
        )
        if patch is not None and last == latest:
            values = list(answer.values)
            values[-1] = patch.resolve()
            answer.values = values
            answer.livetip_seq = patch.seq
        return answer

    def _answer_range(
        self,
        decomposition: CommonGraphDecomposition,
        epoch: int,
        base: int,
        alg: MonotonicAlgorithm,
        source: int,
        first: int,
        last: int,
    ) -> QueryAnswer:
        """Answer one validated range on a captured state snapshot.

        All evaluations of a temporal batch run through here against
        the *same* ``(decomposition, epoch, base)`` triple, so a batch
        shares the result cache and the memoizing planner's node cache
        with plain queries — and an ingest landing mid-batch can never
        mix epochs within one answer.
        """
        answer = QueryAnswer(
            algorithm=alg.name, source=source, first=first, last=last,
            epoch=epoch,
        )
        cached = self.result_cache.get(answer.key())
        if cached is not None:
            answer.values = [values.copy() for values in cached]
            answer.from_cache = True
            obs.annotate(result_cache="hit")
            return answer
        obs.annotate(result_cache="miss")
        planned = self.planner.evaluate(
            decomposition, alg, source,
            first - base, last - base, epoch,
        )
        answer.values = planned.values
        answer.node_hits = planned.node_hits
        answer.node_misses = planned.node_misses
        answer.additions_processed = planned.additions_processed
        self.result_cache.put(
            answer.key(), [values.copy() for values in answer.values]
        )
        return answer

    def offline_answer(
        self, algorithm: str, source: int, first: int, last: int
    ) -> QueryAnswer:
        """Cache-free fallback: a plain offline work-sharing evaluation.

        The server's degraded path — no planner, no caches, just the
        stock evaluator on the restricted window.  Values are identical
        to :meth:`query`'s; only the reuse accounting is absent.
        """
        from repro.core.engine import WorkSharingEvaluator

        alg = get_algorithm(algorithm)
        with self._lock:
            self._check_serviceable()
            decomposition = self.decomposition
            epoch = self.epoch
            base = self.base_version
            latest = base + decomposition.num_snapshots - 1
            patch: Optional[TipCapture] = None
            if self._livetip is not None and last == latest:
                patch = self._livetip.capture(alg, source,
                                              tip_version=latest)
        window = decomposition.restrict(first - base, last - base)
        result = WorkSharingEvaluator(
            window, alg, source,
            weight_fn=self.weight_fn,
        ).run()
        answer = QueryAnswer(
            algorithm=alg.name, source=source,
            first=first, last=last, epoch=epoch,
            values=list(result.snapshot_values),
        )
        if patch is not None:
            answer.values[-1] = patch.resolve()
            answer.livetip_seq = patch.seq
        return answer

    # -- temporal queries ----------------------------------------------------
    def _capture(self) -> Tuple[CommonGraphDecomposition, int, int,
                                Dict[int, float]]:
        """One atomic snapshot of the mutable state for a temporal batch."""
        with self._lock:
            self._check_serviceable()
            return (self.decomposition, self.epoch, self.base_version,
                    dict(self.version_times))

    def _capture_with_patch(
        self, alg: MonotonicAlgorithm, source: int,
    ) -> Tuple[CommonGraphDecomposition, int, int, Dict[int, float],
               Optional[TipCapture]]:
        """:meth:`_capture` plus the live-tip patch, one lock hold.

        The patch (``None`` when the overlay is clean or absent) is
        what makes a temporal batch see "overlay at tip, TG at
        history" consistently: every range the engine descends that
        ends at the captured tip gets its last snapshot's values
        replaced by the overlay's repaired state.
        """
        with self._lock:
            self._check_serviceable()
            decomposition = self.decomposition
            base = self.base_version
            latest = base + decomposition.num_snapshots - 1
            patch: Optional[TipCapture] = None
            if self._livetip is not None:
                patch = self._livetip.capture(alg, source,
                                              tip_version=latest)
            return (decomposition, self.epoch, base,
                    dict(self.version_times), patch)

    @staticmethod
    def _structural_diff(
        decomposition: CommonGraphDecomposition, base: int,
    ) -> Callable[[int, int], DeltaBatch]:
        """``VersionController.diff`` semantics on the captured window.

        Identical construction (surplus-set difference; the common
        graph cancels), computed against the window decomposition so a
        temporal diff never races an ingest.
        """
        def diff(a: int, b: int) -> DeltaBatch:
            surplus_a = decomposition.direct_hop_batch(a - base)
            surplus_b = decomposition.direct_hop_batch(b - base)
            return DeltaBatch(additions=surplus_b - surplus_a,
                              deletions=surplus_a - surplus_b)

        return diff

    def temporal(
        self, algorithm: str, source: int, specs: Sequence[TemporalSpec],
    ) -> TemporalAnswer:
        """Answer a temporal batch through the cached evaluation path.

        Every coalesced range the engine descends goes through
        :meth:`_answer_range` — the result cache and the memoizing
        planner — against one atomically captured
        ``(decomposition, epoch, base)``, so a batch costs one TG
        descent per merged range at most, fewer when caches hit.
        """
        alg = get_algorithm(algorithm)
        decomposition, epoch, base, version_times, patch = (
            self._capture_with_patch(alg, source)
        )
        latest = base + decomposition.num_snapshots - 1

        def evaluate_range(first: int, last: int) -> List[np.ndarray]:
            values = self._answer_range(
                decomposition, epoch, base, alg, source, first, last
            ).values
            if patch is not None and last == latest:
                values = list(values)
                values[-1] = patch.resolve()
            return values

        engine = TemporalEngine(
            algorithm=alg,
            source=source,
            num_vertices=decomposition.num_vertices,
            window_first=base,
            window_last=latest,
            evaluate_range=evaluate_range,
            structural_diff=self._structural_diff(decomposition, base),
            version_times=version_times,
        )
        answer = engine.run(specs)
        answer.epoch = epoch
        return answer

    def temporal_offline(
        self, algorithm: str, source: int, specs: Sequence[TemporalSpec],
    ) -> TemporalAnswer:
        """Cache-free temporal fallback (the server's degraded path).

        Ranges are still coalesced — each merged range is one plain
        offline work-sharing evaluation — but no planner or cache is
        touched, mirroring :meth:`offline_answer`.
        """
        from repro.core.engine import WorkSharingEvaluator

        alg = get_algorithm(algorithm)
        decomposition, epoch, base, version_times, patch = (
            self._capture_with_patch(alg, source)
        )
        latest = base + decomposition.num_snapshots - 1

        def evaluate_range(first: int, last: int) -> List[np.ndarray]:
            window = decomposition.restrict(first - base, last - base)
            result = WorkSharingEvaluator(
                window, alg, source, weight_fn=self.weight_fn,
            ).run()
            values = list(result.snapshot_values)
            if patch is not None and last == latest:
                values[-1] = patch.resolve()
            return values

        engine = TemporalEngine(
            algorithm=alg,
            source=source,
            num_vertices=decomposition.num_vertices,
            window_first=base,
            window_last=latest,
            evaluate_range=evaluate_range,
            structural_diff=self._structural_diff(decomposition, base),
            version_times=version_times,
        )
        answer = engine.run(specs)
        answer.epoch = epoch
        return answer

    # -- status ------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The health/status payload (superset of ``repro info --json``)."""
        with self._lock:
            decomposition = self.decomposition
            epoch = self.epoch
            base = self.base_version
            ingests = self.ingests
            resyncs = self.resyncs
            poisoned = self._poisoned is not None
            overlay = self._livetip
            compactor = self._compactor
        livetip: Dict[str, Any] = {
            "enabled": self.livetip_enabled,
            "overlay_depth": 0,
            "pending_updates": 0,
            "updates_total": 0,
            "tracked_states": 0,
            "compactions": 0,
            "updates_folded": 0,
            "last_compaction_version": None,
        }
        if overlay is not None:
            snap = overlay.snapshot()
            livetip.update({
                "tip_version": snap["tip_version"],
                "overlay_depth": snap["overlay_depth"],
                "pending_updates": snap["overlay_depth"],
                "updates_total": snap["updates_total"],
                "update_counts": snap["update_counts"],
                "tracked_states": snap["tracked_states"],
            })
        if compactor is not None:
            livetip.update(compactor.snapshot())
        payload = store_summary(self.store, decomposition=decomposition)
        payload.update({
            "serving": not poisoned,
            "poisoned": poisoned,
            "epoch": epoch,
            "ingests": ingests,
            "resyncs": resyncs,
            "window": self.window,
            "window_first": base,
            "window_last": base + decomposition.num_snapshots - 1,
            "window_common_edges": len(decomposition.common),
            "result_cache": {
                "entries": len(self.result_cache),
                "max_entries": self.result_cache.max_entries,
                **self.result_cache.stats.as_dict(),
            },
            "node_cache": {
                "entries": len(self.node_cache),
                "max_entries": self.node_cache.max_entries,
                **self.node_cache.stats.as_dict(),
            },
            "livetip": livetip,
            "observability": obs.describe(),
        })
        return payload

    # -- metrics -----------------------------------------------------------
    def register_metrics(self) -> Callable[[], None]:
        """Publish this state's health into the active metrics registry.

        Attaches a scrape-time collector (cache hit rates, epoch,
        resync/poisoned counts) to the configured observability runtime;
        a no-op when observability is disabled.  Returns the
        unsubscribe callable.
        """
        return obs.register_collector(self._collect_metrics)

    def _collect_metrics(self, registry: "obs.MetricsRegistry") -> None:
        """Scrape-time bridge: CacheStats and state counters → gauges."""
        with self._lock:
            epoch = self.epoch
            ingests = self.ingests
            resyncs = self.resyncs
            poisoned = self._poisoned is not None
            overlay = self._livetip

        def gauge(name: str, value: float, **labels: str) -> None:
            obs.instruments.family(registry, name).labels(**labels).set(value)

        gauge("repro_epoch", epoch)
        gauge("repro_ingests", ingests)
        gauge("repro_resyncs", resyncs)
        gauge("repro_poisoned", 1 if poisoned else 0)
        if overlay is not None:
            gauge("repro_livetip_depth", overlay.depth)
            gauge("repro_livetip_tracked_states", overlay.tracked_states)
        for label, cache in (("result", self.result_cache),
                             ("node", self.node_cache)):
            stats = cache.stats
            gauge("repro_cache_hit_rate", stats.hit_rate, cache=label)
            gauge("repro_cache_hits", stats.hits, cache=label)
            gauge("repro_cache_misses", stats.misses, cache=label)
            gauge("repro_cache_evictions", stats.evictions, cache=label)
            gauge("repro_cache_invalidations", stats.invalidations,
                  cache=label)
            gauge("repro_cache_entries", len(cache), cache=label)
