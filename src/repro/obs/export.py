"""The ``/metrics`` HTTP endpoint and span-log reading helpers.

:class:`MetricsServer` publishes a :class:`~repro.obs.metrics
.MetricsRegistry` over HTTP on a background thread:

* ``GET /metrics`` — Prometheus text exposition format;
* ``GET /metrics.json`` — the JSON snapshot (same data, nested);
* ``GET /healthz`` — liveness probe (``ok``).

It is a stock :class:`http.server.ThreadingHTTPServer`; the registry is
fully thread-safe, so scrapes never synchronise with the asyncio query
server beyond each metric's own per-child lock.

The module also holds the span-log helpers used by ``repro obs tail``:
:func:`read_spans` parses a JSON-lines span file and
:func:`render_trace_trees` formats spans as indented per-trace trees.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer", "read_spans", "render_trace_trees"]

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves one registry; instantiated per request by the server."""

    registry: MetricsRegistry  # set by MetricsServer on the handler class

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.registry.render_prometheus().encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/metrics.json":
            body = json.dumps(
                self.registry.snapshot(), indent=2, sort_keys=True
            ).encode("utf-8")
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            self._reply(200, "text/plain", b"ok\n")
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Scrapes are high-frequency noise; stay quiet."""


class MetricsServer:
    """Serve a registry over HTTP on a daemon thread.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  Usable as a context manager.
    """

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.registry = registry
        self.host = host
        self.port: Optional[int] = None
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsServer":
        if self._server is not None:
            raise ObservabilityError("metrics server already started")
        handler = type(
            "_BoundMetricsHandler", (_MetricsHandler,),
            {"registry": self.registry},
        )
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = f"on {self.url}" if self._server is not None else "stopped"
        return f"MetricsServer({state})"


# -- span-log helpers --------------------------------------------------------

def read_spans(path: Union[str, Path],
               offset: int = 0) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a JSON-lines span file from byte ``offset``.

    Returns ``(spans, new_offset)`` so a follower can resume where it
    stopped.  A trailing partial line (a writer mid-append) is left for
    the next read rather than reported as corruption.
    """
    path = Path(path)
    spans: List[Dict[str, Any]] = []
    with path.open("rb") as fh:
        fh.seek(offset)
        data = fh.read()
    end = data.rfind(b"\n") + 1
    for raw in data[:end].splitlines():
        line = raw.strip()
        if not line:
            continue
        try:
            doc = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ObservabilityError(
                f"{path}: malformed span line: {exc}"
            ) from exc
        if not isinstance(doc, dict):
            raise ObservabilityError(f"{path}: span line is not an object")
        spans.append(doc)
    return spans, offset + end


def render_trace_trees(spans: List[Dict[str, Any]],
                       limit: Optional[int] = None) -> str:
    """Format spans as one indented tree per trace, oldest trace first.

    Orphan spans (parent not in the file, e.g. a truncated log) are
    promoted to roots rather than dropped.
    """
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    order: List[str] = []
    for span in spans:
        trace_id = str(span.get("trace_id", "?"))
        if trace_id not in by_trace:
            by_trace[trace_id] = []
            order.append(trace_id)
        by_trace[trace_id].append(span)
    if limit is not None:
        order = order[-limit:]
    blocks = [
        _render_one_trace(trace_id, by_trace[trace_id]) for trace_id in order
    ]
    return "\n".join(blocks)


def _render_one_trace(trace_id: str, spans: List[Dict[str, Any]]) -> str:
    ids = {str(s.get("span_id")) for s in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        key = str(parent) if parent is not None and str(parent) in ids else None
        children.setdefault(key, []).append(span)
    for kids in children.values():
        kids.sort(key=lambda s: (s.get("start") or 0.0, str(s.get("span_id"))))
    lines = [f"trace {trace_id}"]

    def walk(parent_key: Optional[str], depth: int) -> None:
        for span in children.get(parent_key, []):
            duration = span.get("duration")
            took = f"{duration * 1000:.3f} ms" if duration is not None else "…"
            status = str(span.get("status", "ok"))
            suffix = "" if status == "ok" else f"  [{status}]"
            attrs = span.get("attributes") or {}
            detail = ""
            if attrs:
                pairs = ", ".join(
                    f"{k}={attrs[k]}" for k in sorted(attrs)
                )
                detail = f"  ({pairs})"
            lines.append(
                f"{'  ' * (depth + 1)}{span.get('name', '?')}  "
                f"{took}{suffix}{detail}"
            )
            walk(str(span.get("span_id")), depth + 1)

    walk(None, 0)
    return "\n".join(lines)
