"""repro.obs — tracing, metrics and profiling hooks across the stack.

Three pillars behind one facade:

* a **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges
  and fixed-bucket histograms, exported as a JSON snapshot and as
  Prometheus text format (:mod:`repro.obs.export` serves both over
  HTTP for ``repro serve --metrics``);
* **structured tracing** (:mod:`repro.obs.tracing`) — nestable spans
  with one trace id per query, timed by an injected
  :class:`~repro.obs.clock.Clock` so instrumented algorithm code stays
  clean under the determinism lint rule, with a per-trace sampling knob
  and a JSON-lines span exporter;
* **profiling hooks** (:mod:`repro.obs.hooks`) — a callback registry
  fired at every instrumented phase boundary, modeled on the
  :mod:`repro.faults` hook pattern.

Observability is **off by default**.  Production code calls the
module-level helpers below unconditionally; with no runtime configured
each call is a single ``None`` check (the null backend), so the
disabled overhead is negligible.  :func:`configure` installs a live
runtime (registry + tracer + clock) process-globally;
:func:`repro.testing.reset_observability` tears it down between tests.

Instrumented layers: the work-sharing engine, the kickstarter kernels,
the parallel evaluators, the memoizing planner, the snapshot store's
append path, and the asyncio service front end — every service query
produces one trace whose spans nest server → planner → schedule edges
→ per-hop kernels.

Example::

    from repro import obs

    runtime = obs.configure(sample_rate=1.0)
    ...  # run queries
    print(runtime.registry.render_prometheus())
    for span in runtime.tracer.recent():
        print(span.name, span.duration)
    obs.disable()
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import Any, Callable, Dict, IO, Optional, Type, Union

from repro.errors import ObservabilityError
from repro.obs import hooks as hooks
from repro.obs import instruments as instruments
from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.export import MetricsServer, read_spans, render_trace_trees
from repro.obs.hooks import (
    PhaseEvent,
    ProfilerFn,
    dropped_profilers,
    register_profiler,
    reset_profilers,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.tracing import NULL_SPAN, NullSpan, Span, SpanLike, Tracer

__all__ = [
    # runtime lifecycle
    "ObsRuntime",
    "configure",
    "disable",
    "enabled",
    "current",
    "registry",
    "tracer",
    "describe",
    # instrumentation helpers (the hot path)
    "span",
    "phase_span",
    "phase",
    "annotate",
    "timer",
    "counter_inc",
    "gauge_set",
    "observe",
    "register_collector",
    # hooks
    "PhaseEvent",
    "ProfilerFn",
    "register_profiler",
    "reset_profilers",
    "dropped_profilers",
    # clocks
    "Clock",
    "MonotonicClock",
    "FakeClock",
    # metrics
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    # tracing
    "Tracer",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    # export
    "MetricsServer",
    "read_spans",
    "render_trace_trees",
]


@dataclass
class ObsRuntime:
    """One live observability backend: registry + tracer + clock."""

    registry: MetricsRegistry
    tracer: Tracer
    clock: Clock
    sample_rate: float

    def describe(self) -> Dict[str, Any]:
        """Small health summary for status payloads and tests."""
        return {
            "enabled": True,
            "sample_rate": self.sample_rate,
            "spans_started": self.tracer.started,
            "spans_exported": self.tracer.exported,
            "metric_families": len(self.registry.families()),
        }


_configure_lock = threading.Lock()
_runtime: Optional[ObsRuntime] = None

#: Clock used for phase timing when only profiler hooks are active.
_FALLBACK_CLOCK = MonotonicClock()


def configure(
    *,
    sample_rate: float = 1.0,
    span_sink: Optional[Union[str, Path, IO[str]]] = None,
    clock: Optional[Clock] = None,
    seed: int = 0,
    max_recent_spans: int = 512,
    prime: bool = True,
) -> ObsRuntime:
    """Install a live observability runtime process-globally.

    Replaces any previous runtime (its span sink is closed).  With
    ``prime=True`` the key metric series are pre-created at zero so the
    first scrape already exposes them.  Returns the new runtime.
    """
    global _runtime
    reg = MetricsRegistry()
    spans_total = instruments.family(reg, "repro_spans_total").labels()
    if not isinstance(spans_total, Counter):  # pragma: no cover - table-typed
        raise ObservabilityError("repro_spans_total must be a counter")

    def count_span(_span: Span) -> None:
        spans_total.inc()

    runtime = ObsRuntime(
        registry=reg,
        tracer=Tracer(
            clock=clock,
            sample_rate=sample_rate,
            sink=span_sink,
            seed=seed,
            max_recent=max_recent_spans,
            on_finish=count_span,
        ),
        clock=clock if clock is not None else MonotonicClock(),
        sample_rate=sample_rate,
    )
    if prime:
        instruments.prime(reg)
    with _configure_lock:
        previous, _runtime = _runtime, runtime
    if previous is not None:
        previous.tracer.close()
    return runtime


def disable() -> None:
    """Tear the runtime down; helpers become no-ops again."""
    global _runtime
    with _configure_lock:
        previous, _runtime = _runtime, None
    if previous is not None:
        previous.tracer.close()


def enabled() -> bool:
    return _runtime is not None


def current() -> Optional[ObsRuntime]:
    """The active runtime, or ``None`` when observability is off."""
    return _runtime


def registry() -> MetricsRegistry:
    """The active registry; raises when observability is disabled."""
    runtime = _runtime
    if runtime is None:
        raise ObservabilityError(
            "observability is not configured; call repro.obs.configure()"
        )
    return runtime.registry


def tracer() -> Tracer:
    """The active tracer; raises when observability is disabled."""
    runtime = _runtime
    if runtime is None:
        raise ObservabilityError(
            "observability is not configured; call repro.obs.configure()"
        )
    return runtime.tracer


def describe() -> Dict[str, Any]:
    """Health summary of the runtime (``{"enabled": False}`` when off)."""
    runtime = _runtime
    if runtime is None:
        return {"enabled": False}
    return runtime.describe()


# -- instrumentation helpers (hot path) --------------------------------------

class _NullContext:
    """Shared no-op context manager for disabled instrumentation."""

    def __enter__(self) -> NullSpan:
        return NULL_SPAN

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class _PhaseSpan:
    """Context manager uniting a span, a phase histogram and the hooks.

    Allocated only when a runtime or a profiler is active; the disabled
    path returns the shared :data:`_NULL_CONTEXT` instead.
    """

    __slots__ = ("_runtime", "_layer", "_phase", "_label", "_attributes",
                 "_start", "_span_context", "span")

    def __init__(self, runtime: Optional[ObsRuntime], layer: str, phase: str,
                 label: str, attributes: Dict[str, Any]) -> None:
        self._runtime = runtime
        self._layer = layer
        self._phase = phase
        self._label = label
        self._attributes = attributes
        self._start = 0.0
        self._span_context: Any = None
        self.span: SpanLike = NULL_SPAN

    def __enter__(self) -> SpanLike:
        runtime = self._runtime
        clock = runtime.clock if runtime is not None else _FALLBACK_CLOCK
        self._start = clock.now()
        if runtime is not None:
            attributes = self._attributes
            if self._label:
                attributes = {"label": self._label, **attributes}
            self._span_context = runtime.tracer.span(
                f"{self._layer}.{self._phase}", **attributes
            )
            self.span = self._span_context.__enter__()
        return self.span

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        runtime = self._runtime
        clock = runtime.clock if runtime is not None else _FALLBACK_CLOCK
        seconds = clock.now() - self._start
        if self._span_context is not None:
            self._span_context.__exit__(exc_type, exc, tb)
        if runtime is not None:
            _observe_in(runtime.registry, "repro_phase_seconds", seconds,
                        layer=self._layer, phase=self._phase)
        hooks.fire(PhaseEvent(self._layer, self._phase, self._label, seconds))
        return None


class _HistTimer:
    """Times a block into a declared histogram (e.g. query latency)."""

    __slots__ = ("_runtime", "_name", "_labels", "_start")

    def __init__(self, runtime: ObsRuntime, name: str,
                 labels: Dict[str, str]) -> None:
        self._runtime = runtime
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_HistTimer":
        self._start = self._runtime.clock.now()
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        seconds = self._runtime.clock.now() - self._start
        _observe_in(self._runtime.registry, self._name, seconds,
                    **self._labels)
        return None


def span(name: str, **attributes: Any) -> Any:
    """A plain tracing span (no phase histogram, no hook event)."""
    runtime = _runtime
    if runtime is None:
        return _NULL_CONTEXT
    return runtime.tracer.span(name, **attributes)


def timer(name: str, **labels: str) -> Any:
    """Context manager timing its block into histogram ``name``."""
    runtime = _runtime
    if runtime is None:
        return _NULL_CONTEXT
    return _HistTimer(runtime, name, labels)


def annotate(**attributes: Any) -> None:
    """Attach attributes to the currently active span, if any."""
    runtime = _runtime
    if runtime is None:
        return
    runtime.tracer.current().annotate(**attributes)


def phase_span(layer: str, phase: str, label: str = "",
               **attributes: Any) -> Any:
    """The standard phase boundary: span + duration histogram + hooks.

    Use as ``with obs.phase_span("planner", "edge", label=...) as sp:``;
    the yielded span accepts :meth:`~repro.obs.tracing.Span.annotate`
    even when disabled (it is then the shared null span).
    """
    runtime = _runtime
    if runtime is None and not hooks.has_profilers():
        return _NULL_CONTEXT
    return _PhaseSpan(runtime, layer, phase, label, attributes)


def phase(layer: str, phase_name: str, label: str = "",
          seconds: Optional[float] = None) -> None:
    """A point phase event: histogram (if timed) + profiler hooks."""
    runtime = _runtime
    if runtime is None and not hooks.has_profilers():
        return
    if runtime is not None and seconds is not None:
        _observe_in(runtime.registry, "repro_phase_seconds", seconds,
                    layer=layer, phase=phase_name)
    hooks.fire(PhaseEvent(layer, phase_name, label, seconds))


def counter_inc(name: str, amount: Union[int, float] = 1,
                **labels: str) -> None:
    """Increment a declared counter (no-op while disabled)."""
    runtime = _runtime
    if runtime is None:
        return
    child = instruments.family(runtime.registry, name).labels(**labels)
    if not isinstance(child, Counter):
        raise ObservabilityError(f"{name!r} is not a counter")
    child.inc(amount)


def gauge_set(name: str, value: Union[int, float], **labels: str) -> None:
    """Set a declared gauge (no-op while disabled)."""
    runtime = _runtime
    if runtime is None:
        return
    child = instruments.family(runtime.registry, name).labels(**labels)
    if not isinstance(child, Gauge):
        raise ObservabilityError(f"{name!r} is not a gauge")
    child.set(value)


def observe(name: str, value: Union[int, float], **labels: str) -> None:
    """Observe into a declared histogram (no-op while disabled)."""
    runtime = _runtime
    if runtime is None:
        return
    _observe_in(runtime.registry, name, value, **labels)


def _observe_in(reg: MetricsRegistry, name: str, value: Union[int, float],
                **labels: str) -> None:
    child = instruments.family(reg, name).labels(**labels)
    if not isinstance(child, Histogram):
        raise ObservabilityError(f"{name!r} is not a histogram")
    child.observe(value)


def register_collector(
    collector: Callable[[MetricsRegistry], None],
) -> Callable[[], None]:
    """Attach a scrape-time collector to the active registry.

    With observability disabled this is a no-op (the returned
    unsubscribe does nothing), so callers may register unconditionally.
    """
    runtime = _runtime
    if runtime is None:
        return lambda: None
    return runtime.registry.register_collector(collector)


def reset() -> None:
    """Full teardown for tests: runtime gone, profilers cleared."""
    disable()
    reset_profilers()
