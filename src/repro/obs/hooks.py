"""Profiling hooks: a callback registry fired at phase boundaries.

Modeled on the :mod:`repro.faults` hook pattern: production code calls
a module-level function at well-known points, and with nothing
registered that call is a single emptiness check.  Where
:func:`repro.faults.task_check` *injects* behaviour, a profiler
callback only *observes* it — the engine, the parallel evaluators, the
planner, the store and the server all fire :class:`PhaseEvent` records
at their phase boundaries, and registered profilers (a flame-graph
builder, a slow-phase logger, a test assertion) consume them.

Callbacks must be cheap and must not raise; a raising profiler is
unregistered on the spot rather than allowed to take down the
instrumented operation (the failure is remembered in
:func:`dropped_profilers` so tests can assert on it).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = [
    "PhaseEvent",
    "ProfilerFn",
    "dropped_profilers",
    "fire",
    "has_profilers",
    "register_profiler",
    "reset_profilers",
]


@dataclass(frozen=True)
class PhaseEvent:
    """One phase boundary: which layer, which phase, how long.

    ``seconds`` is ``None`` for point events (an outcome recorded, a
    cache purge) and the measured duration for span-like phases.
    """

    layer: str
    phase: str
    label: str = ""
    seconds: Optional[float] = None

    def key(self) -> Tuple[str, str]:
        return (self.layer, self.phase)


ProfilerFn = Callable[[PhaseEvent], None]

_registry_lock = threading.Lock()
#: Immutable snapshot swapped under the lock; readers never lock.
_profilers: Tuple[ProfilerFn, ...] = ()
#: Failure log of unregistered profilers; mutated under _registry_lock.
_dropped: List[str] = []


def register_profiler(fn: ProfilerFn) -> Callable[[], None]:
    """Register a phase callback; returns its unsubscribe function."""
    global _profilers
    with _registry_lock:
        _profilers = (*_profilers, fn)

    def unsubscribe() -> None:
        _remove(fn)

    return unsubscribe


def _remove(fn: ProfilerFn) -> None:
    global _profilers
    with _registry_lock:
        _profilers = tuple(p for p in _profilers if p is not fn)


def has_profilers() -> bool:
    return bool(_profilers)


def fire(event: PhaseEvent) -> None:
    """Deliver ``event`` to every registered profiler."""
    for profiler in _profilers:
        try:
            profiler(event)
        except Exception as exc:
            # A broken observer must never break the observed operation:
            # drop it, remember why, and keep serving.
            _remove(profiler)
            with _registry_lock:
                _dropped.append(f"{profiler!r}: {exc!r}")


def dropped_profilers() -> List[str]:
    """Descriptions of profilers unregistered for raising."""
    with _registry_lock:
        return list(_dropped)


def reset_profilers() -> None:
    """Drop every registered profiler and the failure log (for tests)."""
    global _profilers
    with _registry_lock:
        _profilers = ()
        _dropped.clear()
