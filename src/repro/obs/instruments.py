"""The canonical instrument table: every metric the stack emits.

Central declarations keep names, types, label sets and bucket layouts
consistent between the code that updates a metric and the exporters
that publish it — the facade helpers (:func:`repro.obs.counter_inc`
and friends) look instruments up here, so an instrumented call site is
one line and cannot drift from the documented schema.

Naming follows Prometheus conventions: ``repro_`` prefix, ``_total``
suffix on counters, base-unit (seconds) histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.obs.metrics import DEFAULT_BUCKETS, MetricFamily, MetricsRegistry

__all__ = ["INSTRUMENTS", "InstrumentSpec", "family", "lookup", "prime"]


@dataclass(frozen=True)
class InstrumentSpec:
    """Declared shape of one metric family."""

    kind: str
    help: str
    labelnames: Tuple[str, ...] = ()
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS


INSTRUMENTS: Dict[str, InstrumentSpec] = {
    # -- service front end --------------------------------------------------
    "repro_requests_total": InstrumentSpec(
        "counter", "Requests handled by the service, by operation.",
        ("op",),
    ),
    "repro_errors_total": InstrumentSpec(
        "counter", "Requests answered with an error response.",
    ),
    "repro_coalesced_total": InstrumentSpec(
        "counter", "Queries answered by joining an identical in-flight one.",
    ),
    "repro_query_seconds": InstrumentSpec(
        "histogram", "End-to-end service query latency in seconds.",
    ),
    "repro_ingest_seconds": InstrumentSpec(
        "histogram", "End-to-end service ingest latency in seconds.",
    ),
    # -- overload protection ------------------------------------------------
    "repro_admission_shed_total": InstrumentSpec(
        "counter",
        "Requests shed by admission control, by class and reason.",
        ("kind", "reason"),
    ),
    "repro_admission_depth": InstrumentSpec(
        "gauge", "Requests currently queued for an execution slot.",
        ("kind",),
    ),
    "repro_admission_active": InstrumentSpec(
        "gauge", "Requests currently holding an execution slot.",
        ("kind",),
    ),
    "repro_admission_queue_high_water": InstrumentSpec(
        "gauge", "Deepest admission queue observed since start.",
        ("kind",),
    ),
    "repro_breaker_state": InstrumentSpec(
        "gauge",
        "Circuit breaker state (0 closed, 1 half-open, 2 open).",
        ("breaker",),
    ),
    "repro_breaker_transitions_total": InstrumentSpec(
        "counter", "Circuit breaker state transitions, by target state.",
        ("breaker", "to"),
    ),
    "repro_drain_seconds": InstrumentSpec(
        "histogram", "Time spent waiting for in-flight work during drain.",
    ),
    # -- execution outcomes -------------------------------------------------
    "repro_task_outcomes_total": InstrumentSpec(
        "counter",
        "TaskOutcome records (ok/retried/degraded) by component.",
        ("component", "status"),
    ),
    # -- caches (refreshed by the service-state collector) ------------------
    "repro_cache_hit_rate": InstrumentSpec(
        "gauge", "Lifetime hit rate of a service cache.", ("cache",),
    ),
    "repro_cache_hits": InstrumentSpec(
        "gauge", "Lifetime hits of a service cache.", ("cache",),
    ),
    "repro_cache_misses": InstrumentSpec(
        "gauge", "Lifetime misses of a service cache.", ("cache",),
    ),
    "repro_cache_evictions": InstrumentSpec(
        "gauge", "LRU evictions of a service cache.", ("cache",),
    ),
    "repro_cache_invalidations": InstrumentSpec(
        "gauge", "Epoch-purge invalidations of a service cache.", ("cache",),
    ),
    "repro_cache_entries": InstrumentSpec(
        "gauge", "Current entries in a service cache.", ("cache",),
    ),
    # -- service state ------------------------------------------------------
    "repro_epoch": InstrumentSpec(
        "gauge", "Current decomposition epoch of the service state.",
    ),
    "repro_ingests": InstrumentSpec(
        "gauge", "Batches ingested into the live decomposition.",
    ),
    "repro_resyncs": InstrumentSpec(
        "gauge", "Full rebuilds after a failed incremental extension.",
    ),
    "repro_poisoned": InstrumentSpec(
        "gauge", "1 when the state diverged from the store, else 0.",
    ),
    # -- temporal analytics -------------------------------------------------
    "repro_temporal_queries_total": InstrumentSpec(
        "counter", "Temporal specs answered, by query mode.",
        ("mode",),
    ),
    "repro_temporal_snapshots_scanned_total": InstrumentSpec(
        "counter",
        "Snapshots materialised by temporal evaluation (one per version "
        "in each coalesced range; the coalescing win is this counter "
        "staying flat while specs pile up).",
    ),
    "repro_temporal_range_width": InstrumentSpec(
        "histogram",
        "Width (snapshots) of each coalesced range a temporal batch "
        "evaluated.",
        buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
    ),
    # -- live tip (per-update overlay + compaction) -------------------------
    "repro_livetip_updates_total": InstrumentSpec(
        "counter", "Single-edge updates absorbed by the live-tip overlay.",
        ("kind",),
    ),
    "repro_livetip_update_seconds": InstrumentSpec(
        "histogram", "End-to-end service update latency in seconds.",
    ),
    "repro_livetip_repair_frontier": InstrumentSpec(
        "histogram",
        "Vertices touched (updated + trimmed) repairing one tracked "
        "state for one update.",
        buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                 256.0, 1024.0),
    ),
    "repro_livetip_depth": InstrumentSpec(
        "gauge", "Pending (not yet compacted) updates in the overlay log.",
    ),
    "repro_livetip_tracked_states": InstrumentSpec(
        "gauge", "Converged per-(algorithm, source) states the overlay "
                 "keeps repaired.",
    ),
    "repro_livetip_compactions_total": InstrumentSpec(
        "counter", "Update-log folds into the Triangular Grid.",
    ),
    # -- storage ------------------------------------------------------------
    "repro_store_appends_total": InstrumentSpec(
        "counter", "Durable batch appends committed by the snapshot store.",
    ),
    # -- fleet (router + replicas) ------------------------------------------
    "repro_fleet_requests_total": InstrumentSpec(
        "counter", "Requests handled by the fleet router, by operation.",
        ("op",),
    ),
    "repro_fleet_replica_up": InstrumentSpec(
        "gauge", "1 while a replica is in rotation, else 0.",
        ("replica",),
    ),
    "repro_fleet_ejections_total": InstrumentSpec(
        "counter",
        "Replicas taken out of rotation, by replica and reason.",
        ("replica", "reason"),
    ),
    "repro_fleet_rebalance_total": InstrumentSpec(
        "counter",
        "Hash-ring membership changes (ejections and restores).",
    ),
    "repro_fleet_failover_total": InstrumentSpec(
        "counter", "Queries retried on another replica after a failure.",
    ),
    "repro_fleet_fanout_lag_seconds": InstrumentSpec(
        "histogram",
        "Spread between the fastest and slowest ingest fan-out leg.",
    ),
    # -- autopilot (closed-loop fleet control) ------------------------------
    "repro_autopilot_cycles_total": InstrumentSpec(
        "counter", "Observe-diagnose-act cycles the autopilot completed.",
    ),
    "repro_autopilot_decisions_total": InstrumentSpec(
        "counter", "Autopilot decisions, by diagnosed fleet condition.",
        ("condition",),
    ),
    "repro_autopilot_actions_total": InstrumentSpec(
        "counter", "Autopilot actions attempted, by verb and outcome.",
        ("verb", "outcome"),
    ),
    "repro_autopilot_holds_total": InstrumentSpec(
        "counter",
        "Decisions where an indicated action was held back, by reason "
        "(cooldown, bounds, action-in-flight, scrape failure).",
        ("reason",),
    ),
    "repro_autopilot_membership_changes_total": InstrumentSpec(
        "counter", "Successful grow/shrink actions (fleet size changes).",
    ),
    "repro_autopilot_pressure": InstrumentSpec(
        "gauge", "EWMA-smoothed overload pressure the autopilot acts on.",
    ),
    "repro_autopilot_replicas": InstrumentSpec(
        "gauge", "Replicas the autopilot observes, by state.",
        ("state",),
    ),
    # -- phases (engine, parallel, planner, store, kernels) -----------------
    "repro_phase_seconds": InstrumentSpec(
        "histogram", "Duration of one instrumented phase, by layer.",
        ("layer", "phase"),
    ),
    # -- tracer self-metrics ------------------------------------------------
    "repro_spans_total": InstrumentSpec(
        "counter", "Finished spans recorded by the tracer.",
    ),
}


def lookup(name: str) -> Optional[InstrumentSpec]:
    return INSTRUMENTS.get(name)


def family(registry: MetricsRegistry, name: str) -> MetricFamily:
    """Create-or-fetch ``name`` in ``registry`` per the instrument table.

    Undeclared names are refused rather than auto-created: sticking to
    the table is what keeps exports coherent across the stack.
    """
    spec = INSTRUMENTS.get(name)
    if spec is None:
        from repro.errors import ObservabilityError

        raise ObservabilityError(
            f"unknown instrument {name!r}; declare it in "
            "repro.obs.instruments.INSTRUMENTS"
        )
    if spec.kind == "counter":
        return registry.counter(name, spec.help, spec.labelnames)
    if spec.kind == "gauge":
        return registry.gauge(name, spec.help, spec.labelnames)
    return registry.histogram(name, spec.help, spec.labelnames, spec.buckets)


def prime(registry: MetricsRegistry) -> None:
    """Pre-create the key series scrapers watch, initialised to zero.

    Counters that only appear after their first increment make rate
    queries blind to the first event; priming the known label sets
    publishes an explicit 0 from the first scrape.
    """
    outcomes = family(registry, "repro_task_outcomes_total")
    for component in ("service", "direct-hop", "work-sharing"):
        for status in ("ok", "retried", "degraded"):
            outcomes.labels(component=component, status=status)
    for name in ("repro_requests_total",):
        requests = family(registry, name)
        for op in ("query", "temporal", "ingest", "update", "status"):
            requests.labels(op=op)
    updates = family(registry, "repro_livetip_updates_total")
    for kind in ("insert", "delete"):
        updates.labels(kind=kind)
    for name in ("repro_livetip_update_seconds",
                 "repro_livetip_repair_frontier",
                 "repro_livetip_depth", "repro_livetip_tracked_states",
                 "repro_livetip_compactions_total"):
        family(registry, name).labels()
    temporal_queries = family(registry, "repro_temporal_queries_total")
    for mode in ("point", "timeline", "aggregate", "diff", "rollup"):
        temporal_queries.labels(mode=mode)
    family(registry, "repro_temporal_snapshots_scanned_total").labels()
    family(registry, "repro_temporal_range_width").labels()
    for name in ("repro_errors_total", "repro_coalesced_total",
                 "repro_store_appends_total", "repro_spans_total",
                 "repro_query_seconds", "repro_ingest_seconds"):
        fam = family(registry, name)
        fam.labels()
    caches = ("result", "node")
    for name in ("repro_cache_hit_rate", "repro_cache_hits",
                 "repro_cache_misses", "repro_cache_evictions",
                 "repro_cache_invalidations", "repro_cache_entries"):
        fam = family(registry, name)
        for cache in caches:
            fam.labels(cache=cache)
    for name in ("repro_epoch", "repro_ingests",
                 "repro_resyncs", "repro_poisoned"):
        family(registry, name).labels()
    shed = family(registry, "repro_admission_shed_total")
    for kind in ("query", "ingest", "live"):
        for reason in ("queue_full", "timeout", "draining"):
            shed.labels(kind=kind, reason=reason)
    for name in ("repro_admission_depth", "repro_admission_active",
                 "repro_admission_queue_high_water"):
        fam = family(registry, name)
        for kind in ("query", "ingest", "live"):
            fam.labels(kind=kind)
    breaker_state = family(registry, "repro_breaker_state")
    transitions = family(registry, "repro_breaker_transitions_total")
    for breaker in ("planner", "store"):
        breaker_state.labels(breaker=breaker)
        for to in ("open", "half_open", "closed"):
            transitions.labels(breaker=breaker, to=to)
    family(registry, "repro_drain_seconds").labels()
    decisions = family(registry, "repro_autopilot_decisions_total")
    for condition in ("steady", "underprovisioned", "overprovisioned",
                      "unhealthy-replica", "diverged", "unknown"):
        decisions.labels(condition=condition)
    actions = family(registry, "repro_autopilot_actions_total")
    for verb in ("grow", "shrink", "heal"):
        for outcome in ("ok", "failed", "dry_run"):
            actions.labels(verb=verb, outcome=outcome)
    holds = family(registry, "repro_autopilot_holds_total")
    for reason in ("cooldown", "at-max-replicas", "at-min-replicas",
                   "action-in-flight", "scrape-failed"):
        holds.labels(reason=reason)
    replicas = family(registry, "repro_autopilot_replicas")
    for state in ("ready", "unhealthy", "quarantined", "draining",
                  "stopped"):
        replicas.labels(state=state)
    for name in ("repro_autopilot_cycles_total",
                 "repro_autopilot_membership_changes_total",
                 "repro_autopilot_pressure"):
        family(registry, name).labels()
