"""Injected clocks: the only sanctioned time source in algorithm paths.

The determinism lint rule bans wall-clock reads inside ``repro/core/``
and ``repro/kickstarter/`` because replayed runs must be pure functions
of their inputs.  Telemetry still needs durations, so observability
time flows through a :class:`Clock` *protocol* instead of module-level
``time`` calls: production wires in :class:`MonotonicClock` (a thin
``perf_counter`` wrapper — monotonic durations never feed back into
computed values), and tests wire in :class:`FakeClock` to make span
timings exact and assertions deterministic.

The lint rule recognises calls through a receiver named ``clock`` /
``_clock`` (and the :mod:`repro.obs` facade itself) as this sanctioned
pattern; raw ``time.time()`` stays banned.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "FakeClock", "MonotonicClock"]


@runtime_checkable
class Clock(Protocol):
    """Minimal time source: monotonic seconds since an arbitrary epoch."""

    def now(self) -> float:
        """Current monotonic time in (fractional) seconds."""
        ...  # pragma: no cover - protocol


class MonotonicClock:
    """The production clock: ``time.perf_counter`` behind the protocol.

    ``perf_counter`` is monotonic and high-resolution; its epoch is
    arbitrary, which is exactly right for spans and phase durations —
    nothing downstream may interpret the absolute value.
    """

    def now(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:
        return "MonotonicClock()"


class FakeClock:
    """A hand-cranked clock for tests: time moves only via :meth:`advance`.

    Optionally ``auto_tick`` advances the clock by a fixed step on every
    read, so consecutive spans get distinct, predictable timestamps
    without explicit cranking.
    """

    def __init__(self, start: float = 0.0, auto_tick: float = 0.0) -> None:
        self._time = float(start)
        self._auto_tick = float(auto_tick)

    def now(self) -> float:
        value = self._time
        self._time += self._auto_tick
        return value

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            from repro.errors import ObservabilityError

            raise ObservabilityError("FakeClock cannot move backwards")
        self._time += float(seconds)
        return self._time

    def __repr__(self) -> str:
        return f"FakeClock(t={self._time})"
