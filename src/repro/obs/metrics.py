"""Metrics: counters, gauges and fixed-bucket histograms.

The registry follows the Prometheus data model — *families* identified
by name and type, each holding one child per label-value combination —
but is deliberately tiny and dependency-free.  Design points:

* **Cheap hot path** — an update is one dictionary hit (family), one
  dictionary hit (child, cached by the caller where it matters) and one
  uncontended lock acquire around a float add.  Locks are per-child, so
  unrelated metrics never contend.
* **Fixed bucket boundaries** — histograms take their boundaries at
  registration and never rebucket, so concurrent observes stay O(log
  buckets) and exports are directly comparable across scrapes.
* **Collectors** — callbacks run at snapshot/render time to refresh
  gauges from external sources (cache statistics, service state), the
  standard pull-model bridge for state that is already counted
  elsewhere.
* **Two exports** — :meth:`MetricsRegistry.snapshot` (JSON-able dict)
  and :meth:`MetricsRegistry.render_prometheus` (text exposition
  format, ``text/plain; version=0.0.4``).

Registration is idempotent: asking for an existing family with the same
type and label names returns it; a conflicting re-registration raises
:class:`~repro.errors.ObservabilityError`.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
]

#: Default histogram boundaries (seconds): sub-millisecond to 10 s,
#: roughly logarithmic — sized for per-query / per-phase latencies.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (set, or inc/dec)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0  # guarded-by: _lock

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value += float(amount)

    def dec(self, amount: Union[int, float] = 1) -> None:
        with self._lock:
            self._value -= float(amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Cumulative-bucket histogram with fixed boundaries.

    ``boundaries`` are the *upper* edges of the finite buckets; one
    implicit ``+Inf`` bucket catches the rest.  Exposed counts are
    cumulative, matching the Prometheus exposition format.
    """

    kind = "histogram"

    def __init__(self, boundaries: Sequence[float] = DEFAULT_BUCKETS) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges:
            raise ObservabilityError("histogram needs at least one boundary")
        if list(edges) != sorted(set(edges)):
            raise ObservabilityError(
                f"histogram boundaries must be strictly increasing: {edges}"
            )
        self.boundaries: Tuple[float, ...] = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)  # guarded-by: _lock
        self._sum = 0.0  # guarded-by: _lock
        self._count = 0  # guarded-by: _lock

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        index = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_edge, cumulative_count)`` pairs, ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: List[Tuple[float, int]] = []
        for edge, n in zip(self.boundaries, counts):
            total += n
            out.append((edge, total))
        out.append((float("inf"), total + counts[-1]))
        return out

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        return {
            "count": total,
            "sum": acc,
            "buckets": [
                {"le": edge, "count": n}
                for edge, n in zip(
                    (*self.boundaries, float("inf")),
                    _running_totals(counts),
                )
            ],
        }


def _running_totals(counts: Sequence[int]) -> List[int]:
    out: List[int] = []
    total = 0
    for n in counts:
        total += n
        out.append(total)
    return out


Metric = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """One named metric and its per-label-set children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        _validate_name(name)
        for label in labelnames:
            _validate_name(label)
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self._lock = threading.Lock()
        self._children: Dict[LabelValues, Metric] = {}  # guarded-by: _lock

    def _make_child(self) -> Metric:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labelvalues: str) -> Metric:
        """The child for one label-value combination (created on demand)."""
        if set(labelvalues) != set(self.labelnames):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key: LabelValues = tuple(str(labelvalues[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def default(self) -> Metric:
        """The single unlabelled child (only for label-free families)."""
        if self.labelnames:
            raise ObservabilityError(
                f"metric {self.name!r} requires labels {self.labelnames}"
            )
        return self.labels()

    def children(self) -> List[Tuple[LabelValues, Metric]]:
        with self._lock:
            return sorted(self._children.items())

    def __repr__(self) -> str:
        with self._lock:
            n = len(self._children)
        return f"MetricFamily({self.name}, {self.kind}, children={n})"


#: A collector refreshes registry state right before a snapshot/render.
Collector = Callable[["MetricsRegistry"], None]


class MetricsRegistry:
    """All metric families of one process, plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}  # guarded-by: _lock
        self._collectors: List[Collector] = []  # guarded-by: _lock

    # -- registration -------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Tuple[str, ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, labelnames, buckets)
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != labelnames:
            raise ObservabilityError(
                f"metric {name!r} already registered as {family.kind} with "
                f"labels {family.labelnames}; cannot re-register as {kind} "
                f"with labels {labelnames}"
            )
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames, buckets)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    # -- collectors ---------------------------------------------------------
    def register_collector(self, collector: Collector) -> Callable[[], None]:
        """Run ``collector(self)`` before every export; returns unsubscribe."""
        with self._lock:
            self._collectors.append(collector)

        def unsubscribe() -> None:
            with self._lock:
                if collector in self._collectors:
                    self._collectors.remove(collector)

        return unsubscribe

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    # -- exports ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of every family, collectors included."""
        self._run_collectors()
        out: Dict[str, Any] = {}
        for family in self.families():
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "series": [
                    {
                        "labels": dict(zip(family.labelnames, key)),
                        **child.as_dict(),
                    }
                    for key, child in family.children()
                ],
            }
        return out

    def render_prometheus(self) -> str:
        """The text exposition format (``text/plain; version=0.0.4``)."""
        self._run_collectors()
        return "".join(self._render_family(f) for f in self.families())

    def _render_family(self, family: MetricFamily) -> str:
        lines: List[str] = []
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family.children():
            labels = dict(zip(family.labelnames, key))
            if isinstance(child, Histogram):
                lines.extend(_render_histogram(family.name, labels, child))
            else:
                lines.append(
                    f"{family.name}{_render_labels(labels)} "
                    f"{_format_value(child.value)}"
                )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        with self._lock:
            n = len(self._families)
        return f"MetricsRegistry({n} families)"


def _render_histogram(
    name: str, labels: Dict[str, str], histogram: Histogram
) -> Iterator[str]:
    for edge, cumulative in histogram.cumulative():
        bucket_labels = dict(labels)
        bucket_labels["le"] = _format_value(edge)
        yield (f"{name}_bucket{_render_labels(bucket_labels)} "
               f"{cumulative}")
    yield f"{name}_sum{_render_labels(labels)} {_format_value(histogram.sum)}"
    yield f"{name}_count{_render_labels(labels)} {histogram.count}"


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name) or (
        name[0].isdigit()
    ):
        raise ObservabilityError(
            f"invalid metric/label name {name!r}: use [a-zA-Z_][a-zA-Z0-9_]*"
        )
