"""Structured tracing: nestable spans, one trace id per query.

A *span* is one timed operation (a service query, a planner evaluation,
one schedule edge, one kernel call); spans nest through a
:mod:`contextvars` context variable, so the active span follows the
flow of control across ``await`` points and — when the caller copies
its context, as the service does around ``run_in_executor`` — across
thread hops into worker pools.

Sampling is decided once, at the trace root: either every span of a
query is recorded or none is (``sample_rate`` of 1 keeps everything,
0 keeps nothing; in between, a seeded RNG decides per trace so runs
replay).  Unsampled and disabled paths cost one context-variable read
and no allocation.

Finished spans go to an in-memory ring buffer (for tests, ``status``
payloads and ``repro obs dump``) and optionally to a JSON-lines sink —
a path or any ``write(str)``-able object — one span per line, ready for
``repro obs tail``.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import random
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Union,
)

from repro.errors import ObservabilityError
from repro.obs.clock import Clock, MonotonicClock

__all__ = ["NULL_SPAN", "NullSpan", "Span", "Tracer"]


@dataclass
class Span:
    """One timed, attributed operation within a trace."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    start: float = 0.0
    end: Optional[float] = None
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)

    def annotate(self, **attributes: Any) -> "Span":
        """Attach attributes; late wins on key collisions."""
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class NullSpan:
    """The no-op span: every operation accepted, nothing recorded."""

    trace_id: Optional[str] = None

    def annotate(self, **attributes: Any) -> "NullSpan":
        return self

    def __repr__(self) -> str:
        return "NullSpan()"


#: Shared no-op instance handed out by disabled/unsampled paths.
NULL_SPAN = NullSpan()

#: Context marker meaning "this trace was not sampled": descendants
#: skip straight to the null span without re-rolling the dice.
_UNSAMPLED = "unsampled"

SpanLike = Union[Span, NullSpan]
_ContextValue = Optional[Union[Span, str]]

#: The active span of the current logical flow (task/thread/context).
_current_span: "contextvars.ContextVar[_ContextValue]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Tracer:
    """Creates, nests and exports spans.

    ``sample_rate`` ∈ [0, 1] is the per-trace keep probability; the
    decision replays because it comes from a seeded RNG.  ``sink``
    receives finished sampled spans as JSON lines — a path (opened
    lazily, line-buffered appends) or a file-like object.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        sample_rate: float = 1.0,
        sink: Optional[Union[str, Path, IO[str]]] = None,
        seed: int = 0,
        max_recent: int = 512,
        on_finish: Optional[Callable[[Span], None]] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ObservabilityError(
                f"sample_rate must be within [0, 1], got {sample_rate}"
            )
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.sample_rate = float(sample_rate)
        self._lock = threading.Lock()
        self._rng = random.Random(seed)  # guarded-by: _lock
        self._ids = itertools.count(1)
        self._recent: Deque[Span] = deque(maxlen=max_recent)  # guarded-by: _lock
        self._sink_path: Optional[Path] = None
        self._sink_file: Optional[IO[str]] = None  # guarded-by: _lock
        self._owns_sink = False
        self._has_sink = sink is not None
        if isinstance(sink, (str, Path)):
            self._sink_path = Path(sink)
            self._owns_sink = True
        elif sink is not None:
            self._sink_file = sink
        self.started = 0  # guarded-by: _lock
        self.exported = 0  # guarded-by: _lock
        self._on_finish = on_finish

    # -- span lifecycle -----------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[SpanLike]:
        """Open a child of the active span (or a new trace at the root).

        The span closes when the ``with`` block exits; an escaping
        exception marks it ``status="error"`` (and is re-raised).
        """
        parent = _current_span.get()
        if parent == _UNSAMPLED:
            yield NULL_SPAN
            return
        if parent is None and not self._sample():
            token = _current_span.set(_UNSAMPLED)
            try:
                yield NULL_SPAN
            finally:
                _current_span.reset(token)
            return
        span = self._start(name, parent if isinstance(parent, Span) else None,
                           attributes)
        token = _current_span.set(span)
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            _current_span.reset(token)
            self._finish(span)

    def _sample(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        with self._lock:
            return self._rng.random() < self.sample_rate

    def _start(self, name: str, parent: Optional[Span],
               attributes: Dict[str, Any]) -> Span:
        if parent is None:
            with self._lock:
                trace_id = f"{self._rng.getrandbits(64):016x}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"{next(self._ids):08x}",
            parent_id=parent_id,
            start=self.clock.now(),
            attributes=dict(attributes),
        )
        with self._lock:
            self.started += 1
        return span

    def _finish(self, span: Span) -> None:
        span.end = self.clock.now()
        line: Optional[str] = None
        if self._has_sink:
            line = json.dumps(span.to_dict(), sort_keys=True,
                              default=str)
        with self._lock:
            self._recent.append(span)
            self.exported += 1
            if line is not None:
                sink = self._open_sink_locked()
                if sink is not None:
                    sink.write(line + "\n")
                    sink.flush()
        if self._on_finish is not None:
            self._on_finish(span)

    def _open_sink_locked(self) -> Optional[IO[str]]:  # holds-lock: _lock
        if self._sink_file is None and self._sink_path is not None:
            self._sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._sink_file = self._sink_path.open("a", encoding="utf-8")
        return self._sink_file

    # -- introspection ------------------------------------------------------
    def current(self) -> SpanLike:
        """The active span of this context (:data:`NULL_SPAN` if none)."""
        active = _current_span.get()
        return active if isinstance(active, Span) else NULL_SPAN

    def current_trace_id(self) -> Optional[str]:
        active = _current_span.get()
        return active.trace_id if isinstance(active, Span) else None

    def recent(self, limit: Optional[int] = None) -> List[Span]:
        """The most recently finished spans, oldest first."""
        with self._lock:
            spans = list(self._recent)
        return spans if limit is None else spans[-limit:]

    def close(self) -> None:
        """Flush and release the sink (only if this tracer opened it)."""
        with self._lock:
            sink, self._sink_file = self._sink_file, None
            owns = self._owns_sink
        if sink is not None and owns:
            try:
                sink.close()
            except OSError:
                pass  # a failed close loses nothing: every line was flushed

    def __repr__(self) -> str:
        with self._lock:
            started, exported = self.started, self.exported
        return (f"Tracer(sample_rate={self.sample_rate}, "
                f"started={started}, exported={exported})")
