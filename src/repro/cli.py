"""Top-level command-line interface: ``python -m repro``.

Subcommands
-----------

``generate``
    Create an on-disk evolving-graph store from a named dataset (or an
    RMAT specification) plus a synthetic update stream.
``info``
    Summarise a store: sizes, batch statistics, common-graph share.
    ``--json`` prints the machine-readable summary; with ``--connect``
    it is fetched from a live ``serve`` instance (health check).
``serve`` / ``query``
    Run the live query service over a store, and query it.  See
    ``docs/service.md`` for the wire protocol.  ``serve --metrics PORT``
    adds a Prometheus endpoint and ``--obs-spans FILE`` a trace log
    (see ``docs/observability.md``).
``route``
    Run a replicated fleet: N replicas (each over its own copy of the
    store) behind a consistent-hashing router that fans ingests to all
    of them.  Clients speak the same protocol as ``serve``, so
    ``query`` and ``info --connect`` work against the router port.
``autopilot``
    Run a fleet under the closed-loop controller (``run``), execute a
    single observe → diagnose → act cycle (``once``, with ``--dry-run``
    printing the decision record without touching the fleet), or print
    a running router's published autopilot status (``status``).  See
    ``docs/autopilot.md``.
``update``
    Apply one single-edge insert/delete to a running service's
    live-tip overlay (sub-batch latency, no Triangular-Grid rebuild),
    or force a ``compact`` that folds the pending update log into a
    durable batch.  See ``docs/livetip.md``.
``temporal``
    Historical analytics against a running service: point-in-time
    answers (``as_of`` a version or ingest timestamp), per-vertex
    timelines, temporal aggregates, snapshot diffs and sliding-window
    rollups.  See ``docs/temporal.md``.
``obs dump`` / ``obs tail``
    Inspect a live service's observability data: fetch the metrics
    endpoint, or render a span file as per-trace trees.
``evaluate``
    Answer a query over a store's snapshots (optionally a version
    range) with a chosen strategy, printing per-snapshot summaries or
    saving raw values.
``trend``
    Track metric series (reach, mean, extreme, best, or a vertex) for a
    query across snapshots, with change detection and an ASCII chart.
``store verify`` / ``store recover``
    Audit a store's integrity (checksums, torn appends, leftovers) and
    deterministically repair it.  ``verify`` exits non-zero when the
    store has problems, so it can gate pipelines.
``lint``
    Run the project-invariant static analyzer (``repro.lint``) over
    the package — lock discipline, async-safety, frozen-graph
    immutability, error taxonomy, determinism.  Exits non-zero on any
    non-baselined finding, so it gates CI.  See
    ``docs/static-analysis.md``.

The benchmark harness has its own entry point, ``python -m repro.bench``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.bench.reporting import render_table
from repro.core.common import CommonGraphDecomposition
from repro.errors import ServiceError
from repro.evolving.generator import generate_evolving_graph
from repro.evolving.store import SnapshotStore
from repro.evolving.version_control import VersionController
from repro.graph.generators import DATASETS, generate_dataset, rmat_edges
from repro.graph.weights import HashWeights

__all__ = ["main"]


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset:
        base = generate_dataset(args.dataset, edge_scale=args.edge_scale)
        num_vertices = DATASETS[args.dataset].num_vertices
        name = args.dataset
    else:
        base = rmat_edges(args.scale, args.edges, seed=args.seed)
        num_vertices = 1 << args.scale
        name = f"rmat{args.scale}"
    evolving = generate_evolving_graph(
        num_vertices=num_vertices,
        base=base,
        num_snapshots=args.snapshots,
        batch_size=args.batch_size,
        add_fraction=args.add_fraction,
        readd_fraction=args.readd_fraction,
        seed=args.seed,
        name=name,
    )
    store = SnapshotStore.create(args.store, evolving)
    print(f"created {store}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    import json

    if args.connect:
        from repro.service.client import ServiceClient

        host, _, port = args.connect.rpartition(":")
        try:
            with ServiceClient(host or "127.0.0.1", int(port)) as client:
                payload = client.status()
        except (ServiceError, OSError) as exc:
            print(f"info: {exc}", file=sys.stderr)
            return 2
        payload.pop("id", None)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(_render_live_status(args.connect, payload))
        return 0
    if args.store is None:
        print("info: a store directory (or --connect) is required",
              file=sys.stderr)
        return 2
    store = SnapshotStore(args.store)
    evolving = store.load()
    decomp = CommonGraphDecomposition.from_evolving(evolving)
    if args.json:
        from repro.service.status import store_summary

        payload = store_summary(store, evolving=evolving,
                                decomposition=decomp)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    base_size = len(evolving.snapshot_edges(0))
    batch_sizes = [batch.size for batch in evolving.batches]
    rows = [
        ["name", store.name or "(unnamed)"],
        ["vertices", store.num_vertices],
        ["snapshots", store.num_snapshots],
        ["base edges", base_size],
        ["updates total", sum(batch_sizes)],
        ["batch size (min/max)",
         f"{min(batch_sizes)}/{max(batch_sizes)}" if batch_sizes else "-"],
        ["common graph edges", len(decomp.common)],
        ["common share of base", f"{len(decomp.common) / max(base_size, 1):.1%}"],
        ["direct-hop additions", decomp.total_direct_hop_additions()],
    ]
    print(render_table(["property", "value"], rows, title=f"store {args.store}"))
    if args.detailed:
        from repro.graph.stats import compute_stats, degree_histogram

        base_csr = evolving.snapshot_csr(0)
        stats = compute_stats(base_csr)
        print()
        print(render_table(
            ["property", "value"], stats.as_rows(),
            title="base snapshot structure",
        ))
        print()
        hist = degree_histogram(base_csr)
        print(render_table(
            ["out-degree", "vertices"], list(hist.items()),
            title="degree histogram",
        ))
    return 0


def _render_live_status(address: str, payload: dict) -> str:
    """Human rendering of a live status payload (service or fleet).

    Shows what an operator reaches for first: lifecycle, load counters,
    per-path circuit breakers (state and when an open one re-probes),
    admission pressure, and — when the target is a fleet router — the
    per-replica rotation view.
    """
    sections = []
    lifecycle = payload.get("lifecycle", {})
    flags = ", ".join(
        name for name in ("live", "ready", "draining") if lifecycle.get(name)
    ) or "down"
    rows = [["lifecycle", flags]]
    for key in ("name", "num_vertices", "num_snapshots", "epoch",
                "window_first", "window_last", "serving"):
        if key in payload:
            rows.append([key, payload[key]])
    server = payload.get("server", {})
    for key in ("requests", "queries", "ingests", "answered",
                "shed", "errors", "failovers"):
        if key in server:
            rows.append([key, server[key]])
    sections.append(render_table(["property", "value"], rows,
                                 title=f"status {address}"))
    livetip = payload.get("livetip")
    if livetip and livetip.get("enabled"):
        rows = [
            [key, livetip[key]]
            for key in ("tip_version", "overlay_depth", "pending_updates",
                        "updates_total", "tracked_states", "compactions",
                        "updates_folded", "last_compaction_version")
            if key in livetip
        ]
        sections.append(render_table(
            ["property", "value"], rows, title="live tip",
        ))
    breakers = payload.get("breakers", {})
    if breakers:
        rows = [
            [
                name,
                snap.get("state", "?"),
                f"{snap.get('consecutive_failures', 0)}"
                f"/{snap.get('failure_threshold', '?')}",
                f"{snap.get('retry_after', 0.0):.2f}s",
                snap.get("opens", 0),
            ]
            for name, snap in sorted(breakers.items())
        ]
        sections.append(render_table(
            ["breaker", "state", "failures", "retry after", "opens"],
            rows, title="circuit breakers",
        ))
    admission = payload.get("admission", {})
    lanes = [(kind, snap) for kind, snap in admission.items()
             if isinstance(snap, dict)]
    if lanes:
        rows = [
            [
                kind,
                f"{snap.get('active', 0)}/{snap.get('max_concurrent', '?')}",
                f"{snap.get('waiting', 0)}/{snap.get('max_queue', '?')}",
                snap.get("admitted", 0),
                sum(snap.get("shed", {}).values()),
            ]
            for kind, snap in sorted(lanes)
        ]
        sections.append(render_table(
            ["lane", "active", "queued", "admitted", "shed"],
            rows, title="admission",
        ))
    fleet = payload.get("fleet")
    if fleet:
        rows = [
            [
                name,
                snap.get("address", "?"),
                snap.get("state", "?"),
                snap.get("reason") or "-",
                snap.get("version", "-"),
                snap.get("breaker", {}).get("state", "?"),
            ]
            for name, snap in sorted(fleet.get("replicas", {}).items())
        ]
        sections.append(render_table(
            ["replica", "address", "state", "reason", "tip", "breaker"],
            rows,
            title=f"fleet (tip {fleet.get('fleet_version')}, "
                  f"{len(fleet.get('rotation', []))} in rotation)",
        ))
    return "\n\n".join(sections)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    store = SnapshotStore(args.store)
    evolving = store.load()
    weight_fn = HashWeights(max_weight=args.max_weight, seed=args.weight_seed)
    controller = VersionController(evolving, weight_fn=weight_fn)
    algorithm = get_algorithm(args.algorithm)
    last = args.last if args.last is not None else store.num_snapshots - 1
    result = controller.evaluate(
        algorithm, args.source, first=args.first, last=last,
        strategy=args.strategy,
    )
    rows = []
    for k, values in enumerate(result.snapshot_values):
        finite = values[np.isfinite(values) & (values != algorithm.worst)]
        rows.append([
            args.first + k,
            int(finite.size),
            round(float(finite.mean()), 3) if finite.size else "-",
            round(float(finite.max()), 3) if finite.size else "-",
        ])
    print(render_table(
        ["version", "reached", "mean", "max"],
        rows,
        title=(
            f"{algorithm.name} from {args.source} on versions "
            f"{args.first}..{last} ({args.strategy})"
        ),
    ))
    print(f"additions streamed: {result.additions_processed}; "
          f"incremental steps: {result.stabilisations}; "
          f"time: {result.total_seconds:.4f}s")
    if args.out:
        np.savez_compressed(
            args.out,
            **{
                f"version_{args.first + k}": values
                for k, values in enumerate(result.snapshot_values)
            },
        )
        print(f"wrote values to {args.out}")
    return 0


def _cmd_trend(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import metric_names, vertex_value
    from repro.analysis.trends import TrendTracker, detect_changes

    store = SnapshotStore(args.store)
    evolving = store.load()
    weight_fn = HashWeights(max_weight=args.max_weight, seed=args.weight_seed)
    algorithm = get_algorithm(args.algorithm)
    metrics = []
    for name in args.metrics:
        if name.startswith("vertex:"):
            metrics.append(vertex_value(int(name.split(":", 1)[1])))
        elif name in metric_names():
            metrics.append(name)
        else:
            print(f"unknown metric {name!r}; available: "
                  f"{metric_names()} or vertex:<id>", file=sys.stderr)
            return 2
    tracker = TrendTracker(
        evolving, algorithm, args.source, weight_fn=weight_fn,
        strategy=args.strategy,
    )
    last = args.last if args.last is not None else store.num_snapshots - 1
    report = tracker.track(metrics=metrics, first=args.first, last=last)
    print(report.render(
        title=f"{algorithm.name} trends from vertex {args.source}"
    ))
    if args.chart:
        print()
        print(report.chart())
    for name, series in report.series.items():
        changes = detect_changes(series, threshold=args.change_threshold)
        if changes:
            snaps = [report.first_snapshot + i for i in changes]
            print(f"change points in {name!r}: snapshots {snaps}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.resilience import RetryPolicy
    from repro.service.admission import AdmissionPolicy
    from repro.service.server import GraphService, ServiceConfig
    from repro.service.state import ServiceState

    store = SnapshotStore(args.store)
    weight_fn = HashWeights(max_weight=args.max_weight, seed=args.weight_seed)

    metrics_server = None
    obs_enabled = args.metrics is not None or args.obs_spans is not None
    if obs_enabled:
        from repro import obs

        runtime = obs.configure(sample_rate=args.obs_sample,
                                span_sink=args.obs_spans)
        if args.metrics is not None:
            metrics_server = obs.MetricsServer(
                runtime.registry, host=args.host, port=args.metrics,
            ).start()

    state = ServiceState(
        store,
        weight_fn=weight_fn,
        window=args.window,
        result_cache_entries=args.result_cache,
        node_cache_entries=args.node_cache,
        livetip=not args.no_livetip,
        livetip_max_updates=args.livetip_max_updates,
        livetip_max_tracked=args.livetip_max_tracked,
    )
    state.register_metrics()
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        retry=RetryPolicy(max_attempts=args.retries + 1, base_delay=0.005,
                          multiplier=2.0, max_delay=0.1, retry_on=(OSError,)),
        query_admission=AdmissionPolicy(
            max_concurrent=args.max_concurrent,
            max_queue=args.queue_limit,
            queue_timeout=args.queue_timeout,
        ),
        breaker_failure_threshold=args.breaker_threshold,
        breaker_reset_timeout=args.breaker_reset,
        drain_timeout=args.drain_timeout,
    )
    service = GraphService(state, config)

    async def _serve() -> None:
        import signal

        await service.start()
        loop = asyncio.get_running_loop()
        # SIGTERM/SIGINT trigger a graceful drain: stop admitting, let
        # in-flight requests land within --drain-timeout, flush the
        # store subscription, then stop the loop.  Signal handlers are
        # a main-thread-only, Unix-only facility — fall back to the
        # KeyboardInterrupt path when they are unavailable.
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum,
                    lambda: asyncio.ensure_future(service.drain()),
                )
            except (NotImplementedError, RuntimeError, ValueError):
                break
        print(f"serving {store.name or args.store} on "
              f"{config.host}:{service.port} "
              f"(window={args.window or 'all'}, epoch={state.epoch})")
        if metrics_server is not None:
            print(f"metrics on {metrics_server.url}/metrics")
        if args.obs_spans is not None:
            print(f"spans to {args.obs_spans} "
                  f"(sample rate {args.obs_sample})")
        await service.wait_closed()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        state.close()
        if metrics_server is not None:
            metrics_server.stop()
        if obs_enabled:
            from repro import obs

            obs.disable()
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    import tempfile
    import threading

    from repro.fleet import FleetSupervisor, RouterConfig

    weight_fn = HashWeights(max_weight=args.max_weight, seed=args.weight_seed)
    root = args.root or tempfile.mkdtemp(prefix="repro-fleet-")
    router_config = RouterConfig(
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_reset_timeout=args.breaker_reset,
        health_interval=args.health_interval,
        probe_interval_s=args.probe_interval,
    )
    supervisor = FleetSupervisor(
        args.store, root,
        replicas=args.replicas,
        weight_fn=weight_fn,
        window=args.window,
        router_config=router_config,
        host=args.host,
    )
    try:
        with supervisor:
            print(f"fleet router on {args.host}:{supervisor.router_port} "
                  f"({args.replicas} replicas, stores under {root})")
            for name, replica in supervisor.replicas.items():
                print(f"  {name}: {args.host}:{replica.port}")
            threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        print("shutting down fleet")
    return 0


def _cmd_autopilot(args: argparse.Namespace) -> int:
    import json

    if args.autopilot_cmd == "status":
        from repro.service.client import ServiceClient

        host, _, port = args.connect.rpartition(":")
        try:
            with ServiceClient(host or "127.0.0.1", int(port)) as client:
                status = client.status()
        except (ServiceError, OSError) as exc:
            print(f"autopilot status: {exc}", file=sys.stderr)
            return 2
        payload = status.get("autopilot")
        if payload is None:
            print("no autopilot is publishing to this router",
                  file=sys.stderr)
            return 2
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    import tempfile
    import threading

    from repro.autopilot import (
        AutopilotConfig,
        AutopilotRunner,
        FleetAutopilot,
    )
    from repro.fleet import FleetSupervisor, RouterConfig

    weight_fn = HashWeights(max_weight=args.max_weight,
                            seed=args.weight_seed)
    root = args.root or tempfile.mkdtemp(prefix="repro-fleet-")
    supervisor = FleetSupervisor(
        args.store, root,
        replicas=args.replicas,
        weight_fn=weight_fn,
        window=args.window,
        router_config=RouterConfig(
            host=args.host, port=args.port,
            probe_interval_s=args.probe_interval,
        ),
        host=args.host,
    )
    config = AutopilotConfig(
        min_replicas=args.min_replicas,
        max_replicas=args.max_replicas,
        scale_up_pressure=args.scale_up,
        scale_down_pressure=args.scale_down,
        grow_cooldown_s=args.grow_cooldown,
        shrink_cooldown_s=args.shrink_cooldown,
        heal_cooldown_s=args.heal_cooldown,
        interval_s=args.interval,
    )
    try:
        with supervisor, FleetAutopilot(supervisor, config) as autopilot:
            if args.autopilot_cmd == "once":
                decision = autopilot.once(dry_run=args.dry_run)
                print(json.dumps(decision.to_dict(), indent=2,
                                 sort_keys=True, default=str))
                return 0
            print(f"fleet router on {args.host}:{supervisor.router_port} "
                  f"(autopilot driving {args.replicas} replicas within "
                  f"[{args.min_replicas}, {args.max_replicas}], "
                  f"stores under {root})")
            with AutopilotRunner(autopilot):
                threading.Event().wait()  # serve until interrupted
    except KeyboardInterrupt:
        print("shutting down autopiloted fleet")
    return 0


def _cmd_obs_dump(args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    host, _, port = args.connect.rpartition(":")
    path = "/metrics.json" if args.json else "/metrics"
    url = f"http://{host or '127.0.0.1'}:{int(port)}{path}"
    try:
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            body = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"obs dump: {url}: {exc}", file=sys.stderr)
        return 2
    print(body, end="" if body.endswith("\n") else "\n")
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    from repro.errors import ObservabilityError
    from repro.obs.export import read_spans, render_trace_trees

    path = Path(args.spans)
    if not path.is_file():
        print(f"obs tail: {path}: no such span file", file=sys.stderr)
        return 2
    offset = 0
    try:
        spans, offset = read_spans(path, offset)
        rendered = render_trace_trees(spans, limit=args.limit)
        if rendered:
            print(rendered)
        while args.follow:
            time.sleep(args.interval)
            spans, offset = read_spans(path, offset)
            if spans:
                rendered = render_trace_trees(spans)
                if rendered:
                    print(rendered)
    except ObservabilityError as exc:
        print(f"obs tail: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_ping(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    host, _, port = args.connect.rpartition(":")
    try:
        with ServiceClient(host or "127.0.0.1", int(port),
                           timeout=args.timeout) as client:
            alive = client.ping()
    except (ServiceError, OSError) as exc:
        print(f"ping: {exc}", file=sys.stderr)
        return 2
    print(f"ping {args.connect}: {'ok' if alive else 'not ok'}")
    return 0 if alive else 2


def _cmd_shutdown(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    host, _, port = args.connect.rpartition(":")
    try:
        with ServiceClient(host or "127.0.0.1", int(port),
                           timeout=args.timeout) as client:
            client.shutdown()
    except (ServiceError, OSError) as exc:
        print(f"shutdown: {exc}", file=sys.stderr)
        return 2
    print(f"shutdown {args.connect}: requested")
    return 0


def _parse_edges(pairs: list, what: str) -> list:
    edges = []
    for pair in pairs or []:
        u, sep, v = pair.partition(",")
        if not sep:
            raise ValueError(f"--{what} expects U,V (got {pair!r})")
        edges.append([int(u), int(v)])
    return edges


def _cmd_ingest(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    try:
        additions = _parse_edges(args.add, "add")
        deletions = _parse_edges(args.delete, "delete")
    except ValueError as exc:
        print(f"ingest: {exc}", file=sys.stderr)
        return 2
    host, _, port = args.connect.rpartition(":")
    try:
        with ServiceClient(host or "127.0.0.1", int(port),
                           timeout=args.timeout) as client:
            response = client.ingest(additions=additions,
                                     deletions=deletions)
    except (ServiceError, OSError) as exc:
        print(f"ingest: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    print(
        f"ingested +{len(additions)}/-{len(deletions)} edges: "
        f"version {response.get('version')}, epoch {response.get('epoch')}"
    )
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    edge = None
    if args.edge is not None:
        try:
            (edge,) = _parse_edges([args.edge], "edge")
        except ValueError as exc:
            print(f"update: {exc}", file=sys.stderr)
            return 2
    if args.kind != "compact" and edge is None:
        print(f"update: {args.kind} requires --edge U,V", file=sys.stderr)
        return 2
    if args.kind == "compact" and edge is not None:
        print("update: compact carries no --edge", file=sys.stderr)
        return 2
    host, _, port = args.connect.rpartition(":")
    try:
        with ServiceClient(host or "127.0.0.1", int(port),
                           timeout=args.timeout) as client:
            response = client.update(
                args.kind,
                edge[0] if edge else None,
                edge[1] if edge else None,
            )
    except (ServiceError, OSError) as exc:
        print(f"update: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    if args.kind == "compact":
        print(
            f"compacted {response.get('updates_folded', 0)} update(s): "
            f"tip version {response.get('tip_version')}, "
            f"epoch {response.get('epoch')}"
        )
    else:
        print(
            f"{args.kind} edge {tuple(edge)}: seq {response.get('seq')}, "
            f"overlay depth {response.get('overlay_depth')} at tip "
            f"version {response.get('tip_version')}"
            + (f" (folded {response.get('updates_folded')} update(s))"
               if response.get("compacted") else "")
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    host, _, port = args.connect.rpartition(":")
    try:
        with ServiceClient(host or "127.0.0.1", int(port),
                           timeout=args.timeout) as client:
            response = client.query(
                args.algorithm, args.source, first=args.first, last=args.last
            )
    except (ServiceError, OSError) as exc:
        print(f"query: {exc}", file=sys.stderr)
        return 2
    values = response["values"]
    if args.json:
        response["values"] = [
            [None if np.isinf(v) else float(v) for v in vec]
            for vec in values
        ]
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    rows = []
    for k, vec in enumerate(values):
        finite = vec[np.isfinite(vec)]
        rows.append([
            response["first"] + k,
            int(finite.size),
            round(float(finite.mean()), 3) if finite.size else "-",
            round(float(finite.max()), 3) if finite.size else "-",
        ])
    print(render_table(
        ["version", "reached", "mean", "max"], rows,
        title=(
            f"{response['algorithm']} from {response['source']} on versions "
            f"{response['first']}..{response['last']} "
            f"(epoch {response['epoch']}, "
            f"{'cache hit' if response['from_cache'] else 'computed'}, "
            f"outcome {response['outcome']})"
        ),
    ))
    return 0


def _temporal_spec_from_args(args: argparse.Namespace) -> dict:
    """One temporal spec document from the parsed mode sub-arguments."""
    mode = args.temporal_mode
    spec: dict = {"mode": mode}
    if mode == "point":
        if args.as_of is not None:
            spec["as_of"] = args.as_of
        if args.as_of_timestamp is not None:
            spec["as_of_timestamp"] = args.as_of_timestamp
    elif mode == "timeline":
        spec["vertex"] = args.vertex
    elif mode == "aggregate":
        spec["agg"] = args.agg
        if args.agg == "top_volatile" and args.k is not None:
            spec["k"] = args.k
    elif mode == "diff":
        spec["a"] = args.a
        spec["b"] = args.b
    elif mode == "rollup":
        spec["vertex"] = args.vertex
        spec["agg"] = args.agg
        spec["width"] = args.width
    if getattr(args, "first", None) is not None:
        spec["first"] = args.first
    if getattr(args, "last", None) is not None:
        spec["last"] = args.last
    return spec


def _render_temporal_result(result: dict) -> str:
    """One temporal result as an operator-readable table."""
    mode = result["mode"]
    if mode == "point":
        values = result["values"]
        finite = values[np.isfinite(values)]
        rows = [
            ["version", result["version"]],
            ["reached", int(finite.size)],
            ["mean", round(float(finite.mean()), 3) if finite.size else "-"],
            ["max", round(float(finite.max()), 3) if finite.size else "-"],
        ]
        return render_table(["property", "value"], rows,
                            title="point-in-time")
    if mode == "timeline":
        rows = [[result["first"] + k,
                 "unreached" if np.isinf(v) else round(float(v), 3)]
                for k, v in enumerate(result["values"])]
        return render_table(
            ["version", "value"], rows,
            title=f"timeline of vertex {result['vertex']}",
        )
    if mode == "aggregate":
        if result["agg"] == "top_volatile":
            rows = [[int(v), int(c)] for v, c in
                    zip(result["vertices"], result["counts"])]
            return render_table(
                ["vertex", "changes"], rows,
                title=(f"top-{result['k']} most volatile over "
                       f"{result['first']}..{result['last']}"),
            )
        values = result["values"]
        finite = values[np.isfinite(values)] if values.dtype.kind == "f" \
            else values
        rows = [
            ["vertices", int(values.size)],
            ["finite", int(finite.size)],
            ["mean", round(float(finite.mean()), 3) if finite.size else "-"],
            ["min", round(float(finite.min()), 3) if finite.size else "-"],
            ["max", round(float(finite.max()), 3) if finite.size else "-"],
        ]
        return render_table(
            ["property", "value"], rows,
            title=(f"{result['agg']} over versions "
                   f"{result['first']}..{result['last']}"),
        )
    if mode == "diff":
        rows = [
            ["became reachable", result["became_reachable"]],
            ["became unreachable", result["became_unreachable"]],
            ["value changed", result["value_changed"]],
        ]
        if "edge_additions" in result:
            rows.append(["edge additions", result["edge_additions"]])
            rows.append(["edge deletions", result["edge_deletions"]])
        return render_table(
            ["property", "value"], rows,
            title=f"diff version {result['a']} -> {result['b']}",
        )
    rows = [[first, "unreached" if np.isinf(v) else round(float(v), 3)]
            for first, v in zip(result["window_firsts"], result["values"])]
    return render_table(
        ["window start", result["agg"]], rows,
        title=(f"rollup of vertex {result['vertex']} "
               f"(width {result['width']})"),
    )


def _cmd_temporal(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    spec = _temporal_spec_from_args(args)
    host, _, port = args.connect.rpartition(":")
    try:
        with ServiceClient(host or "127.0.0.1", int(port),
                           timeout=args.timeout) as client:
            response = client.temporal(args.algorithm, args.source, [spec])
    except (ServiceError, OSError) as exc:
        print(f"temporal: {exc}", file=sys.stderr)
        return 2
    if args.json:
        from repro.temporal import encode_results

        response["results"] = encode_results(response["results"])
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    print(f"{response['algorithm']} from {response['source']}, window "
          f"{response['window_first']}..{response['window_last']} "
          f"(epoch {response['epoch']}, outcome {response['outcome']}, "
          f"{response['ranges_evaluated']} range(s), "
          f"{response['snapshots_scanned']} snapshot(s) scanned)")
    for result in response["results"]:
        print()
        print(_render_temporal_result(result))
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    report = SnapshotStore.verify_store(args.store, deep=args.deep)
    rows = [
        ["format", f"v{report.format_version}" if report.format_version else "?"],
        ["files checked", report.files_checked],
        ["problems", len(report.problems)],
        ["status", "ok" if report.ok else "CORRUPT"],
    ]
    print(render_table(["property", "value"], rows,
                       title=f"verify {args.store}"))
    for note in report.notes:
        print(f"note: {note}")
    for problem in report.problems:
        print(f"problem: {problem}", file=sys.stderr)
    if not report.ok:
        print("run `python -m repro store recover` to repair",
              file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_store_recover(args: argparse.Namespace) -> int:
    from repro.errors import IntegrityError

    try:
        report = SnapshotStore.recover_store(args.store)
    except IntegrityError as exc:
        print(f"unrecoverable: {exc}", file=sys.stderr)
        return 1
    if report.actions:
        for action in report.actions:
            print(f"recovered: {action}")
    else:
        print("store is consistent; nothing to do")
    check = SnapshotStore.verify_store(args.store, deep=args.deep)
    print(f"post-recovery verify: "
          f"{'ok' if check.ok else 'CORRUPT'} "
          f"({report.num_batches} batches)")
    for problem in check.problems:
        print(f"problem: {problem}", file=sys.stderr)
    return 0 if check.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import lint
    from repro.errors import LintError

    root = Path(args.root) if args.root else lint.package_root()
    rules = lint.default_rules()
    if args.select:
        wanted = [name.strip()
                  for chunk in args.select for name in chunk.split(",")
                  if name.strip()]
        known = {rule.name for rule in rules}
        unknown = sorted(set(wanted) - known)
        if unknown:
            print(
                f"lint: --select names unknown rule(s) "
                f"{', '.join(unknown)}; known: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.name in set(wanted)]
    engine = lint.LintEngine(root, rules=rules)
    if args.list_rules:
        for rule in engine.rules:
            print(f"{rule.name}: {rule.title}")
        return 0
    paths = [Path(p) for p in args.paths] if args.paths else [root / "repro"]
    restrict = None
    if args.changed:
        restrict = _changed_relpaths(root)
        if restrict is None:
            print(
                "lint: --changed could not consult git; linting everything",
                file=sys.stderr,
            )
    try:
        result = engine.run(paths, restrict=restrict)
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    baseline_path = (
        Path(args.baseline) if args.baseline
        else _default_baseline_path(root)
    )
    entries: list = []
    stale: list = []
    baselined: list = []
    try:
        if args.update_baseline:
            previous = (
                lint.load_baseline(baseline_path)
                if baseline_path.is_file() else []
            )
            entries = lint.write_baseline(
                baseline_path, result.findings, previous
            )
            print(f"wrote {len(entries)} entr(ies) to {baseline_path}")
            placeholders = sum(
                1 for entry in entries
                if entry.justification == lint.baseline.PLACEHOLDER_JUSTIFICATION
            )
            if placeholders:
                print(
                    f"{placeholders} new entr(ies) need a justification "
                    "before the baseline will load",
                    file=sys.stderr,
                )
            return 0
        if not args.no_baseline and baseline_path.is_file():
            entries = lint.load_baseline(baseline_path)
    except LintError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    active, baselined, stale = lint.apply_baseline(result.findings, entries)
    result.findings = active
    if args.select or restrict is not None:
        # A scoped run (--select / --changed) sees only a slice of the
        # findings, so an unmatched baseline entry proves nothing.
        stale = []
    fmt = "json" if args.json else (args.format or "text")
    if fmt == "json":
        print(lint.render_json(result, baselined, stale))
    elif fmt == "sarif":
        print(lint.render_sarif(
            result, baselined,
            uri_prefix=_sarif_uri_prefix(root),
            rules=engine.rules,
        ))
    else:
        print(lint.render_text(result, baselined, stale))
    return 0 if result.ok else 1


def _default_baseline_path(root):
    """``lint-baseline.json`` at the project root (beside pyproject.toml)."""
    from pathlib import Path

    for candidate in (root, *Path(root).resolve().parents):
        if (Path(candidate) / "pyproject.toml").is_file():
            return Path(candidate) / "lint-baseline.json"
    return Path(root) / "lint-baseline.json"


def _sarif_uri_prefix(root) -> str:
    """Engine root relative to the repository root (``src`` here).

    SARIF artifact URIs must be repository-relative for hosts to
    annotate diffs; finding paths are engine-root-relative.
    """
    from pathlib import Path

    resolved = Path(root).resolve()
    for candidate in (resolved, *resolved.parents):
        if (candidate / "pyproject.toml").is_file():
            try:
                return resolved.relative_to(candidate).as_posix().strip(".")
            except ValueError:
                return ""
    return ""


def _changed_relpaths(root):
    """Engine-relative paths of files touched per git, or ``None``.

    Uncommitted changes (``git diff HEAD``) plus untracked files; a
    missing git or a non-repo root fails open (``None`` → full run), so
    ``--changed`` can never hide findings behind a broken invocation.
    """
    import subprocess
    from pathlib import Path

    resolved = Path(root).resolve()
    try:
        top = subprocess.run(
            ["git", "-C", str(resolved), "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=30,
        )
        if top.returncode != 0:
            return None
        repo = Path(top.stdout.strip())
        listed = []
        for argv in (
            ["git", "-C", str(repo), "diff", "--name-only", "HEAD", "--"],
            ["git", "-C", str(repo), "ls-files", "--others",
             "--exclude-standard"],
        ):
            proc = subprocess.run(argv, capture_output=True, text=True,
                                  timeout=30)
            if proc.returncode != 0:
                return None
            listed.extend(proc.stdout.splitlines())
    except (OSError, subprocess.SubprocessError):
        return None
    restrict = set()
    for name in listed:
        if not name.endswith(".py"):
            continue
        try:
            relpath = (repo / name).resolve().relative_to(resolved)
        except ValueError:
            continue
        restrict.add(relpath.as_posix())
    return restrict


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CommonGraph evolving-graph analytics (ASPLOS 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="create an evolving-graph store")
    gen.add_argument("store", help="directory to create")
    group = gen.add_mutually_exclusive_group()
    group.add_argument("--dataset", choices=sorted(DATASETS),
                       help="named scaled dataset")
    group.add_argument("--scale", type=int, default=10,
                       help="RMAT scale (vertices = 2^scale)")
    gen.add_argument("--edges", type=int, default=10_000,
                     help="edge count for --scale graphs")
    gen.add_argument("--edge-scale", type=float, default=1.0,
                     help="shrink factor for --dataset graphs")
    gen.add_argument("--snapshots", type=int, default=10)
    gen.add_argument("--batch-size", type=int, default=100)
    gen.add_argument("--add-fraction", type=float, default=0.5)
    gen.add_argument("--readd-fraction", type=float, default=0.5)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="summarise a store")
    info.add_argument("store", nargs="?", default=None)
    info.add_argument("--detailed", action="store_true",
                      help="include structural stats and degree histogram")
    info.add_argument("--json", action="store_true",
                      help="machine-readable summary (JSON)")
    info.add_argument("--connect", default=None, metavar="HOST:PORT",
                      help="fetch live status from a running serve or "
                           "route instance (rendered; --json for raw)")
    info.set_defaults(func=_cmd_info)

    serve = sub.add_parser("serve", help="run the live query service")
    serve.add_argument("store")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--window", type=int, default=None,
                       help="serve only the last W snapshots")
    serve.add_argument("--result-cache", type=int, default=256,
                       help="max memoised query results")
    serve.add_argument("--node-cache", type=int, default=1024,
                       help="max memoised interior-ICG states")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request deadline in seconds")
    serve.add_argument("--retries", type=int, default=2,
                       help="primary-path retries before degrading")
    serve.add_argument("--max-concurrent", type=int, default=8,
                       help="query execution slots before requests queue")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="queued queries beyond which requests are "
                            "shed with an overloaded response")
    serve.add_argument("--queue-timeout", type=float, default=5.0,
                       help="seconds a query may wait for a slot before "
                            "being shed")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive failures before a circuit "
                            "breaker opens")
    serve.add_argument("--breaker-reset", type=float, default=5.0,
                       help="seconds an open breaker waits before "
                            "admitting a probe")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds SIGTERM-triggered drain waits for "
                            "in-flight requests")
    serve.add_argument("--no-livetip", action="store_true",
                       help="reject single-edge `update` requests "
                            "instead of absorbing them in the live-tip "
                            "overlay")
    serve.add_argument("--livetip-max-updates", type=int, default=64,
                       help="pending updates that trigger a live-tip "
                            "compaction into a durable batch")
    serve.add_argument("--livetip-max-tracked", type=int, default=8,
                       help="(algorithm, source) states the overlay "
                            "keeps repaired at the tip")
    serve.add_argument("--max-weight", type=int, default=64)
    serve.add_argument("--weight-seed", type=int, default=0)
    serve.add_argument("--metrics", type=int, default=None, metavar="PORT",
                       help="expose Prometheus metrics over HTTP on PORT "
                            "(0 picks an ephemeral port)")
    serve.add_argument("--obs-sample", type=float, default=1.0,
                       metavar="RATE",
                       help="per-trace span sampling rate in [0, 1]")
    serve.add_argument("--obs-spans", default=None, metavar="FILE",
                       help="append finished spans to FILE as JSON lines "
                            "(read them with `repro obs tail`)")
    serve.set_defaults(func=_cmd_serve)

    route = sub.add_parser(
        "route", help="run a replicated fleet behind one router"
    )
    route.add_argument("store", help="base store each replica copies")
    route.add_argument("--replicas", type=int, default=3)
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=7420,
                       help="router TCP port (0 picks an ephemeral port)")
    route.add_argument("--root", default=None, metavar="DIR",
                       help="directory for per-replica store copies "
                            "(default: a fresh temp directory)")
    route.add_argument("--window", type=int, default=None,
                       help="serve only the last W snapshots")
    route.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request deadline in seconds, covering "
                            "failover retries")
    route.add_argument("--breaker-threshold", type=int, default=3,
                       help="consecutive forward failures before a "
                            "replica's breaker opens")
    route.add_argument("--breaker-reset", type=float, default=1.0,
                       help="seconds an open replica breaker waits "
                            "before admitting a probe")
    route.add_argument("--health-interval", type=float, default=2.0,
                       help="seconds between background health probes "
                            "(deprecated spelling of --probe-interval)")
    route.add_argument("--probe-interval", type=float, default=None,
                       help="seconds between background health probes; "
                            "each cycle adds seeded jitter so several "
                            "routers do not synchronize probe storms "
                            "(wins over --health-interval)")
    route.add_argument("--max-weight", type=int, default=64)
    route.add_argument("--weight-seed", type=int, default=0)
    route.set_defaults(func=_cmd_route)

    autopilot = sub.add_parser(
        "autopilot",
        help="run a fleet under closed-loop autoscaling and self-healing",
    )
    autopilot_sub = autopilot.add_subparsers(dest="autopilot_cmd",
                                             required=True)
    for cmd, help_text in (
        ("run", "run the fleet with the control loop driving it"),
        ("once", "one observe → diagnose → act cycle, then exit"),
    ):
        p = autopilot_sub.add_parser(cmd, help=help_text)
        p.add_argument("store", help="base store each replica copies")
        p.add_argument("--replicas", type=int, default=3,
                       help="initial fleet size")
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7420,
                       help="router TCP port (0 picks an ephemeral port)")
        p.add_argument("--root", default=None, metavar="DIR",
                       help="directory for per-replica store copies "
                            "(default: a fresh temp directory)")
        p.add_argument("--window", type=int, default=None,
                       help="serve only the last W snapshots")
        p.add_argument("--probe-interval", type=float, default=2.0,
                       help="router health-probe interval in seconds")
        p.add_argument("--min-replicas", type=int, default=2)
        p.add_argument("--max-replicas", type=int, default=5)
        p.add_argument("--interval", type=float, default=0.5,
                       help="seconds between control cycles")
        p.add_argument("--scale-up", type=float, default=0.25,
                       help="smoothed pressure that triggers a grow")
        p.add_argument("--scale-down", type=float, default=0.05,
                       help="smoothed pressure calm enough to shrink")
        p.add_argument("--grow-cooldown", type=float, default=2.0)
        p.add_argument("--shrink-cooldown", type=float, default=10.0)
        p.add_argument("--heal-cooldown", type=float, default=1.0)
        p.add_argument("--max-weight", type=int, default=64)
        p.add_argument("--weight-seed", type=int, default=0)
        if cmd == "once":
            p.add_argument("--dry-run", action="store_true",
                           help="observe and diagnose but execute "
                                "nothing; print the decision record")
        p.set_defaults(func=_cmd_autopilot)
    ap_status = autopilot_sub.add_parser(
        "status", help="print a running fleet's autopilot status"
    )
    ap_status.add_argument("--connect", default="127.0.0.1:7420",
                           help="router address as host:port")
    ap_status.set_defaults(func=_cmd_autopilot)

    query = sub.add_parser("query", help="query a running service")
    query.add_argument("--connect", default="127.0.0.1:7421",
                       metavar="HOST:PORT")
    query.add_argument("--algorithm", default="SSSP",
                       help=f"one of {algorithm_names()}")
    query.add_argument("--source", type=int, default=0)
    query.add_argument("--first", type=int, default=None)
    query.add_argument("--last", type=int, default=None)
    query.add_argument("--timeout", type=float, default=30.0)
    query.add_argument("--json", action="store_true",
                       help="print the raw response as JSON")
    query.set_defaults(func=_cmd_query)

    ping = sub.add_parser("ping", help="health-check a running service")
    ping.add_argument("--connect", default="127.0.0.1:7421",
                      metavar="HOST:PORT")
    ping.add_argument("--timeout", type=float, default=5.0)
    ping.set_defaults(func=_cmd_ping)

    shutdown = sub.add_parser(
        "shutdown", help="ask a running service to drain and exit"
    )
    shutdown.add_argument("--connect", default="127.0.0.1:7421",
                          metavar="HOST:PORT")
    shutdown.add_argument("--timeout", type=float, default=30.0)
    shutdown.set_defaults(func=_cmd_shutdown)

    ingest = sub.add_parser(
        "ingest", help="apply an edge batch to a running service"
    )
    ingest.add_argument("--connect", default="127.0.0.1:7421",
                        metavar="HOST:PORT")
    ingest.add_argument("--add", action="append", metavar="U,V",
                        help="edge to add (repeatable)")
    ingest.add_argument("--delete", action="append", metavar="U,V",
                        help="edge to delete (repeatable)")
    ingest.add_argument("--timeout", type=float, default=30.0)
    ingest.add_argument("--json", action="store_true",
                        help="print the raw response as JSON")
    ingest.set_defaults(func=_cmd_ingest)

    update = sub.add_parser(
        "update",
        help="apply one single-edge update to a running service's "
             "live tip (or force a compaction)",
    )
    update.add_argument("kind", choices=["insert", "delete", "compact"],
                        help="single-edge mutation, or `compact` to fold "
                             "the pending update log into a batch")
    update.add_argument("--edge", default=None, metavar="U,V",
                        help="the edge (required for insert/delete)")
    update.add_argument("--connect", default="127.0.0.1:7421",
                        metavar="HOST:PORT")
    update.add_argument("--timeout", type=float, default=30.0)
    update.add_argument("--json", action="store_true",
                        help="print the raw response as JSON")
    update.set_defaults(func=_cmd_update)

    temporal = sub.add_parser(
        "temporal",
        help="time-travel and historical analytics against a service",
    )
    temporal_sub = temporal.add_subparsers(dest="temporal_mode",
                                           required=True)

    def _temporal_common(p: argparse.ArgumentParser,
                         ranged: bool = True) -> None:
        p.add_argument("--connect", default="127.0.0.1:7421",
                       metavar="HOST:PORT")
        p.add_argument("--algorithm", default="SSSP",
                       help=f"one of {algorithm_names()}")
        p.add_argument("--source", type=int, default=0)
        p.add_argument("--timeout", type=float, default=30.0)
        p.add_argument("--json", action="store_true",
                       help="print the raw response as JSON")
        if ranged:
            p.add_argument("--first", type=int, default=None,
                           help="first version (default: window start)")
            p.add_argument("--last", type=int, default=None,
                           help="last version (default: window end)")
        p.set_defaults(func=_cmd_temporal)

    tp = temporal_sub.add_parser(
        "point", help="full answer vector as of one version or timestamp"
    )
    tp.add_argument("--as-of", type=int, default=None, metavar="VERSION")
    tp.add_argument("--as-of-timestamp", type=float, default=None,
                    metavar="UNIX_TS",
                    help="latest version ingested at or before this time")
    _temporal_common(tp, ranged=False)

    tt = temporal_sub.add_parser(
        "timeline", help="one vertex's value across a version range"
    )
    tt.add_argument("--vertex", type=int, required=True)
    _temporal_common(tt)

    ta = temporal_sub.add_parser(
        "aggregate", help="per-vertex aggregate over a version range"
    )
    ta.add_argument("--agg", required=True,
                    choices=["min", "max", "mean", "argmin", "argmax",
                             "first_reachable", "changed_count",
                             "top_volatile"])
    ta.add_argument("-k", type=int, default=None,
                    help="result size for top_volatile")
    _temporal_common(ta)

    td = temporal_sub.add_parser(
        "diff", help="value and reachability churn between two versions"
    )
    td.add_argument("--a", type=int, required=True, metavar="VERSION")
    td.add_argument("--b", type=int, required=True, metavar="VERSION")
    _temporal_common(td, ranged=False)

    tr = temporal_sub.add_parser(
        "rollup", help="sliding-window aggregate of one vertex"
    )
    tr.add_argument("--vertex", type=int, required=True)
    tr.add_argument("--agg", required=True,
                    choices=["min", "max", "mean", "changed_count"])
    tr.add_argument("--width", type=int, required=True,
                    help="sliding window width in snapshots")
    _temporal_common(tr)

    trend = sub.add_parser("trend", help="track metric trends over snapshots")
    trend.add_argument("store")
    trend.add_argument("--algorithm", default="SSSP")
    trend.add_argument("--source", type=int, default=0)
    trend.add_argument("--metrics", nargs="+", default=["reach", "mean"],
                       help="built-in metric names or vertex:<id>")
    trend.add_argument("--first", type=int, default=0)
    trend.add_argument("--last", type=int, default=None)
    trend.add_argument("--strategy", default="work-sharing",
                       choices=["direct-hop", "work-sharing"])
    trend.add_argument("--chart", action="store_true", help="ASCII chart")
    trend.add_argument("--change-threshold", type=float, default=3.0)
    trend.add_argument("--max-weight", type=int, default=64)
    trend.add_argument("--weight-seed", type=int, default=0)
    trend.set_defaults(func=_cmd_trend)

    ev = sub.add_parser("evaluate", help="answer a query over snapshots")
    ev.add_argument("store")
    ev.add_argument("--algorithm", default="SSSP",
                    help=f"one of {algorithm_names()}")
    ev.add_argument("--source", type=int, default=0)
    ev.add_argument("--first", type=int, default=0, help="first version")
    ev.add_argument("--last", type=int, default=None, help="last version")
    ev.add_argument("--strategy", default="work-sharing",
                    choices=["direct-hop", "work-sharing"])
    ev.add_argument("--max-weight", type=int, default=64)
    ev.add_argument("--weight-seed", type=int, default=0)
    ev.add_argument("--out", default=None, help="save raw values (.npz)")
    ev.set_defaults(func=_cmd_evaluate)

    lint_parser = sub.add_parser(
        "lint", help="run the project-invariant static analyzer"
    )
    lint_parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--root", default=None,
        help="source root anchoring relative paths (default: auto-detect)",
    )
    lint_parser.add_argument("--json", action="store_true",
                             help="machine-readable report "
                                  "(alias for --format json)")
    lint_parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default=None,
        help="report format (default: text; sarif for PR annotation)",
    )
    lint_parser.add_argument(
        "--select", action="append", default=None, metavar="RULE[,RULE...]",
        help="run only the named rules (repeatable, comma-separable)",
    )
    lint_parser.add_argument(
        "--changed", action="store_true",
        help="scope per-module rules to files changed per git; "
             "project-wide rules still see the whole tree",
    )
    lint_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file (default: lint-baseline.json at the "
             "project root)",
    )
    lint_parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline and report every finding",
    )
    lint_parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings "
             "(preserving existing justifications)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit",
    )
    lint_parser.set_defaults(func=_cmd_lint)

    obs_parser = sub.add_parser(
        "obs", help="inspect a live service's observability data"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    od = obs_sub.add_parser(
        "dump", help="fetch metrics from a --metrics endpoint"
    )
    od.add_argument("--connect", default="127.0.0.1:9421",
                    metavar="HOST:PORT",
                    help="the serve instance's --metrics address")
    od.add_argument("--json", action="store_true",
                    help="fetch the JSON snapshot instead of the "
                         "Prometheus text format")
    od.add_argument("--timeout", type=float, default=10.0)
    od.set_defaults(func=_cmd_obs_dump)
    ot = obs_sub.add_parser(
        "tail", help="render a span file (--obs-spans) as trace trees"
    )
    ot.add_argument("spans", help="JSON-lines span file")
    ot.add_argument("--limit", type=int, default=None, metavar="N",
                    help="show only the last N traces")
    ot.add_argument("--follow", action="store_true",
                    help="keep watching the file for new spans")
    ot.add_argument("--interval", type=float, default=0.5,
                    help="poll interval for --follow, in seconds")
    ot.set_defaults(func=_cmd_obs_tail)

    st = sub.add_parser("store", help="audit and repair a store")
    st_sub = st.add_subparsers(dest="store_command", required=True)
    sv = st_sub.add_parser("verify", help="check store integrity")
    sv.add_argument("store")
    sv.add_argument("--deep", action="store_true",
                    help="also replay every batch and check the tip digest")
    sv.set_defaults(func=_cmd_store_verify)
    sr = st_sub.add_parser("recover", help="repair a damaged store")
    sr.add_argument("store")
    sr.add_argument("--deep", action="store_true",
                    help="deep-verify after recovering")
    sr.set_defaults(func=_cmd_store_recover)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
