"""Pull-based execution: the dual of the push engine.

Push iterates *out*-edges of changed vertices; pull iterates *in*-edges
of candidate vertices and recomputes their value from all proposals.
Real graph engines (Ligra and its descendants, including KickStarter)
switch between the two by frontier density — push wins on sparse
frontiers, pull on dense ones, because a pull round writes each vertex
once with no atomics.

This module provides a faithful pull engine over the transpose CSR plus
a density-switching ``direction="auto"`` wrapper.  It is exact for the
same reason push is: each pull assigns a vertex the best proposal over
its full in-neighbourhood, and rounds repeat until no value changes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.errors import EngineError
from repro.graph.csr import CSRGraph
from repro.kickstarter.engine import EngineCounters, VertexState

__all__ = ["pull_until_stable", "static_compute_pull", "DENSE_FRACTION"]

#: Frontier density above which ``direction="auto"`` switches to pull.
DENSE_FRACTION = 0.35


def _pull_round(
    transpose: CSRGraph,
    alg: MonotonicAlgorithm,
    state: VertexState,
    candidates: np.ndarray,
    counters: Optional[EngineCounters],
) -> np.ndarray:
    """Recompute ``candidates`` from their in-edges; returns changed set."""
    # In the transpose, row v holds v's in-edge origins, so a gather
    # returns (pull targets, origins, weights) directly.
    targets, origins, weights = transpose.gather(candidates)
    if counters is not None:
        counters.edges_relaxed += int(origins.size)
    if origins.size == 0:
        return np.empty(0, dtype=np.int64)
    proposals = alg.proposals(state.values[origins], weights)
    before = state.values[targets].copy()
    alg.reduce_at(state.values, targets, proposals)
    changed_mask = alg.better(state.values[targets], before)
    if state.parents is not None:
        winners = changed_mask & (proposals == state.values[targets])
        state.parents[targets[winners]] = origins[winners]
    changed = np.unique(targets[changed_mask])
    if counters is not None:
        counters.vertices_updated += int(changed.size)
    return changed


def pull_until_stable(
    graph: CSRGraph,
    alg: MonotonicAlgorithm,
    state: VertexState,
    frontier: np.ndarray,
    transpose: Optional[CSRGraph] = None,
    counters: Optional[EngineCounters] = None,
) -> None:
    """Propagate improvements from ``frontier`` using pull rounds.

    Each round pulls the *out-neighbours of the changed set* — the only
    vertices whose values can improve — from their full in-edge lists.
    """
    if transpose is None:
        transpose = graph.transpose()
    changed = np.unique(np.asarray(frontier, dtype=np.int64))
    while changed.size:
        if counters is not None:
            counters.iterations += 1
        _, candidates, _ = graph.gather(changed)
        candidates = np.unique(candidates)
        if candidates.size == 0:
            return
        changed = _pull_round(transpose, alg, state, candidates, counters)


def static_compute_pull(
    graph: CSRGraph,
    alg: MonotonicAlgorithm,
    source: int,
    track_parents: bool = False,
    counters: Optional[EngineCounters] = None,
    transpose: Optional[CSRGraph] = None,
    direction: str = "pull",
) -> VertexState:
    """Evaluate a query from scratch with pull (or density-auto) rounds.

    ``direction="auto"`` starts in push (sparse frontier) and switches
    to pull when the frontier covers more than :data:`DENSE_FRACTION`
    of the vertices — the classic Ligra direction optimisation.
    """
    if direction not in ("pull", "auto"):
        raise EngineError(f"unknown direction {direction!r}")
    from repro.kickstarter.engine import _sync_round  # shared push round

    if transpose is None:
        transpose = graph.transpose()
    state = VertexState.fresh(alg, graph.num_vertices, source, track_parents)
    changed = np.asarray([source], dtype=np.int64)
    while changed.size:
        if counters is not None:
            counters.iterations += 1
        dense = changed.size > DENSE_FRACTION * graph.num_vertices
        if direction == "pull" or dense:
            _, candidates, _ = graph.gather(changed)
            candidates = np.unique(candidates)
            if candidates.size == 0:
                break
            changed = _pull_round(transpose, alg, state, candidates, counters)
        else:
            changed = _sync_round(graph, alg, state, changed, counters)
    return state
