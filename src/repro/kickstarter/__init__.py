"""KickStarter-style streaming substrate: push engine, incremental
additions, trim-and-repair deletions, and the sequential streaming
baseline the paper compares against."""

from repro.kickstarter.deletion import trim_and_repair
from repro.kickstarter.engine import (
    ASYNC_THRESHOLD,
    EngineCounters,
    VertexState,
    incremental_additions,
    push_until_stable,
    seed_edges,
    static_compute,
)
from repro.kickstarter.pull import pull_until_stable, static_compute_pull
from repro.kickstarter.streaming import StreamingResult, StreamingSession

__all__ = [
    "EngineCounters",
    "VertexState",
    "static_compute",
    "push_until_stable",
    "seed_edges",
    "incremental_additions",
    "trim_and_repair",
    "StreamingSession",
    "StreamingResult",
    "ASYNC_THRESHOLD",
    "pull_until_stable",
    "static_compute_pull",
]
