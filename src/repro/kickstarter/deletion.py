"""Trim-and-repair handling of edge deletions (KickStarter's approach).

For monotonic algorithms a deletion can invalidate results: a vertex
whose value was *derived through* the deleted edge may now hold an
unreachably-good value.  Following KickStarter, the engine tags the
possibly-invalidated region, resets it, and recomputes it from the
edges crossing in from untagged vertices:

1. **Tag** vertices directly supported by a deleted edge.
2. **Cascade** tags through the graph: a vertex whose value is
   derivable from a tagged vertex is tagged too.
3. **Reset** tagged vertices to the algorithm's worst value.
4. **Repair**: re-seed the trimmed region from the in-edges crossing
   into it from untagged vertices, then push to a fixpoint.

Three tagging policies are provided:

* ``"hybrid"`` (default, closest to KickStarter's *trimmed
  approximations*): a vertex is directly tagged when a deleted edge
  **could** have produced its current value (the edge function
  matches — conservative, since an equal alternative support may
  exist), and tags cascade down the maintained dependence tree.  The
  over-approximation is bounded by the batch's dependence subtrees,
  which is what makes deletions ~3x costlier than additions (Figure 1)
  without pathological blow-up.
* ``"parent"``: exact dependence tracking end to end (minimal
  trimming; requires ``track_parents``).
* ``"support"``: value-matching for the cascade as well.  Maximally
  conservative; on algorithms with heavily tied values (SSWP/SSNP)
  coincidental matches can tag very large regions, so this policy is
  provided for study rather than as the baseline.

Under every policy the result equals a from-scratch recomputation: the
trimmed region is re-derived solely from still-valid vertices, and
cycles inside it cannot bootstrap values out of nothing.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.errors import EngineError
from repro.graph.edgeset import EdgeSet
from repro.kickstarter.engine import (
    EngineCounters,
    VertexState,
    push_until_stable,
    seed_edges,
)

__all__ = ["BidirectionalGraph", "trim_and_repair"]


class BidirectionalGraph(Protocol):
    """Graph protocol for deletion repair: out-edge and in-edge gathers."""

    num_vertices: int

    def gather(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Out-edges of the frontier."""

    def gather_in(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """In-edges of the frontier, as ``(origins, frontier_vertices, weights)``."""

    def neighbors(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """Out-edges of one vertex."""


def _tag_direct_parent(
    state: VertexState, deleted: EdgeSet, num_vertices: int
) -> np.ndarray:
    """Direct tags, exact: the deleted edge is the recorded parent edge."""
    parents = state.parents
    tagged = np.zeros(num_vertices, dtype=bool)
    src, dst = deleted.arrays()
    if src.size:
        direct = parents[dst] == src
        tagged[dst[direct]] = True
    tagged[state.source] = False
    return tagged


def _tag_direct_support(
    alg: MonotonicAlgorithm,
    state: VertexState,
    deleted: EdgeSet,
    deleted_weights: Optional[np.ndarray],
    num_vertices: int,
    counters: Optional[EngineCounters],
) -> np.ndarray:
    """Direct tags, conservative: the deleted edge *matches* the value."""
    tagged = np.zeros(num_vertices, dtype=bool)
    src, dst = deleted.arrays()
    if src.size:
        if deleted_weights is None:
            # Without the deleted edges' weights the edge function cannot
            # be evaluated; tag every deletion target.  Over-tagging is
            # safe — repair recomputes the region exactly.
            tagged[dst] = True
        else:
            proposals = alg.proposals(state.values[src], deleted_weights)
            supported = proposals == state.values[dst]
            tagged[dst[supported]] = True
            if counters is not None:
                counters.edges_relaxed += int(src.size)
    tagged[state.source] = False
    return tagged


def _cascade_parent(
    state: VertexState,
    tagged: np.ndarray,
    counters: Optional[EngineCounters],
) -> np.ndarray:
    """Cascade tags down the dependence tree (parent pointers)."""
    parents = state.parents
    has_parent = parents >= 0
    while True:
        if counters is not None:
            counters.trim_rounds += 1
        parent_tagged = np.zeros_like(tagged)
        parent_tagged[has_parent] = tagged[parents[has_parent]]
        fresh = parent_tagged & ~tagged
        fresh[state.source] = False
        if not fresh.any():
            return tagged
        tagged |= fresh


def _cascade_support(
    graph: BidirectionalGraph,
    alg: MonotonicAlgorithm,
    state: VertexState,
    tagged: np.ndarray,
    counters: Optional[EngineCounters],
) -> np.ndarray:
    """Cascade tags by value matching along out-edges.

    A vertex is tagged when an edge from an already-tagged vertex
    *matches* its current value under the edge function — whether or
    not other support exists.
    """
    frontier = np.flatnonzero(tagged)
    while frontier.size:
        if counters is not None:
            counters.trim_rounds += 1
        t_src, t_dst, t_w = graph.gather(frontier)
        if counters is not None:
            counters.edges_relaxed += int(t_src.size)
        if t_src.size == 0:
            break
        proposals = alg.proposals(state.values[t_src], t_w)
        supported = (proposals == state.values[t_dst]) & ~tagged[t_dst]
        fresh = np.unique(t_dst[supported])
        fresh = fresh[fresh != state.source]
        if fresh.size == 0:
            break
        tagged[fresh] = True
        frontier = fresh
    return tagged


def trim_and_repair(
    graph: BidirectionalGraph,
    alg: MonotonicAlgorithm,
    state: VertexState,
    deleted: EdgeSet,
    counters: Optional[EngineCounters] = None,
    mode: str = "auto",
    tagging: str = "hybrid",
    deleted_weights: Optional[np.ndarray] = None,
) -> int:
    """Incrementally incorporate deleted edges into converged query state.

    ``graph`` must be the graph *after* the deletions.  Returns the
    number of vertices trimmed.  ``deleted_weights`` (parallel to
    ``deleted.arrays()``) lets value-based tagging evaluate the deleted
    edges' edge functions; without it, every deletion target is tagged.
    """
    if tagging not in ("hybrid", "support", "parent"):
        raise EngineError(f"unknown tagging policy {tagging!r}")
    if len(deleted) == 0:
        return 0
    if tagging in ("hybrid", "parent") and state.parents is None:
        raise EngineError(f"{tagging!r} tagging requires parent tracking")
    n = graph.num_vertices
    if tagging == "parent":
        tagged = _tag_direct_parent(state, deleted, n)
        tagged = _cascade_parent(state, tagged, counters)
    elif tagging == "hybrid":
        tagged = _tag_direct_support(
            alg, state, deleted, deleted_weights, n, counters
        )
        tagged = _cascade_parent(state, tagged, counters)
    else:
        tagged = _tag_direct_support(
            alg, state, deleted, deleted_weights, n, counters
        )
        tagged = _cascade_support(graph, alg, state, tagged, counters)
    if not tagged.any():
        return 0
    trimmed = np.flatnonzero(tagged)
    if counters is not None:
        counters.vertices_trimmed += int(trimmed.size)

    state.values[trimmed] = alg.worst
    if state.parents is not None:
        state.parents[trimmed] = -1

    # Seed the trimmed region from in-edges whose origin is untagged.
    origins, targets, weights = graph.gather_in(trimmed)
    if origins.size:
        valid = ~tagged[origins]
        frontier = seed_edges(
            alg,
            state,
            origins[valid],
            targets[valid],
            weights[valid],
            counters=counters,
        )
    else:
        frontier = np.empty(0, dtype=np.int64)
    push_until_stable(graph, alg, state, frontier, counters=counters, mode=mode)
    return int(trimmed.size)
