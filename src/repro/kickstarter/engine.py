"""Core push-based computation engine (KickStarter-style).

The engine maintains one value per vertex and propagates improvements
along out-edges until a fixpoint.  It has two execution modes, matching
the scheduler policy of §4.3 of the paper:

* **sync** — vectorised rounds: gather all out-edges of the frontier,
  scatter-reduce proposals, diff values to find the next frontier.
  Updates take effect in the next round.  Best for large frontiers.
* **async** — a Python-level worklist where an updated value is visible
  immediately.  Best for tiny frontiers (small streaming batches),
  where the fixed per-round cost of the vectorised path dominates.

``mode="auto"`` switches between them based on frontier size and is the
default used by all evaluators.

Optionally the engine tracks, per vertex, the *parent* — the origin of
the edge whose proposal produced the vertex's current value.  Parents
form the dependence tree that KickStarter's deletion handling trims
(:mod:`repro.kickstarter.deletion`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

import numpy as np

from repro import obs
from repro.algorithms.base import MonotonicAlgorithm
from repro.errors import EngineError

__all__ = [
    "GraphLike",
    "EngineCounters",
    "VertexState",
    "push_until_stable",
    "static_compute",
    "seed_edges",
    "incremental_additions",
    "ASYNC_THRESHOLD",
]

#: Frontier size below which ``mode="auto"`` uses the async worklist.
ASYNC_THRESHOLD = 32


class GraphLike(Protocol):
    """What the engine needs from a graph representation."""

    num_vertices: int

    def gather(self, frontier: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat ``(sources, targets, weights)`` of the frontier's out-edges."""

    def neighbors(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of one vertex's out-edges."""


@dataclass
class EngineCounters:
    """Work counters, used for shape checks that are timing-independent."""

    edges_relaxed: int = 0
    vertices_updated: int = 0
    iterations: int = 0
    vertices_trimmed: int = 0
    trim_rounds: int = 0

    def reset(self) -> None:
        self.edges_relaxed = 0
        self.vertices_updated = 0
        self.iterations = 0
        self.vertices_trimmed = 0
        self.trim_rounds = 0

    def merged_with(self, other: "EngineCounters") -> "EngineCounters":
        return EngineCounters(
            edges_relaxed=self.edges_relaxed + other.edges_relaxed,
            vertices_updated=self.vertices_updated + other.vertices_updated,
            iterations=self.iterations + other.iterations,
            vertices_trimmed=self.vertices_trimmed + other.vertices_trimmed,
            trim_rounds=self.trim_rounds + other.trim_rounds,
        )


@dataclass
class VertexState:
    """Query state: per-vertex values plus (optional) dependence parents.

    ``parents[v]`` is the origin vertex of the edge that produced
    ``values[v]``, or ``-1`` when the value is intrinsic (source, or
    still at the algorithm's worst value).
    """

    values: np.ndarray
    parents: Optional[np.ndarray] = None
    source: int = 0

    @classmethod
    def fresh(
        cls,
        alg: MonotonicAlgorithm,
        num_vertices: int,
        source: int,
        track_parents: bool = False,
    ) -> "VertexState":
        values = alg.initial_values(num_vertices, source)
        parents = np.full(num_vertices, -1, dtype=np.int64) if track_parents else None
        return cls(values=values, parents=parents, source=source)

    def copy(self) -> "VertexState":
        return VertexState(
            values=self.values.copy(),
            parents=None if self.parents is None else self.parents.copy(),
            source=self.source,
        )


def _sync_round(
    graph: GraphLike,
    alg: MonotonicAlgorithm,
    state: VertexState,
    frontier: np.ndarray,
    counters: Optional[EngineCounters],
) -> np.ndarray:
    """One vectorised push round; returns the next frontier."""
    src, dst, w = graph.gather(frontier)
    if src.size == 0:
        return np.empty(0, dtype=np.int64)
    proposals = alg.proposals(state.values[src], w)
    before = state.values[dst].copy()
    alg.reduce_at(state.values, dst, proposals)
    changed_mask = alg.better(state.values[dst], before)
    if counters is not None:
        counters.edges_relaxed += int(src.size)
    if not changed_mask.any():
        return np.empty(0, dtype=np.int64)
    if state.parents is not None:
        # An edge is a winner if its proposal equals the final value of
        # its target and the target improved this round.  Ties are
        # broken arbitrarily (later edges overwrite earlier ones).
        winners = changed_mask & (proposals == state.values[dst])
        state.parents[dst[winners]] = src[winners]
    next_frontier = np.unique(dst[changed_mask])
    if counters is not None:
        counters.vertices_updated += int(next_frontier.size)
    return next_frontier


def _async_drain(
    graph: GraphLike,
    alg: MonotonicAlgorithm,
    state: VertexState,
    frontier: np.ndarray,
    counters: Optional[EngineCounters],
    spill_threshold: int,
) -> np.ndarray:
    """Asynchronous worklist execution.

    Returns an empty array on convergence, or the remaining worklist if
    it grew past ``spill_threshold`` (the caller then switches to sync
    mode — the §4.3 policy in reverse, protecting against cascades).
    """
    values = state.values
    parents = state.parents
    work = deque(int(v) for v in frontier)
    queued = set(work)
    while work:
        if len(work) > spill_threshold:
            return np.fromiter(queued, dtype=np.int64)
        u = work.popleft()
        queued.discard(u)
        targets, weights = graph.neighbors(u)
        if counters is not None:
            counters.iterations += 1
        if targets.size == 0:
            continue
        proposals = alg.proposals(np.full(targets.shape, values[u]), weights)
        improved = alg.better(proposals, values[targets])
        if counters is not None:
            counters.edges_relaxed += int(targets.size)
        if not improved.any():
            continue
        upd_targets = targets[improved]
        upd_values = proposals[improved]
        # A vertex may appear twice (parallel edges across components);
        # reduce within the update before writing.
        for v, val in zip(upd_targets.tolist(), upd_values.tolist()):
            if alg.better(val, values[v]):
                values[v] = val
                if parents is not None:
                    parents[v] = u
                if v not in queued:
                    queued.add(v)
                    work.append(v)
                if counters is not None:
                    counters.vertices_updated += 1
    return np.empty(0, dtype=np.int64)


def push_until_stable(
    graph: GraphLike,
    alg: MonotonicAlgorithm,
    state: VertexState,
    frontier: np.ndarray,
    counters: Optional[EngineCounters] = None,
    mode: str = "auto",
    async_threshold: int = ASYNC_THRESHOLD,
) -> None:
    """Propagate improvements from ``frontier`` until a fixpoint.

    ``mode`` is ``"sync"``, ``"async"`` or ``"auto"`` (switch by
    frontier size, per the paper's scheduler design).
    """
    if mode not in ("sync", "async", "auto"):
        raise EngineError(f"unknown mode {mode!r}")
    frontier = np.unique(np.asarray(frontier, dtype=np.int64))
    while frontier.size:
        use_async = mode == "async" or (mode == "auto" and frontier.size < async_threshold)
        if use_async:
            spill = np.inf if mode == "async" else 8 * async_threshold
            frontier = _async_drain(graph, alg, state, frontier, counters, spill)
        else:
            if counters is not None:
                counters.iterations += 1
            frontier = _sync_round(graph, alg, state, frontier, counters)


def static_compute(
    graph: GraphLike,
    alg: MonotonicAlgorithm,
    source: int,
    track_parents: bool = False,
    counters: Optional[EngineCounters] = None,
    mode: str = "sync",
) -> VertexState:
    """Evaluate a query from scratch on ``graph``."""
    with obs.phase_span("kernel", "static_compute"):
        state = VertexState.fresh(alg, graph.num_vertices, source,
                                  track_parents)
        frontier = np.asarray([source], dtype=np.int64)
        push_until_stable(graph, alg, state, frontier, counters=counters,
                          mode=mode)
        return state


def seed_edges(
    alg: MonotonicAlgorithm,
    state: VertexState,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    counters: Optional[EngineCounters] = None,
) -> np.ndarray:
    """Apply a set of edges once, returning the vertices that improved.

    This is lines 4–9 of Algorithm 2 in the paper: each streamed edge is
    run through the edge function; destinations that improve are
    scheduled.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if sources.size == 0:
        return np.empty(0, dtype=np.int64)
    proposals = alg.proposals(state.values[sources], np.asarray(weights, dtype=np.float64))
    before = state.values[targets].copy()
    alg.reduce_at(state.values, targets, proposals)
    changed_mask = alg.better(state.values[targets], before)
    if counters is not None:
        counters.edges_relaxed += int(sources.size)
    if state.parents is not None:
        winners = changed_mask & (proposals == state.values[targets])
        state.parents[targets[winners]] = sources[winners]
    changed = np.unique(targets[changed_mask])
    if counters is not None:
        counters.vertices_updated += int(changed.size)
    return changed


def incremental_additions(
    graph: GraphLike,
    alg: MonotonicAlgorithm,
    state: VertexState,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    counters: Optional[EngineCounters] = None,
    mode: str = "auto",
) -> None:
    """Incrementally incorporate added edges into converged query state.

    ``graph`` must already contain the added edges (it is the graph
    *after* the batch).  For monotonic algorithms this is exact: an
    addition can only improve values, and improvements propagate
    forward.
    """
    with obs.phase_span("kernel", "incremental_additions"):
        frontier = seed_edges(alg, state, sources, targets, weights,
                              counters=counters)
        push_until_stable(graph, alg, state, frontier, counters=counters,
                          mode=mode)
