"""The KickStarter streaming baseline over an evolving graph.

This is the paper's primary baseline: evaluate the query on the first
snapshot, then for each delta batch *mutate* the graph in place and
incrementally repair the query results (deletions via trim-and-repair,
additions via forward propagation), visiting snapshots strictly in
sequence.

Per-phase wall times are recorded (initial compute, mutation add/del,
incremental add/del) so the harness can reproduce both the headline
comparisons (Table 4, Figures 8–10) and the execution-time breakdown of
Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.algorithms.base import MonotonicAlgorithm
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.mutable import MutableGraph
from repro.graph.weights import WeightFn
from repro.kickstarter.deletion import trim_and_repair
from repro.kickstarter.engine import (
    EngineCounters,
    incremental_additions,
    static_compute,
)
from repro.utils import PhaseTimer

__all__ = ["StreamingResult", "StreamingSession"]


@dataclass
class StreamingResult:
    """Outcome of streaming a query across all snapshots."""

    #: Per-snapshot converged vertex values (index = snapshot).
    snapshot_values: List[np.ndarray] = field(default_factory=list)
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    counters: EngineCounters = field(default_factory=EngineCounters)

    @property
    def total_seconds(self) -> float:
        return self.timer.total()

    @property
    def work_seconds(self) -> float:
        """Streaming work only — the initial from-scratch convergence is
        excluded, matching the paper's Table 4 accounting (§3.1 assumes
        the from-scratch costs on G0 and on the common graph are
        similar, netting them out of the comparison)."""
        return self.timer.total() - self.timer.seconds("initial_compute")

    def phase_seconds(self) -> Dict[str, float]:
        return self.timer.as_dict()


class StreamingSession:
    """Evaluates one query over all snapshots by streaming batches.

    Parameters
    ----------
    evolving:
        The evolving graph (base snapshot + delta batches).
    algorithm:
        A monotonic algorithm instance.
    source:
        Query source vertex.
    weight_fn:
        Deterministic edge-weight function shared by all engines.
    mode:
        Engine scheduling mode (``"auto"`` applies the §4.3 policy).
    tagging:
        Deletion-invalidation policy: ``"hybrid"`` (KickStarter-style
        conservative direct tagging + dependence-tree cascade, the
        default), ``"parent"`` (fully exact) or ``"support"``
        (value-matching cascade; see :mod:`repro.kickstarter.deletion`).
    """

    def __init__(
        self,
        evolving: EvolvingGraph,
        algorithm: MonotonicAlgorithm,
        source: int,
        weight_fn: Optional[WeightFn] = None,
        mode: str = "auto",
        keep_values: bool = True,
        tagging: str = "hybrid",
    ) -> None:
        self.evolving = evolving
        self.algorithm = algorithm
        self.source = source
        self.weight_fn = weight_fn
        self.mode = mode
        self.keep_values = keep_values
        self.tagging = tagging

    def run(self) -> StreamingResult:
        """Stream through every snapshot, returning values and timings."""
        result = StreamingResult()
        alg = self.algorithm
        graph = MutableGraph.from_edge_set(
            self.evolving.snapshot_edges(0),
            self.evolving.num_vertices,
            weight_fn=self.weight_fn,
        )
        with result.timer.phase("initial_compute"):
            state = static_compute(
                graph,
                alg,
                self.source,
                track_parents=True,
                counters=result.counters,
                mode="sync",
            )
        if self.keep_values:
            result.snapshot_values.append(state.values.copy())

        for batch in self.evolving.batches:
            # Deletions first: mutate, then trim-and-repair.
            with result.timer.phase("mutation_del"):
                graph.delete_batch(batch.deletions)
            with result.timer.phase("incremental_del"):
                del_src, del_dst = batch.deletions.arrays()
                trim_and_repair(
                    graph,
                    alg,
                    state,
                    batch.deletions,
                    counters=result.counters,
                    mode=self.mode,
                    tagging=self.tagging,
                    deleted_weights=graph.weight_fn(del_src, del_dst),
                )
            # Then additions: mutate, then propagate forward.
            with result.timer.phase("mutation_add"):
                graph.add_batch(batch.additions)
            with result.timer.phase("incremental_add"):
                src, dst = batch.additions.arrays()
                weights = graph.weight_fn(src, dst)
                incremental_additions(
                    graph,
                    alg,
                    state,
                    src,
                    dst,
                    weights,
                    counters=result.counters,
                    mode=self.mode,
                )
            if self.keep_values:
                result.snapshot_values.append(state.values.copy())
        return result
