"""Evolving graphs: a base snapshot plus a stream of delta batches.

An :class:`EvolvingGraph` is the input to every evaluation strategy in
this package: the KickStarter streaming baseline walks the batches in
order, while the CommonGraph engines first decompose the snapshots into
a common graph plus per-snapshot surpluses (:mod:`repro.core.common`).

The vertex set is fixed across snapshots (vertex additions can be
modelled by pre-allocating isolated vertices), matching the paper's
edge-update model.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import SnapshotError
from repro.evolving.delta import DeltaBatch
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.weights import WeightFn

__all__ = ["EvolvingGraph"]


class EvolvingGraph:
    """A sequence of graph snapshots defined by a base plus delta batches.

    ``num_snapshots == len(batches) + 1``: snapshot 0 is the base edge
    set; snapshot ``t+1`` is snapshot ``t`` with batch ``t`` applied.
    Snapshot edge sets are materialised lazily and cached.
    """

    def __init__(
        self,
        num_vertices: int,
        base: EdgeSet,
        batches: Sequence[DeltaBatch] = (),
        name: str = "",
        strict: bool = True,
    ) -> None:
        if base.max_vertex() >= num_vertices:
            raise SnapshotError("base edge set references vertex out of range")
        self.num_vertices = int(num_vertices)
        self.name = name
        self.batches: List[DeltaBatch] = list(batches)
        self._strict = strict
        self._edge_sets: List[Optional[EdgeSet]] = [base] + [None] * len(self.batches)

    # -- shape ------------------------------------------------------------
    @property
    def num_snapshots(self) -> int:
        return len(self.batches) + 1

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self.num_snapshots
        if not 0 <= index < self.num_snapshots:
            raise SnapshotError(
                f"snapshot {index} out of range [0, {self.num_snapshots})"
            )
        return index

    # -- snapshot access -----------------------------------------------------
    def snapshot_edges(self, index: int) -> EdgeSet:
        """Edge set of snapshot ``index`` (cached)."""
        index = self._check_index(index)
        # Find the latest materialised snapshot at or before `index`.
        known = index
        while self._edge_sets[known] is None:
            known -= 1
        edges = self._edge_sets[known]
        for t in range(known, index):
            edges = self.batches[t].apply(edges, strict=self._strict)
            self._edge_sets[t + 1] = edges
        assert edges is not None
        return edges

    def snapshot_csr(self, index: int, weight_fn: Optional[WeightFn] = None) -> CSRGraph:
        """Materialise snapshot ``index`` as a CSR."""
        return CSRGraph.from_edge_set(
            self.snapshot_edges(index), self.num_vertices, weight_fn=weight_fn
        )

    def all_snapshot_edges(self) -> List[EdgeSet]:
        """Edge sets of every snapshot (materialises all of them)."""
        return [self.snapshot_edges(i) for i in range(self.num_snapshots)]

    # -- growth ------------------------------------------------------------
    def append_batch(self, batch: DeltaBatch) -> None:
        """Extend the stream with one more batch (one more snapshot)."""
        # Validate eagerly so a bad batch does not poison the cache.
        last = self.snapshot_edges(self.num_snapshots - 1)
        new_edges = batch.apply(last, strict=self._strict)
        if new_edges.max_vertex() >= self.num_vertices:
            raise SnapshotError("batch references vertex out of range")
        self.batches.append(batch)
        self._edge_sets.append(new_edges)

    def coarsened(self, factor: int) -> "EvolvingGraph":
        """A sparser timeline: every ``factor`` batches fused into one.

        Keeps every ``factor``-th snapshot (always including the last),
        composing the intermediate delta batches.  This is the
        library-level counterpart of Figure 9's trade-off between batch
        size and snapshot count — the total *net* updates are preserved,
        their granularity is not.
        """
        if factor < 1:
            raise SnapshotError("factor must be >= 1")
        if factor == 1 or not self.batches:
            return EvolvingGraph(
                self.num_vertices, self.snapshot_edges(0),
                list(self.batches), name=self.name,
            )
        fused: List[DeltaBatch] = []
        for start in range(0, len(self.batches), factor):
            group = self.batches[start:start + factor]
            combined = group[0]
            for batch in group[1:]:
                combined = combined.compose(batch)
            fused.append(combined)
        return EvolvingGraph(
            self.num_vertices, self.snapshot_edges(0), fused, name=self.name
        )

    # -- persistence -----------------------------------------------------------
    def save_npz(self, path: Union[str, Path]) -> None:
        """Save the evolving graph to a compressed ``.npz`` bundle."""
        payload = {
            "num_vertices": np.asarray([self.num_vertices], dtype=np.int64),
            "name": np.asarray([self.name]),
            "base": self.snapshot_edges(0).codes,
        }
        for t, batch in enumerate(self.batches):
            payload[f"add_{t}"] = batch.additions.codes
            payload[f"del_{t}"] = batch.deletions.codes
        np.savez_compressed(path, **payload)

    @classmethod
    def load_npz(cls, path: Union[str, Path]) -> "EvolvingGraph":
        """Load an evolving graph written by :meth:`save_npz`."""
        with np.load(path, allow_pickle=False) as data:
            num_vertices = int(data["num_vertices"][0])
            name = str(data["name"][0])
            base = EdgeSet(data["base"])
            batches = []
            t = 0
            while f"add_{t}" in data:
                batches.append(
                    DeltaBatch(EdgeSet(data[f"add_{t}"]), EdgeSet(data[f"del_{t}"]))
                )
                t += 1
        return cls(num_vertices, base, batches, name=name)

    def __repr__(self) -> str:
        return (
            f"EvolvingGraph(name={self.name!r}, V={self.num_vertices}, "
            f"snapshots={self.num_snapshots})"
        )
