"""Delta batches: the unit of change between consecutive snapshots.

A :class:`DeltaBatch` is the pair (Δ+, Δ−) of edge additions and
deletions that transforms snapshot ``G_t`` into ``G_{t+1}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeltaError
from repro.graph.edgeset import EdgeSet

__all__ = ["DeltaBatch"]


@dataclass(frozen=True)
class DeltaBatch:
    """A batch of edge additions and deletions (Δ+, Δ−).

    Invariant: the two sets are disjoint — an edge cannot be both added
    and deleted in the same batch.
    """

    additions: EdgeSet = field(default_factory=EdgeSet)
    deletions: EdgeSet = field(default_factory=EdgeSet)

    def __post_init__(self) -> None:
        if not self.additions.isdisjoint(self.deletions):
            raise DeltaError("additions and deletions must be disjoint")

    @property
    def size(self) -> int:
        """Total number of edge updates in the batch."""
        return len(self.additions) + len(self.deletions)

    def inverse(self) -> "DeltaBatch":
        """The batch that undoes this one."""
        return DeltaBatch(additions=self.deletions, deletions=self.additions)

    def compose(self, later: "DeltaBatch") -> "DeltaBatch":
        """The single batch equivalent to applying ``self`` then ``later``.

        Updates cancel where the later batch reverts the earlier one
        (an edge added then deleted — or deleted then re-added —
        contributes nothing), so the composed batch can be *smaller*
        than the sum of its parts.  This is how consecutive snapshots
        are coarsened into a sparser timeline (cf. Figure 9's fixed
        total updates at varying granularity).
        """
        # Net addition: added by either batch and not reverted by the
        # other; symmetrically for deletions.  The two sides are
        # provably disjoint for well-formed (strict) streams.
        additions = (self.additions - later.deletions) | (
            later.additions - self.deletions
        )
        deletions = (self.deletions - later.additions) | (
            later.deletions - self.additions
        )
        return DeltaBatch(additions=additions, deletions=deletions)

    def apply(self, edges: EdgeSet, strict: bool = True) -> EdgeSet:
        """Apply this batch to an edge set, returning the new set.

        With ``strict=True`` (the default), every addition must be new
        and every deletion must be present, mirroring a well-formed
        update stream.
        """
        if strict:
            stale = self.additions & edges
            if stale:
                raise DeltaError(f"{len(stale)} additions already present")
            missing = self.deletions - edges
            if missing:
                raise DeltaError(f"{len(missing)} deletions not present")
        return (edges | self.additions) - self.deletions

    def __repr__(self) -> str:
        return f"DeltaBatch(+{len(self.additions)}, -{len(self.deletions)})"
