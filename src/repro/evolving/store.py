"""Directory-backed persistent storage for evolving graphs.

Layout (one directory per evolving graph)::

    store/
      manifest.json        # format, shape, per-file checksums, tip digest
      manifest.json.bak    # previous manifest (recovery redundancy)
      base.npz             # snapshot 0 edge codes
      batch_00000.npz      # Δ+ / Δ− codes of batch 0
      batch_00001.npz
      ...

Mirrors the paper's storage organisation (§4.1): the graph is kept as
a base plus Δ batches, so new snapshots are appended as one small file
and nothing existing is rewritten.  Batches load lazily — opening a
store reads only the manifest.

Format v2 makes the store crash-safe and self-verifying:

* **Checksums** — the manifest records a SHA-256 digest of every data
  file plus a digest/edge-count of the *tip* (the newest snapshot's
  edge set).  Every read verifies; :meth:`SnapshotStore.verify` audits
  the whole directory.  The manifest carries a self-checksum over its
  canonical JSON, so any byte of any store file is covered.
* **Atomic writes** — every file is written tmp + flush + fsync +
  ``os.replace`` and every write is retried under
  :data:`IO_RETRY_POLICY`.  ``append`` orders writes (batch file, then
  manifest backup, then manifest) so a crash at any point leaves either
  the old state or a *torn append*: an orphan batch file the manifest
  does not reference yet.
* **Recovery** — :meth:`SnapshotStore.recover` deterministically rolls
  a torn append forward (if the orphan batch is intact and applies
  cleanly to the tip) or back (otherwise), restores the manifest from
  its backup when corrupted, truncates to the longest verifiable batch
  prefix, and rewrites a clean v2 manifest.
* **Compatibility** — v1 stores open and load exactly as before; the
  first ``append`` (or a ``recover``) upgrades them to v2 in place.

The cached tip (checksum-verified on first materialisation) makes
``append`` O(batch · log tip) per call instead of the v1 behaviour of
replaying every batch from ``base.npz`` on every append.

All I/O hooks into :mod:`repro.faults`, so crash-recovery behaviour is
testable on demand (see ``docs/robustness.md``).
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

try:  # advisory append locking (POSIX only; a no-op elsewhere)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

import numpy as np

from repro import faults, obs
from repro.errors import IntegrityError, ReproError, SnapshotError
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.edgeset import EdgeSet
from repro.resilience import RetryPolicy, retry_call

__all__ = [
    "SnapshotStore",
    "VerifyReport",
    "RecoveryReport",
    "IO_RETRY_POLICY",
]

_FORMAT_V1 = "repro-snapshot-store-v1"
_FORMAT_V2 = "repro-snapshot-store-v2"
_MANIFEST = "manifest.json"
_MANIFEST_BAK = "manifest.json.bak"
_LOCK_FILE = "store.lock"
_V2_KEYS = ("format", "name", "num_vertices", "num_batches", "checksums",
            "tip_edge_count", "tip_checksum")

#: Retry policy for all store I/O; transient failures (including
#: injected ones) are retried with exponential backoff.
IO_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.002, multiplier=2.0, max_delay=0.05,
    retry_on=(OSError,),
)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _edges_checksum(edges: EdgeSet) -> str:
    """Digest of an edge set: SHA-256 over its sorted int64 codes."""
    codes = np.ascontiguousarray(edges.codes, dtype=np.int64)
    return _sha256(codes.tobytes())


def _canonical(payload: dict) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, ASCII-only.

    Compactness matters for integrity: with no inter-token whitespace,
    every byte of the file is semantically significant, so the
    self-checksum catches *any* single-byte corruption.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry (best effort; not available everywhere)."""
    if not faults.io_check("fsync", directory.name):
        return
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: tmp + flush + fsync + replace."""
    tmp = path.with_name(path.name + ".tmp")
    if faults.io_check("write", path.name):
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if faults.io_check("fsync", path.name):
                os.fsync(handle.fileno())
    if faults.io_check("replace", path.name):
        os.replace(tmp, path)
        _fsync_dir(path.parent)


def _write_file(path: Path, data: bytes) -> None:
    retry_call(_atomic_write_bytes, path, data, policy=IO_RETRY_POLICY,
               label=f"write {path.name}")


def _read_file(path: Path) -> bytes:
    if not path.is_file():
        raise SnapshotError(f"store is missing {path.name}")

    def _read() -> bytes:
        faults.io_check("read", path.name)
        return path.read_bytes()

    return retry_call(_read, policy=IO_RETRY_POLICY,
                      label=f"read {path.name}")


def _npz_bytes(**arrays: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def _parse_manifest(raw: bytes, context: str) -> dict:
    """Parse and integrity-check manifest bytes (v1 or v2)."""
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise IntegrityError(f"{context}: manifest is corrupt ({exc})") from exc
    if not isinstance(doc, dict):
        raise IntegrityError(f"{context}: manifest is not a JSON object")
    fmt = doc.get("format")
    if fmt == _FORMAT_V1:
        return doc
    if fmt != _FORMAT_V2:
        raise SnapshotError(f"{context}: unsupported store format {fmt!r}")
    payload = {key: value for key, value in doc.items()
               if key != "manifest_checksum"}
    missing = [key for key in _V2_KEYS if key not in payload]
    if missing:
        raise IntegrityError(f"{context}: manifest missing fields {missing}")
    if doc.get("manifest_checksum") != _sha256(_canonical(payload)):
        raise IntegrityError(f"{context}: manifest checksum mismatch")
    return payload


def _manifest_bytes(payload: dict) -> bytes:
    body = dict(payload)
    body["manifest_checksum"] = _sha256(_canonical(payload))
    return _canonical(body)


@dataclass
class VerifyReport:
    """Outcome of a store integrity audit (:meth:`SnapshotStore.verify`).

    ``ok`` is true when no problems were found.  ``problems`` are
    integrity violations (corruption, missing files, torn appends);
    ``notes`` are informational (e.g. a v1 store carries no checksums).
    """

    directory: str
    format_version: int = 0
    files_checked: int = 0
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"{len(self.problems)} problem(s)"
        return (f"VerifyReport({self.directory!r}, v{self.format_version}, "
                f"{self.files_checked} files, {state})")


@dataclass
class RecoveryReport:
    """Actions taken by :meth:`SnapshotStore.recover`.

    An empty ``actions`` list means the store was already consistent
    and nothing was touched.  ``num_batches`` is the batch count after
    recovery.
    """

    directory: str
    num_batches: int = 0
    actions: List[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.actions)

    def __repr__(self) -> str:
        return (f"RecoveryReport({self.directory!r}, "
                f"batches={self.num_batches}, actions={len(self.actions)})")


class SnapshotStore:
    """Append-only on-disk store of a base snapshot plus delta batches."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        # Survives re-initialisation (recover / stale refresh re-run
        # __init__ on the live instance).
        self._listeners: List[Callable[[int, DeltaBatch], None]] = getattr(
            self, "_listeners", []
        )
        if not (self.directory / _MANIFEST).is_file():
            raise SnapshotError(f"{self.directory} is not a snapshot store")
        payload = _parse_manifest(
            _read_file(self.directory / _MANIFEST), str(self.directory)
        )
        self.name: str = payload["name"]
        self.num_vertices: int = int(payload["num_vertices"])
        self._num_batches: int = int(payload["num_batches"])
        self._format_version = 1 if payload["format"] == _FORMAT_V1 else 2
        self._checksums: Dict[str, str] = dict(payload.get("checksums", {}))
        self._tip_edge_count: Optional[int] = payload.get("tip_edge_count")
        self._tip_checksum: Optional[str] = payload.get("tip_checksum")
        self._tip_cache: Optional[EdgeSet] = None
        self._manifest_stat = self._stat_manifest()

    # -- creation -----------------------------------------------------------
    @classmethod
    def create(
        cls, directory: Union[str, Path], evolving: EvolvingGraph
    ) -> "SnapshotStore":
        """Persist an evolving graph into a new store directory.

        The store is assembled in a staging directory and renamed into
        place as the final step, so a failure at any point (including an
        injected one) leaves no partial store behind — the target either
        does not exist or is complete.
        """
        directory = Path(directory)
        if directory.exists():
            if (directory / _MANIFEST).exists():
                raise SnapshotError(f"{directory} already contains a store")
            if any(directory.iterdir()):
                raise SnapshotError(
                    f"{directory} exists and is not a snapshot store"
                )
            directory.rmdir()
        directory.parent.mkdir(parents=True, exist_ok=True)
        staging = directory.with_name(f"{directory.name}.creating-{os.getpid()}")
        if staging.exists():
            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        try:
            checksums: Dict[str, str] = {}
            base = evolving.snapshot_edges(0)
            checksums["base.npz"] = cls._write_npz(
                staging / "base.npz", codes=base.codes
            )
            tip = base
            for index, batch in enumerate(evolving.batches):
                name = cls._batch_name(index)
                checksums[name] = cls._write_npz(
                    staging / name,
                    additions=batch.additions.codes,
                    deletions=batch.deletions.codes,
                )
                tip = batch.apply(tip, strict=False)
            payload = cls._payload(
                name=evolving.name,
                num_vertices=evolving.num_vertices,
                num_batches=len(evolving.batches),
                checksums=checksums,
                tip=tip,
            )
            cls._write_manifest(staging, payload)

            def commit() -> None:
                if faults.io_check("replace", directory.name):
                    os.replace(staging, directory)
                    _fsync_dir(directory.parent)

            retry_call(commit, policy=IO_RETRY_POLICY,
                       label=f"commit {directory.name}")
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return cls(directory)

    @staticmethod
    def _batch_name(index: int) -> str:
        return f"batch_{index:05d}.npz"

    @classmethod
    def _batch_path(cls, directory: Path, index: int) -> Path:
        return directory / cls._batch_name(index)

    @staticmethod
    def _write_npz(path: Path, **arrays: np.ndarray) -> str:
        """Atomically write an .npz file; returns its SHA-256 digest."""
        data = _npz_bytes(**arrays)
        _write_file(path, data)
        return _sha256(data)

    @staticmethod
    def _payload(
        name: str,
        num_vertices: int,
        num_batches: int,
        checksums: Dict[str, str],
        tip: EdgeSet,
    ) -> dict:
        return {
            "format": _FORMAT_V2,
            "name": name,
            "num_vertices": int(num_vertices),
            "num_batches": int(num_batches),
            "checksums": dict(sorted(checksums.items())),
            "tip_edge_count": len(tip),
            "tip_checksum": _edges_checksum(tip),
        }

    @staticmethod
    def _write_manifest(directory: Path, payload: dict,
                        backup_current: bool = False) -> None:
        """Write the manifest atomically, optionally preserving the old one.

        During ``append`` the previous manifest is first copied to
        ``manifest.json.bak`` so that a later corruption of the live
        manifest is recoverable.
        """
        path = directory / _MANIFEST
        if backup_current and path.is_file():
            _write_file(directory / _MANIFEST_BAK, path.read_bytes())
        data = _manifest_bytes(payload)
        _write_file(path, data)
        if not backup_current:
            # Fresh store: seed the backup with the same content so
            # recovery always has a second copy to fall back on.
            _write_file(directory / _MANIFEST_BAK, data)

    # -- shape ----------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        return self._num_batches

    @property
    def num_snapshots(self) -> int:
        return self._num_batches + 1

    @property
    def format_version(self) -> int:
        """2 for checksummed stores, 1 for legacy (pre-integrity) stores."""
        return self._format_version

    # -- reading ----------------------------------------------------------------
    def _verified_read(self, name: str) -> bytes:
        """Read a data file, verifying its recorded checksum (v2)."""
        data = _read_file(self.directory / name)
        expected = self._checksums.get(name)
        if expected is not None and _sha256(data) != expected:
            raise IntegrityError(
                f"{self.directory}: {name} failed checksum verification "
                f"(run SnapshotStore.recover)"
            )
        return data

    def base_edges(self) -> EdgeSet:
        with np.load(io.BytesIO(self._verified_read("base.npz"))) as data:
            return EdgeSet(data["codes"])

    def read_batch(self, index: int) -> DeltaBatch:
        if not 0 <= index < self._num_batches:
            raise SnapshotError(
                f"batch {index} out of range [0, {self._num_batches})"
            )
        data = self._verified_read(self._batch_name(index))
        with np.load(io.BytesIO(data)) as npz:
            return DeltaBatch(
                additions=EdgeSet(npz["additions"]),
                deletions=EdgeSet(npz["deletions"]),
            )

    def iter_batches(self) -> Iterator[DeltaBatch]:
        for index in range(self._num_batches):
            yield self.read_batch(index)

    def load(self) -> EvolvingGraph:
        """Materialise the full evolving graph in memory."""
        return EvolvingGraph(
            self.num_vertices,
            self.base_edges(),
            list(self.iter_batches()),
            name=self.name,
        )

    # -- change notifications ---------------------------------------------------
    def subscribe(
        self, callback: Callable[[int, DeltaBatch], None]
    ) -> Callable[[], None]:
        """Call ``callback(index, batch)`` after every successful append.

        Notifications fire only for appends made *through this handle*
        (the lock serialises cross-process appends, but cannot push
        events into another process).  Returns an unsubscribe callable.
        Listener exceptions propagate to the appender: the store is
        already durable at that point, so a failing listener reports a
        subscriber problem, not a lost append.
        """
        self._listeners.append(callback)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # -- appending ------------------------------------------------------------
    @contextmanager
    def _append_lock(self) -> Iterator[None]:
        """Advisory cross-process exclusive lock for appends.

        Two writers to the same directory (say an ingesting service and
        a CLI) must not interleave the batch-file / manifest write pair,
        or the second writer clobbers the first's batch and the tip
        digest no longer matches the data.  ``flock`` on a dedicated
        lock file serialises them; on platforms without ``fcntl`` the
        lock degrades to a no-op (single-writer discipline applies).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        fd = os.open(self.directory / _LOCK_FILE,
                     os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _stat_manifest(self) -> Optional[Tuple[int, int, int]]:
        """The manifest's change signature (inode, size, mtime_ns).

        Atomic manifest replacement creates a new inode, so any write by
        any handle — this one or another process's — changes the
        signature.
        """
        try:
            stat = os.stat(self.directory / _MANIFEST)
        except OSError:
            return None
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def _refresh_if_stale(self) -> None:
        """Re-read the manifest if another handle appended since we did.

        Called under the append lock: a second process may have advanced
        the store while this handle's in-memory state (batch count, tip
        cache) still reflects the old manifest.  Appending from stale
        state would overwrite the newest batch file, so resynchronise
        first.  Gated on the manifest's stat signature, so the
        single-writer fast path stays read-free (appends remain
        O(batch), not O(history)).
        """
        if self._stat_manifest() == self._manifest_stat:
            return
        try:
            payload = _parse_manifest(
                _read_file(self.directory / _MANIFEST), str(self.directory)
            )
        except ReproError:
            return  # damaged manifest: let the normal append path raise
        if (int(payload["num_batches"]) != self._num_batches
                or payload.get("tip_checksum") != self._tip_checksum):
            self.__init__(self.directory)
        else:
            self._manifest_stat = self._stat_manifest()

    def _tip(self) -> EdgeSet:
        """The newest snapshot's edge set, cached after first use.

        The first materialisation replays the batches once and checks
        the result against the manifest's tip digest; every subsequent
        ``append`` updates the cache incrementally in O(batch).
        """
        if self._tip_cache is None:
            tip = self.base_edges()
            for batch in self.iter_batches():
                tip = batch.apply(tip, strict=False)
            if self._tip_checksum is not None and (
                len(tip) != self._tip_edge_count
                or _edges_checksum(tip) != self._tip_checksum
            ):
                raise IntegrityError(
                    f"{self.directory}: tip digest mismatch — store state "
                    f"is inconsistent (run SnapshotStore.recover)"
                )
            self._tip_cache = tip
        return self._tip_cache

    def append(self, batch: DeltaBatch) -> int:
        """Append one batch (one new snapshot); returns its batch index.

        Validates the batch against the cached tip before committing
        anything, so a bad batch leaves the store untouched.  The batch
        file is written (atomically) before the manifest references it;
        a crash in between leaves a torn append that
        :meth:`recover` resolves deterministically.  Appending to a v1
        store upgrades its manifest to v2 (checksums are computed for
        the existing files first).

        Appends are serialised across processes by an advisory file
        lock, and the handle resynchronises with the on-disk manifest
        before writing, so two handles on the same directory cannot
        interleave appends or clobber each other's batches.  Subscribed
        listeners are notified once the append is durable.
        """
        with obs.phase_span("store", "append") as span:
            with self._append_lock():
                index = self._append_locked(batch)
            span.annotate(index=index, batch_size=batch.size)
            obs.counter_inc("repro_store_appends_total")
        for callback in list(self._listeners):
            callback(index, batch)
        return index

    def _append_locked(self, batch: DeltaBatch) -> int:
        self._refresh_if_stale()
        tip = self._tip()
        new_tip = batch.apply(tip, strict=True)  # raises DeltaError if malformed
        if batch.additions.max_vertex() >= self.num_vertices or (
            batch.deletions.max_vertex() >= self.num_vertices
        ):
            raise SnapshotError("batch references vertex out of range")
        if self._format_version == 1:
            self._compute_legacy_checksums()
        index = self._num_batches
        name = self._batch_name(index)
        checksums = dict(self._checksums)
        checksums[name] = self._write_npz(
            self.directory / name,
            additions=batch.additions.codes,
            deletions=batch.deletions.codes,
        )
        payload = self._payload(
            name=self.name,
            num_vertices=self.num_vertices,
            num_batches=index + 1,
            checksums=checksums,
            tip=new_tip,
        )
        self._write_manifest(self.directory, payload,
                             backup_current=(self.directory / _MANIFEST).is_file())
        # Commit in-memory state only after both writes have succeeded.
        self._manifest_stat = self._stat_manifest()
        self._checksums = checksums
        self._num_batches = index + 1
        self._tip_cache = new_tip
        self._tip_edge_count = len(new_tip)
        self._tip_checksum = _edges_checksum(new_tip)
        self._format_version = 2
        return index

    def _compute_legacy_checksums(self) -> None:
        """Backfill checksums for a v1 store ahead of its v2 upgrade."""
        checksums = {"base.npz": _sha256(_read_file(self.directory / "base.npz"))}
        for index in range(self._num_batches):
            name = self._batch_name(index)
            checksums[name] = _sha256(_read_file(self.directory / name))
        self._checksums = checksums

    # -- integrity ------------------------------------------------------------
    def verify(self, deep: bool = False) -> VerifyReport:
        """Audit this store; see :meth:`verify_store`."""
        return type(self).verify_store(self.directory, deep=deep)

    @classmethod
    def verify_store(cls, directory: Union[str, Path],
                     deep: bool = False) -> VerifyReport:
        """Audit a store directory without requiring it to open cleanly.

        Checks the manifest's self-checksum, every data file against its
        recorded digest, the manifest backup's integrity, and flags
        leftover temporary files and orphan batch files (torn appends).
        With ``deep=True`` it additionally replays all batches strictly
        and checks the tip digest.  Reads bypass the fault-injection
        hooks: verification must stay dependable while faults are
        active.
        """
        directory = Path(directory)
        report = VerifyReport(directory=str(directory))
        manifest_path = directory / _MANIFEST
        if not manifest_path.is_file():
            report.problems.append(f"{directory} is not a snapshot store")
            return report
        try:
            payload = _parse_manifest(manifest_path.read_bytes(), str(directory))
        except ReproError as exc:
            report.problems.append(str(exc))
            payload = None
        if payload is not None:
            report.format_version = 1 if payload["format"] == _FORMAT_V1 else 2
            cls._verify_files(directory, payload, report)
            if deep and not report.problems:
                cls._verify_deep(directory, payload, report)
        bak = directory / _MANIFEST_BAK
        if bak.is_file():
            try:
                _parse_manifest(bak.read_bytes(), f"{directory} (backup)")
            except ReproError as exc:
                report.problems.append(f"manifest backup corrupt: {exc}")
        return report

    @classmethod
    def _verify_files(cls, directory: Path, payload: dict,
                      report: VerifyReport) -> None:
        num_batches = int(payload["num_batches"])
        checksums = payload.get("checksums", {})
        expected = ["base.npz"] + [cls._batch_name(i) for i in range(num_batches)]
        if report.format_version == 1:
            report.notes.append("v1 store: no checksums recorded")
        for name in expected:
            path = directory / name
            if not path.is_file():
                report.problems.append(f"missing {name}")
                continue
            report.files_checked += 1
            if report.format_version == 2:
                recorded = checksums.get(name)
                if recorded is None:
                    report.problems.append(f"no checksum recorded for {name}")
                elif _sha256(path.read_bytes()) != recorded:
                    report.problems.append(f"checksum mismatch: {name}")
        for name in sorted(checksums):
            if name not in expected:
                report.problems.append(
                    f"checksum recorded for unknown file {name}"
                )
        for path in sorted(directory.glob("*.tmp")):
            report.problems.append(f"leftover temporary file {path.name}")
        for path in sorted(directory.glob("batch_*.npz")):
            index = cls._parse_batch_index(path.name)
            if index is None or index >= num_batches:
                report.problems.append(
                    f"orphan batch file {path.name} (torn append?)"
                )

    @classmethod
    def _verify_deep(cls, directory: Path, payload: dict,
                     report: VerifyReport) -> None:
        num_vertices = int(payload["num_vertices"])
        try:
            tip = cls._load_edges(directory / "base.npz", "codes")
            for index in range(int(payload["num_batches"])):
                batch = cls._load_batch_file(
                    cls._batch_path(directory, index)
                )
                if batch.size and max(
                    batch.additions.max_vertex(), batch.deletions.max_vertex()
                ) >= num_vertices:
                    report.problems.append(
                        f"batch {index} references vertex out of range"
                    )
                tip = batch.apply(tip, strict=True)
        except Exception as exc:
            report.problems.append(f"replay failed: {exc}")
            return
        if payload["format"] == _FORMAT_V2 and (
            len(tip) != payload["tip_edge_count"]
            or _edges_checksum(tip) != payload["tip_checksum"]
        ):
            report.problems.append("tip digest mismatch after replay")

    @staticmethod
    def _load_edges(path: Path, key: str) -> EdgeSet:
        with np.load(path) as data:
            return EdgeSet(data[key])

    @staticmethod
    def _load_batch_file(path: Path) -> DeltaBatch:
        with np.load(path) as data:
            return DeltaBatch(
                additions=EdgeSet(data["additions"]),
                deletions=EdgeSet(data["deletions"]),
            )

    @staticmethod
    def _parse_batch_index(name: str) -> Optional[int]:
        stem = name[len("batch_"):-len(".npz")]
        return int(stem) if stem.isdigit() else None

    def recover(self) -> RecoveryReport:
        """Repair this store; see :meth:`recover_store`.

        The instance re-reads the recovered manifest afterwards, so it
        is safe to keep using it.
        """
        report = type(self).recover_store(self.directory)
        self.__init__(self.directory)
        return report

    @classmethod
    def recover_store(cls, directory: Union[str, Path]) -> RecoveryReport:
        """Return a store directory to a consistent, verifiable state.

        Deterministic policy, in order:

        1. delete leftover ``*.tmp`` files from interrupted writes;
        2. if the manifest is corrupt or missing, restore it from
           ``manifest.json.bak`` (failing that, the store is
           unrecoverable and :class:`IntegrityError` is raised);
        3. truncate to the longest prefix of referenced batches whose
           files exist, pass their checksums and replay cleanly;
        4. resolve a torn append: consecutive orphan batch files after
           the good prefix are *rolled forward* (committed) if they are
           intact and apply strictly to the tip, otherwise *rolled
           back* (deleted); remaining stray batch files are deleted;
        5. rewrite a clean v2 manifest (and backup) reflecting exactly
           the surviving files, with freshly computed checksums and tip
           digest.

        Afterwards ``verify()`` is clean.  Reads bypass the
        fault-injection hooks, mirroring :meth:`verify_store`.
        Raises :class:`IntegrityError` when the base snapshot or both
        manifest copies are damaged — those have no redundancy to
        recover from.
        """
        directory = Path(directory)
        report = RecoveryReport(directory=str(directory))
        actions = report.actions
        for path in sorted(directory.glob("*.tmp")):
            path.unlink()
            actions.append(f"removed leftover temporary file {path.name}")
        payload = cls._recover_manifest(directory, actions)
        num_batches = int(payload["num_batches"])
        checksums = payload.get("checksums", {})
        is_v2 = payload["format"] == _FORMAT_V2

        base_path = directory / "base.npz"
        if not base_path.is_file():
            raise IntegrityError(f"{directory}: base.npz is missing")
        base_data = base_path.read_bytes()
        if is_v2 and _sha256(base_data) != checksums.get("base.npz"):
            raise IntegrityError(
                f"{directory}: base.npz is corrupt and has no redundancy"
            )
        try:
            with np.load(io.BytesIO(base_data)) as data:
                tip = EdgeSet(data["codes"])
        except Exception as exc:
            raise IntegrityError(
                f"{directory}: base.npz is unreadable ({exc})"
            ) from exc
        new_checksums = {"base.npz": _sha256(base_data)}

        # Longest verifiable prefix of the batches the manifest references.
        good = 0
        for index in range(num_batches):
            name = cls._batch_name(index)
            path = directory / name
            if not path.is_file():
                break
            data = path.read_bytes()
            if is_v2 and checksums.get(name) not in (None, _sha256(data)):
                break
            try:
                with np.load(io.BytesIO(data)) as npz:
                    batch = DeltaBatch(
                        additions=EdgeSet(npz["additions"]),
                        deletions=EdgeSet(npz["deletions"]),
                    )
                tip = batch.apply(tip, strict=False)
            # lint: allow(error-taxonomy): an unreadable batch simply ends the verifiable prefix; the truncation is recorded as a recovery action just below
            except Exception:
                break
            new_checksums[name] = _sha256(data)
            good = index + 1
        if good < num_batches:
            actions.append(
                f"truncated to {good} of {num_batches} batches "
                f"(unverifiable suffix)"
            )
            for index in range(good, num_batches):
                path = cls._batch_path(directory, index)
                if path.is_file():
                    path.unlink()
                    actions.append(f"removed unverifiable {path.name}")

        # Torn append: roll consecutive intact orphans forward.
        index = good
        while True:
            path = cls._batch_path(directory, index)
            if not path.is_file():
                break
            data = path.read_bytes()
            try:
                with np.load(io.BytesIO(data)) as npz:
                    batch = DeltaBatch(
                        additions=EdgeSet(npz["additions"]),
                        deletions=EdgeSet(npz["deletions"]),
                    )
                if batch.size and max(
                    batch.additions.max_vertex(), batch.deletions.max_vertex()
                ) >= int(payload["num_vertices"]):
                    raise SnapshotError("vertex out of range")
                tip = batch.apply(tip, strict=True)
            except Exception:
                path.unlink()
                actions.append(f"rolled back torn append ({path.name})")
                break
            new_checksums[cls._batch_name(index)] = _sha256(data)
            actions.append(f"completed torn append ({path.name})")
            index += 1
        final_batches = max(good, index)
        for path in sorted(directory.glob("batch_*.npz")):
            batch_index = cls._parse_batch_index(path.name)
            if batch_index is None or batch_index >= final_batches:
                path.unlink()
                actions.append(f"removed stray batch file {path.name}")

        final_payload = cls._payload(
            name=payload["name"],
            num_vertices=int(payload["num_vertices"]),
            num_batches=final_batches,
            checksums=new_checksums,
            tip=tip,
        )
        current = None
        if (directory / _MANIFEST).is_file():
            try:
                current = _parse_manifest(
                    (directory / _MANIFEST).read_bytes(), str(directory)
                )
            except ReproError:
                current = None
        bak_ok = False
        if (directory / _MANIFEST_BAK).is_file():
            try:
                _parse_manifest(
                    (directory / _MANIFEST_BAK).read_bytes(), str(directory)
                )
                bak_ok = True
            except ReproError:
                bak_ok = False
        if actions or current != final_payload or not bak_ok:
            data = _manifest_bytes(final_payload)
            _write_file(directory / _MANIFEST, data)
            _write_file(directory / _MANIFEST_BAK, data)
            if current != final_payload:
                actions.append("rewrote manifest (v2)")
        report.num_batches = final_batches
        return report

    @classmethod
    def _recover_manifest(cls, directory: Path, actions: List[str]) -> dict:
        """The manifest payload to recover from, restoring the backup if
        the live copy is damaged."""
        manifest_path = directory / _MANIFEST
        if manifest_path.is_file():
            try:
                return _parse_manifest(manifest_path.read_bytes(),
                                       str(directory))
            except ReproError:
                pass
        bak_path = directory / _MANIFEST_BAK
        if bak_path.is_file():
            try:
                payload = _parse_manifest(bak_path.read_bytes(),
                                          f"{directory} (backup)")
            except ReproError:
                payload = None
            if payload is not None:
                actions.append("restored manifest from manifest.json.bak")
                return payload
        raise IntegrityError(
            f"{directory}: manifest unrecoverable (no valid backup)"
        )

    def __repr__(self) -> str:
        return (
            f"SnapshotStore({str(self.directory)!r}, name={self.name!r}, "
            f"snapshots={self.num_snapshots})"
        )
