"""Directory-backed persistent storage for evolving graphs.

Layout (one directory per evolving graph)::

    store/
      manifest.json        # name, num_vertices, num_batches, format tag
      base.npz             # snapshot 0 edge codes
      batch_00000.npz      # Δ+ / Δ− codes of batch 0
      batch_00001.npz
      ...

Mirrors the paper's storage organisation (§4.1): the graph is kept as
a base plus Δ batches, so new snapshots are appended as one small file
and nothing existing is rewritten.  Batches load lazily — opening a
store reads only the manifest.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.errors import SnapshotError
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.edgeset import EdgeSet

__all__ = ["SnapshotStore"]

_FORMAT = "repro-snapshot-store-v1"


class SnapshotStore:
    """Append-only on-disk store of a base snapshot plus delta batches."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / "manifest.json"
        if not manifest_path.is_file():
            raise SnapshotError(f"{self.directory} is not a snapshot store")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format") != _FORMAT:
            raise SnapshotError(
                f"{self.directory}: unsupported store format "
                f"{manifest.get('format')!r}"
            )
        self.name: str = manifest["name"]
        self.num_vertices: int = int(manifest["num_vertices"])
        self._num_batches: int = int(manifest["num_batches"])

    # -- creation -----------------------------------------------------------
    @classmethod
    def create(
        cls, directory: Union[str, Path], evolving: EvolvingGraph
    ) -> "SnapshotStore":
        """Persist an evolving graph into a new store directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / "manifest.json").exists():
            raise SnapshotError(f"{directory} already contains a store")
        np.savez_compressed(
            directory / "base.npz", codes=evolving.snapshot_edges(0).codes
        )
        for index, batch in enumerate(evolving.batches):
            cls._write_batch(directory, index, batch)
        manifest = {
            "format": _FORMAT,
            "name": evolving.name,
            "num_vertices": evolving.num_vertices,
            "num_batches": len(evolving.batches),
        }
        with open(directory / "manifest.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        return cls(directory)

    @staticmethod
    def _batch_path(directory: Path, index: int) -> Path:
        return directory / f"batch_{index:05d}.npz"

    @classmethod
    def _write_batch(cls, directory: Path, index: int, batch: DeltaBatch) -> None:
        np.savez_compressed(
            cls._batch_path(directory, index),
            additions=batch.additions.codes,
            deletions=batch.deletions.codes,
        )

    # -- shape ----------------------------------------------------------------
    @property
    def num_batches(self) -> int:
        return self._num_batches

    @property
    def num_snapshots(self) -> int:
        return self._num_batches + 1

    # -- reading ----------------------------------------------------------------
    def base_edges(self) -> EdgeSet:
        with np.load(self.directory / "base.npz") as data:
            return EdgeSet(data["codes"])

    def read_batch(self, index: int) -> DeltaBatch:
        if not 0 <= index < self._num_batches:
            raise SnapshotError(
                f"batch {index} out of range [0, {self._num_batches})"
            )
        path = self._batch_path(self.directory, index)
        if not path.is_file():
            raise SnapshotError(f"store is missing {path.name}")
        with np.load(path) as data:
            return DeltaBatch(
                additions=EdgeSet(data["additions"]),
                deletions=EdgeSet(data["deletions"]),
            )

    def iter_batches(self) -> Iterator[DeltaBatch]:
        for index in range(self._num_batches):
            yield self.read_batch(index)

    def load(self) -> EvolvingGraph:
        """Materialise the full evolving graph in memory."""
        return EvolvingGraph(
            self.num_vertices,
            self.base_edges(),
            list(self.iter_batches()),
            name=self.name,
        )

    # -- appending ------------------------------------------------------------
    def append(self, batch: DeltaBatch) -> int:
        """Append one batch (one new snapshot); returns its batch index.

        Validates the batch against the current tip before committing
        anything, so a bad batch leaves the store untouched.
        """
        tip = self.base_edges()
        for existing in self.iter_batches():
            tip = existing.apply(tip, strict=False)
        batch.apply(tip, strict=True)  # raises DeltaError if malformed
        if batch.additions.max_vertex() >= self.num_vertices or (
            batch.deletions.max_vertex() >= self.num_vertices
        ):
            raise SnapshotError("batch references vertex out of range")
        index = self._num_batches
        self._write_batch(self.directory, index, batch)
        self._num_batches += 1
        manifest = {
            "format": _FORMAT,
            "name": self.name,
            "num_vertices": self.num_vertices,
            "num_batches": self._num_batches,
        }
        with open(self.directory / "manifest.json", "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
        return index

    def __repr__(self) -> str:
        return (
            f"SnapshotStore({str(self.directory)!r}, name={self.name!r}, "
            f"snapshots={self.num_snapshots})"
        )
