"""Version-control primitives for evolving graphs (Table 1 of the paper).

========================  ====================================================
API                       Description
========================  ====================================================
``get_version(number)``   Retrieve a snapshot (as a mutation-free overlay)
``diff(a, b)``            Difference between two snapshots as a delta batch
``new_version(Δ+, Δ−)``   Append a snapshot and update the common graph
========================  ====================================================

The controller keeps the common-graph decomposition in sync with the
snapshot stream: per §4.1, when a new snapshot arrives, the edges it
touches (additions *and* deletions) are removed from the common graph
and redistributed into the per-snapshot surplus sets.
"""

from __future__ import annotations

from typing import Optional

from typing import TYPE_CHECKING

from repro.algorithms.base import MonotonicAlgorithm
from repro.core.common import CommonGraphDecomposition
from repro.errors import ScheduleError, SnapshotError

if TYPE_CHECKING:  # the evaluators import the kickstarter engine, which
    # imports this package; resolve them lazily at call time instead.
    from repro.core.results import EvolvingQueryResult
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.csr import CSRGraph
from repro.graph.edgeset import EdgeSet
from repro.graph.overlay import OverlayGraph
from repro.graph.weights import UnitWeights, WeightFn

__all__ = ["VersionController"]


class VersionController:
    """Snapshot version control backed by the CommonGraph representation."""

    def __init__(
        self,
        evolving: EvolvingGraph,
        weight_fn: Optional[WeightFn] = None,
    ) -> None:
        self.evolving = evolving
        self.weight_fn: WeightFn = weight_fn if weight_fn is not None else UnitWeights()
        self._decomposition = CommonGraphDecomposition.from_evolving(evolving)
        self._common_csr: Optional[CSRGraph] = None

    # -- decomposition access ------------------------------------------------
    @property
    def decomposition(self) -> CommonGraphDecomposition:
        return self._decomposition

    @property
    def num_versions(self) -> int:
        return self.evolving.num_snapshots

    def common_csr(self) -> CSRGraph:
        """The shared common-graph CSR (cached; never mutated)."""
        if self._common_csr is None:
            self._common_csr = self._decomposition.common_csr(self.weight_fn)
        return self._common_csr

    # -- Table 1 primitives -----------------------------------------------------
    def get_version(self, number: int) -> OverlayGraph:
        """Retrieve snapshot ``number`` as common graph + Δ overlay."""
        if not 0 <= number < self.num_versions:
            raise SnapshotError(
                f"version {number} out of range [0, {self.num_versions})"
            )
        surplus = self._decomposition.direct_hop_batch(number)
        delta_csr = self._decomposition.delta_csr(surplus, self.weight_fn)
        return OverlayGraph(self.common_csr(), (delta_csr,))

    def diff(self, a: int, b: int) -> DeltaBatch:
        """The delta batch transforming version ``a`` into version ``b``.

        Computed on the small surplus sets; the common graph cancels.
        """
        if not 0 <= a < self.num_versions or not 0 <= b < self.num_versions:
            raise SnapshotError("version out of range")
        sa = self._decomposition.direct_hop_batch(a)
        sb = self._decomposition.direct_hop_batch(b)
        return DeltaBatch(additions=sb - sa, deletions=sa - sb)

    def new_version(self, additions: EdgeSet, deletions: EdgeSet) -> int:
        """Create a new snapshot; returns its version number.

        The touched edges are removed from the common graph and pushed
        into the surplus sets (§4.1), so existing overlays remain valid
        and the common CSR is rebuilt only when it actually shrank.
        """
        batch = DeltaBatch(additions=additions, deletions=deletions)
        self.evolving.append_batch(batch)

        decomp = self._decomposition
        touched = (additions | deletions) & decomp.common
        new_common = decomp.common - touched
        surpluses = [s | touched for s in decomp.surpluses] if touched else list(
            decomp.surpluses
        )
        # Surplus of the new snapshot relative to the shrunk common graph.
        new_edges = self.evolving.snapshot_edges(self.num_versions - 1)
        surpluses.append(new_edges - new_common)
        self._decomposition = CommonGraphDecomposition(
            self.evolving.num_vertices, new_common, surpluses
        )
        if touched:
            self._common_csr = None  # the shared CSR shrank; rebuild lazily
        return self.num_versions - 1

    # -- query evaluation ---------------------------------------------------
    def evaluate(
        self,
        algorithm: MonotonicAlgorithm,
        source: int,
        first: int = 0,
        last: int = -1,
        strategy: str = "work-sharing",
    ) -> "EvolvingQueryResult":
        """Answer a query on a (range of) snapshot(s) in one call.

        ``first..last`` (inclusive; ``last=-1`` means the latest
        version) selects the window.  The window is evaluated from its
        own intermediate common graph rather than the global one, so a
        late, narrow window never pays for history before it — the
        range-query capability the paper's conclusion calls out.
        ``result.snapshot_values[k]`` holds version ``first + k``.
        """
        from repro.core.direct_hop import DirectHopEvaluator
        from repro.core.engine import WorkSharingEvaluator

        if last < 0:
            last += self.num_versions
        if not 0 <= first <= last < self.num_versions:
            raise SnapshotError(
                f"invalid range ({first}, {last}) for {self.num_versions} versions"
            )
        window = self._decomposition.restrict(first, last)
        if strategy == "direct-hop":
            evaluator = DirectHopEvaluator(
                window, algorithm, source, weight_fn=self.weight_fn
            )
        elif strategy == "work-sharing":
            evaluator = WorkSharingEvaluator(
                window, algorithm, source, weight_fn=self.weight_fn
            )
        else:
            raise ScheduleError(
                f"unknown strategy {strategy!r}; expected "
                f"'direct-hop' or 'work-sharing'"
            )
        return evaluator.run()

    def __repr__(self) -> str:
        return (
            f"VersionController(versions={self.num_versions}, "
            f"|Gc|={len(self._decomposition.common)})"
        )
