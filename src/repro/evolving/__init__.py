"""Evolving-graph model: delta batches, snapshots, stream generation,
and version-control primitives."""

from repro.evolving.delta import DeltaBatch
from repro.evolving.generator import UpdateStreamGenerator, generate_evolving_graph
from repro.evolving.snapshots import EvolvingGraph
from repro.evolving.store import RecoveryReport, SnapshotStore, VerifyReport
from repro.evolving.version_control import VersionController

__all__ = [
    "DeltaBatch",
    "EvolvingGraph",
    "SnapshotStore",
    "VerifyReport",
    "RecoveryReport",
    "UpdateStreamGenerator",
    "generate_evolving_graph",
    "VersionController",
]
