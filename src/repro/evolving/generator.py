"""Synthetic update-stream generation for evolving-graph workloads.

Mirrors the paper's experimental setup: each snapshot is separated from
the next by a batch of edge changes split between additions and
deletions (§5: "split evenly between additions and deletions", with a
sensitivity study over the ratio in Figure 10).

Additions draw from two pools: previously-deleted edges (re-additions,
which real update streams exhibit and which the paper's own worked
example in Figure 4 contains) and fresh random edges.  Deletions sample
the current edge set uniformly.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeltaError
from repro.evolving.delta import DeltaBatch
from repro.evolving.snapshots import EvolvingGraph
from repro.graph.edgeset import EdgeSet, encode_edges

__all__ = ["UpdateStreamGenerator", "generate_evolving_graph"]


class UpdateStreamGenerator:
    """Generates a stream of delta batches over a base edge set.

    Parameters
    ----------
    num_vertices:
        Vertex-id range for fresh edges.
    base:
        Edge set of snapshot 0.
    batch_size:
        Total updates (additions + deletions) per batch.
    add_fraction:
        Fraction of each batch that is additions (0.5 = paper default).
    readd_fraction:
        Fraction of additions drawn from previously deleted edges when
        available (creates the shared structure the Triangular Grid
        exploits).
    protect_vertex:
        Optional vertex whose *out*-edges are never deleted — keeps a
        query source from being disconnected in tiny test graphs.
    """

    def __init__(
        self,
        num_vertices: int,
        base: EdgeSet,
        batch_size: int,
        add_fraction: float = 0.5,
        readd_fraction: float = 0.5,
        seed: int = 0,
        protect_vertex: Optional[int] = None,
    ) -> None:
        if batch_size < 1:
            raise DeltaError("batch_size must be >= 1")
        if not 0.0 <= add_fraction <= 1.0:
            raise DeltaError("add_fraction must be in [0, 1]")
        if not 0.0 <= readd_fraction <= 1.0:
            raise DeltaError("readd_fraction must be in [0, 1]")
        self.num_vertices = int(num_vertices)
        self.batch_size = int(batch_size)
        self.add_fraction = float(add_fraction)
        self.readd_fraction = float(readd_fraction)
        self.protect_vertex = protect_vertex
        self._rng = np.random.default_rng(seed)
        self._current = base
        self._removed_pool = EdgeSet.empty()

    # -- sampling helpers ---------------------------------------------------
    def _sample_deletions(self, count: int) -> EdgeSet:
        candidates = self._current.codes
        if self.protect_vertex is not None:
            src = candidates >> np.int64(32)
            candidates = candidates[src != self.protect_vertex]
        count = min(count, candidates.size)
        if count == 0:
            return EdgeSet.empty()
        picks = self._rng.choice(candidates.size, size=count, replace=False)
        return EdgeSet(candidates[picks])

    def _sample_fresh(self, count: int, forbidden: EdgeSet) -> EdgeSet:
        collected = np.empty(0, dtype=np.int64)
        attempts = 0
        while collected.size < count and attempts < 64:
            want = count - collected.size
            batch = max(want * 2, 64)
            src = self._rng.integers(0, self.num_vertices, size=batch, dtype=np.int64)
            dst = self._rng.integers(0, self.num_vertices, size=batch, dtype=np.int64)
            keep = src != dst
            codes = np.unique(encode_edges(src[keep], dst[keep]))
            codes = codes[~self._current.contains_codes(codes)]
            codes = codes[~forbidden.contains_codes(codes)]
            collected = np.union1d(collected, codes)
            attempts += 1
        if collected.size > count:
            picks = self._rng.choice(collected.size, size=count, replace=False)
            collected = collected[picks]
        return EdgeSet(collected)

    def _sample_additions(self, count: int, deletions: EdgeSet) -> EdgeSet:
        n_readd = int(round(count * self.readd_fraction))
        pool = (self._removed_pool - self._current).difference(deletions)
        n_readd = min(n_readd, len(pool))
        readds = EdgeSet.empty()
        if n_readd:
            picks = self._rng.choice(pool.codes.size, size=n_readd, replace=False)
            readds = EdgeSet(pool.codes[picks])
        fresh = self._sample_fresh(count - len(readds), forbidden=deletions | readds)
        return readds | fresh

    # -- stream interface ---------------------------------------------------
    def next_batch(self) -> DeltaBatch:
        """Generate the next delta batch and advance the current state."""
        n_add = int(round(self.batch_size * self.add_fraction))
        n_del = self.batch_size - n_add
        deletions = self._sample_deletions(n_del)
        additions = self._sample_additions(n_add, deletions)
        batch = DeltaBatch(additions=additions, deletions=deletions)
        self._current = batch.apply(self._current, strict=True)
        self._removed_pool = self._removed_pool | deletions
        return batch

    @property
    def current_edges(self) -> EdgeSet:
        return self._current


def generate_evolving_graph(
    num_vertices: int,
    base: EdgeSet,
    num_snapshots: int,
    batch_size: int,
    add_fraction: float = 0.5,
    readd_fraction: float = 0.5,
    seed: int = 0,
    name: str = "",
    protect_vertex: Optional[int] = None,
) -> EvolvingGraph:
    """Build an :class:`EvolvingGraph` with ``num_snapshots`` snapshots."""
    if num_snapshots < 1:
        raise DeltaError("num_snapshots must be >= 1")
    gen = UpdateStreamGenerator(
        num_vertices,
        base,
        batch_size,
        add_fraction=add_fraction,
        readd_fraction=readd_fraction,
        seed=seed,
        protect_vertex=protect_vertex,
    )
    batches = [gen.next_batch() for _ in range(num_snapshots - 1)]
    return EvolvingGraph(num_vertices, base, batches, name=name)
