"""Shared fixtures for the pytest-benchmark suite.

The benchmarks use a reduced ("bench") scale so the whole suite runs in
a couple of minutes; the full paper-scale regeneration is the job of
``python -m repro.bench`` (see EXPERIMENTS.md).  Every bench file maps
to one table or figure of the paper — the mapping is in each module
docstring and in DESIGN.md's experiment index.
"""

from __future__ import annotations

import pytest

from repro.bench.workloads import WorkloadSpec, build_workload
from repro.core.common import CommonGraphDecomposition
from repro.graph.weights import HashWeights

WF = HashWeights(max_weight=64, seed=0)

#: Scale used by all benchmarks: LJ at 1/5 size, 10 snapshots.
BENCH_SPEC = WorkloadSpec(
    dataset="LJ", num_snapshots=10, batch_size=60, edge_scale=0.2, seed=3
)

#: A bigger variant for the scalability benches.
BENCH_SPEC_LARGE = BENCH_SPEC.scaled(num_snapshots=20)


@pytest.fixture(scope="session")
def workload():
    return build_workload(BENCH_SPEC, weight_fn=WF)


@pytest.fixture(scope="session")
def workload_large():
    return build_workload(BENCH_SPEC_LARGE, weight_fn=WF)


@pytest.fixture(scope="session")
def decomposition(workload):
    return CommonGraphDecomposition.from_evolving(workload.evolving)


@pytest.fixture(scope="session")
def decomposition_large(workload_large):
    return CommonGraphDecomposition.from_evolving(workload_large.evolving)
