"""Figure 1 — the cost asymmetry between deletions and additions.

Top panel (group ``figure1-incremental``): incremental computation cost
of a deletion batch vs an equal-sized addition batch.  Bottom panel
(group ``figure1-mutation``): graph-mutation cost of the same two
batches.  The paper measures deletions ≈ 3x additions for incremental
computation and several-x for mutation.

Graph construction and initial convergence happen in per-round setup,
so only the operation under study is timed.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.evolving.generator import UpdateStreamGenerator
from repro.graph.mutable import MutableGraph
from repro.kickstarter.deletion import trim_and_repair
from repro.kickstarter.engine import incremental_additions, static_compute

from conftest import WF

BATCH = 120
ALGORITHM = "SSSP"
ROUNDS = 5


@pytest.fixture(scope="module")
def setup_data(workload):
    base = workload.evolving.snapshot_edges(0)
    n = workload.num_vertices
    additions = UpdateStreamGenerator(
        n, base, BATCH, add_fraction=1.0, seed=1, protect_vertex=workload.source
    ).next_batch().additions
    deletions = UpdateStreamGenerator(
        n, base, BATCH, add_fraction=0.0, seed=1, protect_vertex=workload.source
    ).next_batch().deletions
    return workload, base, additions, deletions


def _fresh(workload, base, alg=None):
    graph = MutableGraph.from_edge_set(base, workload.num_vertices, weight_fn=WF)
    state = None
    if alg is not None:
        state = static_compute(graph, alg, workload.source, track_parents=True)
    return graph, state


@pytest.mark.benchmark(group="figure1-incremental")
def test_incremental_additions(benchmark, setup_data):
    workload, base, additions, _ = setup_data
    alg = get_algorithm(ALGORITHM)
    src, dst = additions.arrays()
    weights = WF(src, dst)

    def setup():
        graph, state = _fresh(workload, base, alg)
        graph.add_batch(additions)
        return (graph, state), {}

    def run(graph, state):
        incremental_additions(graph, alg, state, src, dst, weights)

    benchmark.pedantic(run, setup=setup, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="figure1-incremental")
def test_incremental_deletions(benchmark, setup_data):
    workload, base, _, deletions = setup_data
    alg = get_algorithm(ALGORITHM)

    def setup():
        graph, state = _fresh(workload, base, alg)
        graph.delete_batch(deletions)
        return (graph, state), {}

    def run(graph, state):
        trim_and_repair(graph, alg, state, deletions)

    benchmark.pedantic(run, setup=setup, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="figure1-mutation")
def test_mutation_additions(benchmark, setup_data):
    workload, base, additions, _ = setup_data

    def setup():
        graph, _ = _fresh(workload, base)
        return (graph,), {}

    def run(graph):
        graph.add_batch(additions)

    benchmark.pedantic(run, setup=setup, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="figure1-mutation")
def test_mutation_deletions(benchmark, setup_data):
    workload, base, _, deletions = setup_data

    def setup():
        graph, _ = _fresh(workload, base)
        return (graph,), {}

    def run(graph):
        graph.delete_batch(deletions)

    benchmark.pedantic(run, setup=setup, rounds=ROUNDS, iterations=1)
