"""Benchmarks for the extensions beyond the paper's evaluation.

* ``range-query``: evaluating a late 5-snapshot window via
  ``CommonGraphDecomposition.restrict`` (window-rooted) vs direct hops
  from the global common graph — the paper's future-work range-query
  claim, quantified.
* ``parallel-work-sharing``: the pooled Work-Sharing execution vs its
  sequential schedule walk.
* ``trend-tracking``: full metric-trend extraction end to end.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.trends import TrendTracker
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.core.parallel import ParallelWorkSharing

from conftest import WF

ALGORITHM = "SSSP"
ROUNDS = 3
WINDOW = 5


@pytest.mark.benchmark(group="range-query")
def test_window_rooted_range_query(benchmark, workload, decomposition):
    first = decomposition.num_snapshots - WINDOW
    last = decomposition.num_snapshots - 1
    alg = get_algorithm(ALGORITHM)
    window = decomposition.restrict(first, last)

    def run():
        result = DirectHopEvaluator(
            window, alg, workload.source, weight_fn=WF
        ).run(keep_values=False)
        benchmark.extra_info["additions"] = result.additions_processed

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="range-query")
def test_global_rooted_range_query(benchmark, workload, decomposition):
    """The same window, but every hop starts from the global Gc."""
    from repro.core.common import CommonGraphDecomposition

    first = decomposition.num_snapshots - WINDOW
    alg = get_algorithm(ALGORITHM)
    sub = CommonGraphDecomposition(
        decomposition.num_vertices,
        decomposition.common,
        decomposition.surpluses[first:],
    )

    def run():
        result = DirectHopEvaluator(
            sub, alg, workload.source, weight_fn=WF
        ).run(keep_values=False)
        benchmark.extra_info["additions"] = result.additions_processed

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="parallel-work-sharing")
def test_sequential_work_sharing(benchmark, workload, decomposition):
    def run():
        WorkSharingEvaluator(
            decomposition, get_algorithm(ALGORITHM), workload.source,
            weight_fn=WF,
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="parallel-work-sharing")
def test_pooled_work_sharing(benchmark, workload, decomposition):
    evaluator = ParallelWorkSharing(
        decomposition, get_algorithm(ALGORITHM), workload.source, weight_fn=WF
    )

    def run():
        evaluator.run(use_pool=True, max_workers=8)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="trend-tracking")
def test_trend_tracking(benchmark, workload):
    tracker = TrendTracker(
        workload.evolving, get_algorithm(ALGORITHM), workload.source,
        weight_fn=WF,
    )

    def run():
        tracker.track(metrics=("reach", "mean", "extreme"))

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
