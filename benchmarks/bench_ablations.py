"""Design ablations (DESIGN.md §5).

* ``ablation-schedule``: schedule construction cost, greedy vs exact
  (the exact solver is exponential — run on a 5-snapshot prefix) and the
  resulting schedule costs as ``extra_info``.
* ``ablation-representation``: Δ-CSR overlay vs rebuilding each
  snapshot's full CSR for the same Direct-Hop evaluation.
* ``ablation-scheduler``: sync vs async vs auto engine modes.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.bench.experiments import _truncated
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.steiner import exact_steiner, greedy_steiner
from repro.core.triangular_grid import TriangularGrid
from repro.graph.csr import CSRGraph
from repro.kickstarter.engine import incremental_additions, static_compute

from conftest import WF

ROUNDS = 3


@pytest.fixture(scope="module")
def small_grid(workload):
    evolving = _truncated(workload.evolving, 5)
    return TriangularGrid(CommonGraphDecomposition.from_evolving(evolving))


@pytest.mark.benchmark(group="ablation-schedule")
def test_greedy_steiner(benchmark, small_grid):
    tree = benchmark.pedantic(
        lambda: greedy_steiner(small_grid), rounds=ROUNDS, iterations=1
    )
    benchmark.extra_info["cost_additions"] = tree.cost(small_grid)


@pytest.mark.benchmark(group="ablation-schedule")
def test_exact_steiner(benchmark, small_grid):
    tree = benchmark.pedantic(
        lambda: exact_steiner(small_grid), rounds=ROUNDS, iterations=1
    )
    benchmark.extra_info["cost_additions"] = tree.cost(small_grid)


@pytest.mark.benchmark(group="ablation-representation")
def test_overlay_representation(benchmark, workload, decomposition):
    alg = get_algorithm("SSSP")

    def run():
        DirectHopEvaluator(
            decomposition, alg, workload.source, weight_fn=WF
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="ablation-representation")
def test_rebuild_representation(benchmark, workload, decomposition):
    """Same schedule, but every snapshot's CSR is materialised in full."""
    alg = get_algorithm("SSSP")

    def run():
        base_csr = decomposition.common_csr(WF)
        base_state = static_compute(base_csr, alg, workload.source)
        for index in range(decomposition.num_snapshots):
            full = CSRGraph.from_edge_set(
                decomposition.snapshot_edges(index),
                decomposition.num_vertices,
                weight_fn=WF,
            )
            state = base_state.copy()
            batch = decomposition.direct_hop_batch(index)
            src, dst = batch.arrays()
            incremental_additions(full, alg, state, src, dst, WF(src, dst))

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.parametrize("mode", ["sync", "async", "auto"])
def test_engine_modes(benchmark, workload, decomposition, mode):
    benchmark.group = "ablation-scheduler"
    alg = get_algorithm("SSSP")

    def run():
        DirectHopEvaluator(
            decomposition, alg, workload.source, weight_fn=WF, mode=mode
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
