"""Figure 11 — execution-time breakdown.

Benchmarks record the full runs and attach the per-phase breakdown
(incremental add/del, mutation add/del, initial compute) as
``extra_info``, mirroring the stacked bars of the figure: KickStarter
pays all four streaming components, CommonGraph only incremental
additions.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.core.engine import WorkSharingEvaluator
from repro.kickstarter.streaming import StreamingSession

from conftest import WF

ALGORITHM = "SSSP"
ROUNDS = 3
PHASES = (
    "incremental_add", "incremental_del", "mutation_add",
    "mutation_del", "initial_compute",
)


@pytest.mark.benchmark(group="figure11")
def test_kickstarter_breakdown(benchmark, workload):
    timers = {}

    def run():
        result = StreamingSession(
            workload.evolving, get_algorithm(ALGORITHM), workload.source,
            weight_fn=WF, keep_values=False,
        ).run()
        timers.update(result.timer.as_dict())

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    for phase in PHASES:
        benchmark.extra_info[phase] = round(timers.get(phase, 0.0), 5)
    assert timers["mutation_del"] > 0
    assert timers["incremental_del"] > 0


@pytest.mark.benchmark(group="figure11")
def test_commongraph_breakdown(benchmark, workload, decomposition):
    timers = {}

    def run():
        result = WorkSharingEvaluator(
            decomposition, get_algorithm(ALGORITHM), workload.source, weight_fn=WF
        ).run(keep_values=False)
        timers.update(result.timer.as_dict())

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
    for phase in PHASES:
        benchmark.extra_info[phase] = round(timers.get(phase, 0.0), 5)
    # CommonGraph has no mutation or deletion phases at all.
    assert "mutation_add" not in timers
    assert "mutation_del" not in timers
    assert "incremental_del" not in timers
