"""Table 5 — parallel Direct-Hop.

Benchmarks a *single* hop (the unit whose maximum is the paper's
critical-path estimate) against the full sequential KickStarter stream,
plus the real thread-pool execution of all hops.  The paper projects
one to two orders of magnitude; compare ``table5-single-hop`` with
``table5-sequential-kickstarter``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import get_algorithm
from repro.core.parallel import ParallelDirectHop
from repro.graph.overlay import OverlayGraph
from repro.kickstarter.engine import incremental_additions
from repro.kickstarter.streaming import StreamingSession

from conftest import WF

ALGORITHM = "SSSP"
ROUNDS = 3


@pytest.mark.benchmark(group="table5")
def test_sequential_kickstarter(benchmark, workload):
    def run():
        StreamingSession(
            workload.evolving, get_algorithm(ALGORITHM), workload.source,
            weight_fn=WF, keep_values=False,
        ).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.benchmark(group="table5")
def test_single_hop(benchmark, workload, decomposition):
    """One direct hop — the critical-path unit of the parallel estimate."""
    alg = get_algorithm(ALGORITHM)
    evaluator = ParallelDirectHop(decomposition, alg, workload.source, weight_fn=WF)
    base_state = evaluator._hopper.base_state()
    base_csr = decomposition.common_csr(WF)
    # The most expensive hop is the last snapshot (largest surplus).
    index = int(np.argmax([len(s) for s in decomposition.surpluses]))
    batch = decomposition.direct_hop_batch(index)
    delta_csr = decomposition.delta_csr(batch, WF)
    src, dst = batch.arrays()
    weights = WF(src, dst)

    def run():
        state = base_state.copy()
        overlay = OverlayGraph(base_csr, (delta_csr,))
        incremental_additions(overlay, alg, state, src, dst, weights)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=2)


@pytest.mark.benchmark(group="table5")
def test_thread_pool_all_hops(benchmark, workload, decomposition):
    alg = get_algorithm(ALGORITHM)

    def run():
        ParallelDirectHop(decomposition, alg, workload.source, weight_fn=WF).run(
            use_pool=True, max_workers=8
        )

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
