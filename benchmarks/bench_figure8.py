"""Figure 8 — scalability in the number of snapshots.

Each strategy is benchmarked at two window sizes (10 vs 20 snapshots of
the same update stream).  The paper's claims: all three strategies grow
linearly in the snapshot count, and work-sharing overtakes direct-hop
as the window widens.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.bench.experiments import _truncated
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.kickstarter.streaming import StreamingSession

from conftest import WF

ALGORITHM = "SSSP"
ROUNDS = 3
WINDOWS = (10, 20)


@pytest.fixture(scope="module", params=WINDOWS)
def window(request, workload_large):
    count = request.param
    evolving = _truncated(workload_large.evolving, count)
    decomp = CommonGraphDecomposition.from_evolving(evolving)
    return count, evolving, decomp, workload_large.source


def test_kickstarter(benchmark, window):
    count, evolving, _, source = window
    benchmark.group = f"figure8-{count}snapshots"

    def run():
        StreamingSession(
            evolving, get_algorithm(ALGORITHM), source,
            weight_fn=WF, keep_values=False,
        ).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


def test_direct_hop(benchmark, window):
    count, _, decomp, source = window
    benchmark.group = f"figure8-{count}snapshots"

    def run():
        DirectHopEvaluator(
            decomp, get_algorithm(ALGORITHM), source, weight_fn=WF
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


def test_work_sharing(benchmark, window):
    count, _, decomp, source = window
    benchmark.group = f"figure8-{count}snapshots"

    def run():
        WorkSharingEvaluator(
            decomp, get_algorithm(ALGORITHM), source, weight_fn=WF
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
