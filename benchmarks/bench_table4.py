"""Table 4 — the headline comparison.

One benchmark per (strategy, algorithm): KickStarter streaming vs
Direct-Hop vs Work-Sharing over the full snapshot window.  The paper's
speedups (Direct-Hop 1.02x–7.91x, Work-Sharing 1.38x–8.17x over
KickStarter) correspond to the ratios between the ``table4-<alg>``
group members here.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.kickstarter.streaming import StreamingSession

from conftest import WF

ALGORITHMS = ("BFS", "SSSP", "SSWP")
ROUNDS = 3


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_kickstarter(benchmark, workload, algorithm):
    benchmark.group = f"table4-{algorithm}"

    def run():
        StreamingSession(
            workload.evolving, get_algorithm(algorithm), workload.source,
            weight_fn=WF, keep_values=False,
        ).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_direct_hop(benchmark, workload, decomposition, algorithm):
    benchmark.group = f"table4-{algorithm}"

    def run():
        DirectHopEvaluator(
            decomposition, get_algorithm(algorithm), workload.source, weight_fn=WF
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_work_sharing(benchmark, workload, decomposition, algorithm):
    benchmark.group = f"table4-{algorithm}"

    def run():
        WorkSharingEvaluator(
            decomposition, get_algorithm(algorithm), workload.source, weight_fn=WF
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
