"""Benchmarks for the live query service (``repro.service``).

Three questions, answered at bench scale and recorded in
``BENCH_service.json`` next to the repository root so successive PRs
can track the trajectory:

* **throughput** — queries/second through the full TCP + planner stack,
  for a mixed plan (distinct and repeated queries) and for a fully
  cached plan;
* **cache effectiveness** — result-cache and node-cache hit rates after
  the mixed plan;
* **ingest latency** — extending the decomposition by one snapshot
  incrementally (``CommonGraphDecomposition.extended``, what the
  service does) vs rebuilding it from scratch from all snapshots;
* **observability overhead** — the mixed plan again with
  :mod:`repro.obs` fully on (sampling every span, metrics collected),
  reported as a percentage against the obs-off throughput;
* **live-tip updates** — absorbing a stream of single-edge updates
  through the :mod:`repro.livetip` overlay (ops/second and per-update
  p99, with a converged state under push repair) vs pushing each edge
  through a one-edge batch ingest — the recorded speedup is the point
  of the overlay and must be >= 5x;
* **overload behaviour** — a seeded burst of near-simultaneous clients
  against a deliberately small admission lane, recording the shed rate
  and the p99 latency of the admitted requests;
* **fleet affinity** — the same stack behind a 3-replica
  :mod:`repro.fleet` router, with a per-source overlapping query plan:
  consistent hashing keeps each source's queries on one replica, so
  the fleet's aggregate node-cache hit rate must beat the
  single-replica mixed-plan baseline.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Any, Dict

import pytest

from repro import faults, obs
from repro.core.common import CommonGraphDecomposition
from repro.errors import ServiceOverloadedError
from repro.evolving.delta import DeltaBatch
from repro.evolving.store import SnapshotStore
from repro.fleet import FleetSupervisor
from repro.graph.edgeset import EdgeSet
from repro.service import (
    AdmissionPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceRunner,
    ServiceState,
)

from conftest import BENCH_SPEC, WF

ROUNDS = 3
RESULTS: Dict[str, Any] = {}

#: The mixed query plan: algorithm, source offset, range (None = window).
MIXED_PLAN = (
    ("BFS", 0, None, None),
    ("SSSP", 0, None, None),
    ("BFS", 0, None, None),      # repeat -> result-cache hit
    ("SSSP", 0, 2, 8),           # overlap -> node-cache reuse
    ("BFS", 1, None, None),
    ("SSSP", 0, None, None),     # repeat -> result-cache hit
)


@pytest.fixture(scope="module")
def service_store(tmp_path_factory, workload):
    path = tmp_path_factory.mktemp("bench-service") / "store"
    return SnapshotStore.create(path, workload.evolving)


@pytest.fixture(scope="module")
def running(service_store):
    state = ServiceState(service_store, weight_fn=WF)
    with ServiceRunner(state) as runner:
        yield runner
    state.close()


@pytest.fixture(scope="module", autouse=True)
def emit_results():
    """Write the accumulated metrics once the module's benches ran."""
    yield
    if RESULTS:
        RESULTS["spec"] = {
            "dataset": BENCH_SPEC.dataset,
            "num_snapshots": BENCH_SPEC.num_snapshots,
            "batch_size": BENCH_SPEC.batch_size,
            "edge_scale": BENCH_SPEC.edge_scale,
            "seed": BENCH_SPEC.seed,
        }
        out = Path(__file__).resolve().parents[1] / "BENCH_service.json"
        out.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n")


def run_plan(port, workload):
    with ServiceClient(port=port) as client:
        for algorithm, offset, first, last in MIXED_PLAN:
            client.query(algorithm, workload.source + offset, first, last)


@pytest.mark.benchmark(group="service-throughput")
def test_mixed_query_throughput(benchmark, running, workload):
    """The mixed plan, cold caches only on the very first round."""
    benchmark.pedantic(run_plan, args=(running.port, workload),
                       rounds=ROUNDS, iterations=1, warmup_rounds=0)
    qps = len(MIXED_PLAN) / benchmark.stats.stats.mean
    benchmark.extra_info["queries_per_second"] = round(qps, 2)
    RESULTS["mixed_queries_per_second"] = round(qps, 2)
    with ServiceClient(port=running.port) as client:
        status = client.status()
    RESULTS["result_cache_hit_rate"] = status["result_cache"]["hit_rate"]
    RESULTS["node_cache_hit_rate"] = status["node_cache"]["hit_rate"]


@pytest.fixture
def obs_running(service_store):
    """A second service on the same store with observability fully on."""
    obs.configure(sample_rate=1.0)
    state = ServiceState(service_store, weight_fn=WF)
    unsubscribe = state.register_metrics()
    with ServiceRunner(state) as runner:
        yield runner
    unsubscribe()
    state.close()
    obs.disable()


@pytest.mark.benchmark(group="service-throughput")
def test_mixed_query_throughput_obs(benchmark, obs_running, workload):
    """The same mixed plan with every span sampled and metrics live.

    Runs on a fresh state so its caches start as cold as the obs-off
    variant's did; the recorded overhead is the honest end-to-end cost
    of full instrumentation.
    """
    benchmark.pedantic(run_plan, args=(obs_running.port, workload),
                       rounds=ROUNDS, iterations=1, warmup_rounds=0)
    qps = len(MIXED_PLAN) / benchmark.stats.stats.mean
    benchmark.extra_info["queries_per_second"] = round(qps, 2)
    RESULTS["mixed_queries_per_second_obs"] = round(qps, 2)
    baseline = RESULTS.get("mixed_queries_per_second")
    if baseline:
        overhead = (baseline - qps) / baseline * 100.0
        benchmark.extra_info["observability_overhead_pct"] = round(overhead, 2)
        RESULTS["observability_overhead_pct"] = round(overhead, 2)


@pytest.mark.benchmark(group="service-throughput")
def test_cached_query_throughput(benchmark, running, workload):
    """One fully memoised query, round-tripped through the protocol."""
    with ServiceClient(port=running.port) as client:
        client.query("BFS", workload.source)  # ensure it is cached

        def run():
            response = client.query("BFS", workload.source)
            assert response["from_cache"]

        benchmark.pedantic(run, rounds=ROUNDS, iterations=5)
    qps = 1.0 / benchmark.stats.stats.mean
    benchmark.extra_info["queries_per_second"] = round(qps, 2)
    RESULTS["cached_queries_per_second"] = round(qps, 2)


def _next_snapshot(evolving):
    """The tip perturbed by one synthetic batch (adds + drops)."""
    tip = evolving.snapshot_edges(evolving.num_snapshots - 1)
    dropped = EdgeSet(tip.codes[:BENCH_SPEC.batch_size // 2])
    base = evolving.snapshot_edges(0)
    returned = EdgeSet((base - tip).codes[:BENCH_SPEC.batch_size // 2])
    return (tip - dropped) | returned


@pytest.mark.benchmark(group="service-ingest")
def test_incremental_extension(benchmark, workload, decomposition):
    """What the service pays per ingest: one ``extended`` call."""
    new_edges = _next_snapshot(workload.evolving)
    n = decomposition.num_snapshots
    for i in range(n):  # the live cache a long-running service carries
        decomposition.interval_surplus(i, n - 1)

    def run():
        decomposition.extended(new_edges)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=3)
    RESULTS["ingest_incremental_ms"] = round(
        benchmark.stats.stats.mean * 1000, 3
    )


@pytest.mark.benchmark(group="service-ingest")
def test_from_scratch_rebuild(benchmark, workload):
    """The alternative: re-decomposing every snapshot on each ingest."""
    evolving = workload.evolving
    snapshots = [
        evolving.snapshot_edges(i) for i in range(evolving.num_snapshots)
    ]
    snapshots.append(_next_snapshot(evolving))

    def run():
        CommonGraphDecomposition.from_snapshots(
            evolving.num_vertices, snapshots
        )

    benchmark.pedantic(run, rounds=ROUNDS, iterations=3)
    RESULTS["ingest_rebuild_ms"] = round(
        benchmark.stats.stats.mean * 1000, 3
    )
    if "ingest_incremental_ms" in RESULTS:
        RESULTS["ingest_speedup"] = round(
            RESULTS["ingest_rebuild_ms"]
            / max(RESULTS["ingest_incremental_ms"], 1e-9), 2
        )


LIVETIP_UPDATES = 16  # insert+delete pairs per round


def _fresh_pairs(state, count):
    """``count`` edges absent from the durable tip, deterministically."""
    tip = state.store.load().snapshot_edges(-1)
    present = set(tip)
    n = state.decomposition.num_vertices
    picked = []
    for u in range(n):
        for v in range(n):
            if u != v and (u, v) not in present:
                picked.append((u, v))
                if len(picked) == count:
                    return picked
    raise AssertionError("graph too dense for fresh edges")


@pytest.mark.benchmark(group="service-livetip")
def test_livetip_update_stream(benchmark, tmp_path_factory, workload):
    """Per-update absorb latency at the live tip.

    A stream of insert/delete updates against a state holding one
    converged SSSP answer, so every update pays the real cost: strict
    validation, the overlay's graph mutation, and a KickStarter push
    repair of the tracked state.  Folds are pushed out of the window
    (``livetip_max_updates`` effectively infinite) — compaction cost
    is the ingest benches' story, not this one's.
    """
    path = tmp_path_factory.mktemp("bench-livetip") / "store"
    store = SnapshotStore.create(path, workload.evolving)
    state = ServiceState(store, weight_fn=WF, livetip_max_updates=10**6)
    latencies: list = []
    try:
        pool = iter(_fresh_pairs(state, 1 + ROUNDS * LIVETIP_UPDATES))
        # Prime a tracked state: one pending update makes the next
        # query capture-and-adopt its converged SSSP values, which the
        # benchmarked stream then push-repairs on every update.
        first = next(pool)
        state.update("insert", *first)
        assert state.query("SSSP", workload.source).livetip_seq == 1
        state.update("delete", *first)

        def run():
            for _ in range(LIVETIP_UPDATES):
                u, v = next(pool)
                start = time.perf_counter()
                state.update("insert", u, v)
                latencies.append(time.perf_counter() - start)
                start = time.perf_counter()
                state.update("delete", u, v)
                latencies.append(time.perf_counter() - start)

        benchmark.pedantic(run, rounds=ROUNDS, iterations=1,
                           warmup_rounds=0)
        # Every update was absorbed, none folded.
        assert state._livetip.seq == 2 * (1 + ROUNDS * LIVETIP_UPDATES)
    finally:
        state.close()

    mean = sum(latencies) / len(latencies)
    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    benchmark.extra_info["update_ops_per_second"] = round(1.0 / mean, 2)
    benchmark.extra_info["update_p99_latency_ms"] = round(p99 * 1000, 3)
    RESULTS["update_ops_per_second"] = round(1.0 / mean, 2)
    RESULTS["update_p99_latency_ms"] = round(p99 * 1000, 3)
    RESULTS["_livetip_update_mean_s"] = mean


@pytest.mark.benchmark(group="service-livetip")
def test_one_edge_batch_baseline(benchmark, tmp_path_factory, workload):
    """The alternative a system without the overlay is stuck with:
    every single-edge update as its own one-edge ``DeltaBatch`` through
    the full ingest lane (decomposition extension, store append, epoch
    bump).  The live tip must beat this per-update by >= 5x — that
    multiple IS the overlay, measured through the same state object.
    """
    path = tmp_path_factory.mktemp("bench-livetip-batch") / "store"
    store = SnapshotStore.create(path, workload.evolving)
    state = ServiceState(store, weight_fn=WF, livetip=False)
    try:
        state.query("SSSP", workload.source)  # same warm planner
        pool = iter(_fresh_pairs(state, ROUNDS * 3 + 4))

        def run():
            u, v = next(pool)
            state.ingest(DeltaBatch(
                additions=EdgeSet.from_pairs([(u, v)]),
                deletions=EdgeSet.empty(),
            ))

        benchmark.pedantic(run, rounds=ROUNDS, iterations=3,
                           warmup_rounds=0)
    finally:
        state.close()

    batch_mean = benchmark.stats.stats.mean
    benchmark.extra_info["batch_ingest_ms"] = round(batch_mean * 1000, 3)
    update_mean = RESULTS.pop("_livetip_update_mean_s", None)
    if update_mean:
        speedup = batch_mean / update_mean
        benchmark.extra_info["livetip_vs_batch_speedup"] = round(speedup, 2)
        RESULTS["livetip_vs_batch_speedup"] = round(speedup, 2)
        assert speedup >= 5.0


BURST_CLIENTS = 24


def _storm(port, round_counter, latencies, sheds):
    """One seeded burst: every client reports a latency or a shed.

    Sources are unique across rounds so no request coalesces or hits
    the result cache; a seeded latency injection holds the first few
    execution slots so the burst genuinely contends for admission.
    """
    base = next(round_counter) * BURST_CLIENTS
    offsets = faults.burst_offsets(BURST_CLIENTS, spread=0.02, seed=11)
    plan = faults.FaultPlan(seed=11)
    plan.delay_service(0.05, match="query:*", times=6)

    def one(index, offset):
        time.sleep(offset)
        start = time.perf_counter()
        try:
            with ServiceClient(port=port, overload_retries=0) as client:
                client.query("BFS", base + index)
            latencies.append(time.perf_counter() - start)
        except ServiceOverloadedError:
            sheds.append(index)

    threads = [
        threading.Thread(target=one, args=(i, off))
        for i, off in enumerate(offsets)
    ]
    with plan.active():
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
    assert not any(t.is_alive() for t in threads)


@pytest.mark.benchmark(group="service-overload")
def test_burst_overload(benchmark, service_store):
    """Shed rate and p99 admitted latency under a seeded burst.

    A deliberately small admission lane (2 slots, 4 queue seats,
    250ms queue budget) faces 24 near-simultaneous clients, so some
    requests must be shed.  The headline numbers: what fraction was
    shed, and the p99 latency of the requests that did get through.
    """
    config = ServiceConfig(
        query_admission=AdmissionPolicy(max_concurrent=2, max_queue=4,
                                        queue_timeout=0.25),
    )
    state = ServiceState(service_store, weight_fn=WF)
    rounds = itertools.count()
    latencies: list = []
    sheds: list = []
    try:
        with ServiceRunner(state, config) as runner:
            benchmark.pedantic(
                _storm, args=(runner.port, rounds, latencies, sheds),
                rounds=ROUNDS, iterations=1, warmup_rounds=0,
            )
    finally:
        state.close()

    total = ROUNDS * BURST_CLIENTS
    assert len(latencies) + len(sheds) == total
    shed_rate = len(sheds) / total
    ordered = sorted(latencies)
    p99 = ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]
    benchmark.extra_info["shed_rate"] = round(shed_rate, 4)
    benchmark.extra_info["p99_latency_ms"] = round(p99 * 1000, 3)
    RESULTS["burst_shed_rate"] = round(shed_rate, 4)
    RESULTS["burst_p99_latency_ms"] = round(p99 * 1000, 3)
    RESULTS["burst_clients"] = BURST_CLIENTS


#: The temporal workload runs in the regime the Triangular Grid is
#: built for — a denser graph (from-scratch convergence is expensive)
#: evolving by small batches (increments are cheap).  The mixed-plan
#: spec's sparse graph makes singleton recomputation nearly free, which
#: benchmarks the protocol, not the sharing.
TEMPORAL_SPEC = BENCH_SPEC.scaled(
    edge_scale=0.6, num_snapshots=12, batch_size=40,
)
TEMPORAL_SNAPSHOTS = TEMPORAL_SPEC.num_snapshots

#: Both temporal tests draw fresh sources (cold caches every round)
#: from one degree-ranked pool, interleaved — comparable reach, so the
#: measured ratio reflects the evaluation strategy, not which test got
#: the better-connected vertices.
_TEMPORAL_POOLS: Dict[str, Any] = {}


@pytest.fixture(scope="module")
def temporal_running(tmp_path_factory):
    import numpy as np

    from repro.bench.workloads import build_workload
    from repro.graph.csr import CSRGraph

    workload = build_workload(TEMPORAL_SPEC, weight_fn=WF)
    base_csr = CSRGraph.from_edge_set(
        workload.evolving.snapshot_edges(0), workload.num_vertices
    )
    pool = np.argsort(base_csr.degrees())[::-1][:200].tolist()
    _TEMPORAL_POOLS["coalesced"] = iter(pool[0::2])
    _TEMPORAL_POOLS["naive"] = iter(pool[1::2])
    path = tmp_path_factory.mktemp("bench-temporal") / "store"
    store = SnapshotStore.create(path, workload.evolving)
    state = ServiceState(store, weight_fn=WF)
    with ServiceRunner(state) as runner:
        yield runner
    state.close()


@pytest.mark.benchmark(group="service-temporal")
def test_temporal_coalesced_batch(benchmark, temporal_running):
    """One temporal batch of per-version points: a single descent.

    The batch asks for every snapshot of the window as a point-in-time
    spec; the engine coalesces the singletons into one range and walks
    the Triangular Grid once.  A fresh source per round keeps the
    result cache out of the picture.
    """
    sources = _TEMPORAL_POOLS["coalesced"]
    specs = [{"mode": "point", "as_of": v}
             for v in range(TEMPORAL_SNAPSHOTS)]

    with ServiceClient(port=temporal_running.port) as client:

        def run():
            response = client.temporal("SSSP", next(sources), specs)
            assert response["ranges_evaluated"] == 1
            assert response["snapshots_scanned"] == TEMPORAL_SNAPSHOTS

        benchmark.pedantic(run, rounds=ROUNDS, iterations=1,
                           warmup_rounds=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["snapshots_per_second"] = round(
        TEMPORAL_SNAPSHOTS / mean, 2
    )
    RESULTS["temporal_queries_per_second"] = round(1.0 / mean, 2)
    RESULTS["temporal_snapshots_per_second"] = round(
        TEMPORAL_SNAPSHOTS / mean, 2
    )
    RESULTS["_temporal_coalesced_min_s"] = benchmark.stats.stats.min


@pytest.mark.benchmark(group="service-temporal")
def test_temporal_naive_per_snapshot(benchmark, temporal_running):
    """The baseline: every snapshot recomputed independently.

    One single-version query per snapshot, each with a fresh source so
    neither the result cache nor the cross-query memoizer can share
    converged states between them — the cost model of a system without
    the Triangular Grid.  The coalesced batch above must beat this by
    >= 3x; that multiple IS the sharing, measured through the full
    service stack.
    """
    sources = _TEMPORAL_POOLS["naive"]

    with ServiceClient(port=temporal_running.port) as client:

        def run():
            for version in range(TEMPORAL_SNAPSHOTS):
                client.query("SSSP", next(sources),
                             first=version, last=version)

        benchmark.pedantic(run, rounds=ROUNDS, iterations=1,
                           warmup_rounds=1)
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["snapshots_per_second"] = round(
        TEMPORAL_SNAPSHOTS / mean, 2
    )
    RESULTS["temporal_naive_snapshots_per_second"] = round(
        TEMPORAL_SNAPSHOTS / mean, 2
    )
    coalesced_min = RESULTS.pop("_temporal_coalesced_min_s", None)
    if coalesced_min:
        # Min-over-rounds on both sides: the steady-state ratio, robust
        # against one noisy round on a shared box.
        speedup = benchmark.stats.stats.min / coalesced_min
        benchmark.extra_info["coalescing_speedup"] = round(speedup, 2)
        RESULTS["temporal_coalescing_speedup"] = round(speedup, 2)
        assert speedup >= 3.0


FLEET_REPLICAS = 3
FLEET_SOURCES = 6

#: Per-source plan with nested overlapping windows: after the full
#: range, every narrower window re-walks interior schedule nodes the
#: owner replica already converged — node-cache hits *if* every query
#: for the source lands on the same replica.
FLEET_PLAN = (
    ("BFS", None, None),
    ("SSSP", None, None),
    ("SSSP", 1, 9),
    ("SSSP", 2, 8),
    ("BFS", 2, 8),
    ("BFS", 3, 7),
)


@pytest.fixture(scope="module")
def fleet_running(service_store, tmp_path_factory):
    """A 3-replica fleet over copies of the bench store."""
    root = tmp_path_factory.mktemp("bench-fleet")
    supervisor = FleetSupervisor(
        service_store.directory, root,
        replicas=FLEET_REPLICAS, weight_fn=WF,
    )
    with supervisor:
        yield supervisor


def run_fleet_plan(port, workload):
    with ServiceClient(port=port) as client:
        for offset in range(FLEET_SOURCES):
            for algorithm, first, last in FLEET_PLAN:
                client.query(algorithm, workload.source + offset,
                             first, last)


@pytest.mark.benchmark(group="service-fleet")
def test_fleet_query_throughput(benchmark, fleet_running, workload):
    """Routed throughput and aggregate cache affinity of the fleet."""
    benchmark.pedantic(
        run_fleet_plan, args=(fleet_running.router_port, workload),
        rounds=ROUNDS, iterations=1, warmup_rounds=0,
    )
    total = FLEET_SOURCES * len(FLEET_PLAN)
    qps = total / benchmark.stats.stats.mean
    hits = misses = 0
    for name in fleet_running.replicas:
        with fleet_running.replica_client(name) as direct:
            cache = direct.status()["node_cache"]
        hits += cache["hits"]
        misses += cache["misses"]
    hit_rate = hits / max(hits + misses, 1)
    benchmark.extra_info["queries_per_second"] = round(qps, 2)
    benchmark.extra_info["node_cache_hit_rate"] = round(hit_rate, 4)
    RESULTS["fleet_queries_per_second"] = round(qps, 2)
    RESULTS["fleet_node_cache_hit_rate"] = round(hit_rate, 4)
    RESULTS["fleet_replicas"] = FLEET_REPLICAS
    # Affinity is the point: repeats land on the replica whose caches
    # are warm, so the fleet must beat the single-replica mixed-plan
    # node-cache baseline (~0.10).
    assert hit_rate > 0.10


AUTOSCALE_WAVES = 6        # minimum waves (the measured storm)
AUTOSCALE_MAX_WAVES = 10   # keep storming until a wave recovers
AUTOSCALE_WAVE_GAP = 0.7   # idle seconds between waves: grow headroom
AUTOSCALE_RECOVERED = 0.10  # a wave shedding under this has recovered


def _autoscale_wave(port, base, latencies, sheds):
    """One burst wave through the router: same shape as ``_storm``.

    Unlike ``_storm`` this does not arm its own fault plan — the
    caller injects the latency fault once for the whole storm (the
    chaos-suite convention): a *transient* slowdown at burst start,
    so the recovery clock measures the autopilot catching up after
    the fault passes, not a condition that re-arms forever.
    """
    offsets = faults.burst_offsets(BURST_CLIENTS, spread=0.02, seed=11)

    def one(index, offset):
        time.sleep(offset)
        start = time.perf_counter()
        try:
            with ServiceClient(port=port, overload_retries=0) as client:
                client.query("BFS", base + index)
            latencies.append(time.perf_counter() - start)
        except ServiceOverloadedError:
            sheds.append(index)

    threads = [
        threading.Thread(target=one, args=(i, off))
        for i, off in enumerate(offsets)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads)


@pytest.mark.benchmark(group="service-autoscale")
def test_autoscale_burst(benchmark, service_store, tmp_path_factory):
    """The static burst again, but the fleet is allowed to react.

    ``test_burst_overload`` pins what a fixed deployment sheds under
    the seeded storm (~75%).  Here the identical per-lane admission
    (2 slots, 4 seats, 250ms) faces the same per-wave burst, but behind
    an autopiloted min-2/max-5 fleet: the loop observes the shedding,
    grows between waves, and the headline ``autoscale_shed_rate`` must
    come in at no more than half the static ``burst_shed_rate`` while
    changing membership at most 3 times (the hysteresis bound — and
    structurally all the room between min and max).
    """
    from repro.autopilot import (
        AutopilotConfig,
        AutopilotRunner,
        FleetAutopilot,
    )

    root = tmp_path_factory.mktemp("bench-autoscale")
    supervisor = FleetSupervisor(
        service_store.directory, root, replicas=2, weight_fn=WF,
        service_config=lambda name: ServiceConfig(
            query_admission=AdmissionPolicy(max_concurrent=2, max_queue=4,
                                            queue_timeout=0.25),
        ),
    )
    config = AutopilotConfig(
        min_replicas=2, max_replicas=5,
        ewma_alpha=1.0, scale_up_pressure=0.15, scale_down_pressure=0.01,
        queue_pressure_depth=2, calm_cycles=10_000,
        grow_cooldown_s=0.3, shrink_cooldown_s=600.0, heal_cooldown_s=0.1,
        interval_s=0.05, jitter=0.2, jitter_seed=11,
    )
    latencies: list = []
    waves: list = []

    with supervisor as fleet:
        autopilot = FleetAutopilot(fleet, config)
        with autopilot, AutopilotRunner(autopilot):

            def storm():
                # One transient latency fault at burst start — the
                # chaos-suite convention — so the storm's tail shows
                # what the grown fleet sheds on its own.
                plan = faults.FaultPlan(seed=11)
                plan.delay_service(0.05, match="query:*", times=6)
                start = time.perf_counter()
                with plan.active():
                    for wave in range(AUTOSCALE_MAX_WAVES):
                        wave_start = time.perf_counter() - start
                        replicas_at_start = len(fleet.replicas)
                        sheds: list = []
                        _autoscale_wave(fleet.router_port,
                                        wave * BURST_CLIENTS,
                                        latencies, sheds)
                        waves.append({"start_s": round(wave_start, 3),
                                      "shed": len(sheds),
                                      "replicas": replicas_at_start})
                        recovered = (len(sheds) / BURST_CLIENTS
                                     < AUTOSCALE_RECOVERED)
                        if wave + 1 >= AUTOSCALE_WAVES and recovered:
                            break
                        time.sleep(AUTOSCALE_WAVE_GAP)

            benchmark.pedantic(storm, rounds=1, iterations=1,
                               warmup_rounds=0)
        changes = autopilot.counters["membership_changes"]
        grows = autopilot.counters["grows"]

    total = len(waves) * BURST_CLIENTS
    shed_total = sum(w["shed"] for w in waves)
    assert len(latencies) + shed_total == total
    shed_rate = shed_total / total
    # Recovery: burst start -> the first wave back under 10% shed.
    recovery = None
    for wave in waves:
        if wave["shed"] / BURST_CLIENTS < 0.10:
            recovery = wave["start_s"]
            break
    benchmark.extra_info["shed_rate"] = round(shed_rate, 4)
    benchmark.extra_info["membership_changes"] = changes
    RESULTS["autoscale_shed_rate"] = round(shed_rate, 4)
    RESULTS["autoscale_recovery_s"] = recovery
    RESULTS["autoscale_membership_changes"] = changes
    RESULTS["autoscale_waves"] = waves
    assert grows >= 1
    assert changes <= 3
    # The acceptance bar: half the static fleet's shed rate (0.75).
    baseline = RESULTS.get("burst_shed_rate", 0.75)
    assert shed_rate <= 0.5 * baseline
