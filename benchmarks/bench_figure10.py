"""Figure 10 — sensitivity to the addition:deletion ratio.

KickStarter vs Direct-Hop under addition-heavy (75% adds) and
deletion-heavy (25% adds) update streams.  The paper's claim: the more
deletions the stream carries, the larger Direct-Hop's advantage,
because deletions are exactly the work the CommonGraph eliminates.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.bench.workloads import build_workload
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.kickstarter.streaming import StreamingSession

from conftest import BENCH_SPEC, WF

ALGORITHM = "SSSP"
ROUNDS = 3
RATIOS = (0.75, 0.5, 0.25)  # fraction of each batch that is additions


@pytest.fixture(scope="module", params=RATIOS, ids=lambda r: f"adds{int(r*100)}pct")
def ratio_workload(request):
    workload = build_workload(
        BENCH_SPEC.scaled(add_fraction=request.param), weight_fn=WF
    )
    decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
    return request.param, workload, decomp


def test_kickstarter(benchmark, ratio_workload):
    fraction, workload, _ = ratio_workload
    benchmark.group = f"figure10-adds{int(fraction * 100)}pct"

    def run():
        StreamingSession(
            workload.evolving, get_algorithm(ALGORITHM), workload.source,
            weight_fn=WF, keep_values=False,
        ).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


def test_direct_hop(benchmark, ratio_workload):
    fraction, workload, decomp = ratio_workload
    benchmark.group = f"figure10-adds{int(fraction * 100)}pct"

    def run():
        DirectHopEvaluator(
            decomp, get_algorithm(ALGORITHM), workload.source, weight_fn=WF
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
