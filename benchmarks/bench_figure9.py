"""Figure 9 — fixed total updates, batch size traded against snapshots.

Two workloads carry the same total number of updates: many small
batches (more snapshots) vs few large batches.  The paper's claim:
direct-hop is favoured by large batches, work-sharing by small ones.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.bench.workloads import build_workload
from repro.core.common import CommonGraphDecomposition
from repro.core.direct_hop import DirectHopEvaluator
from repro.core.engine import WorkSharingEvaluator
from repro.kickstarter.streaming import StreamingSession

from conftest import BENCH_SPEC, WF

ALGORITHM = "SSSP"
ROUNDS = 3
# (batch_size, snapshots): both carry 720 total updates.
SWEEP = ((45, 17), (180, 5))


@pytest.fixture(scope="module", params=SWEEP, ids=lambda p: f"batch{p[0]}x{p[1]}")
def tradeoff(request):
    batch, count = request.param
    workload = build_workload(
        BENCH_SPEC.scaled(batch_size=batch, num_snapshots=count), weight_fn=WF
    )
    decomp = CommonGraphDecomposition.from_evolving(workload.evolving)
    return batch, count, workload, decomp


def test_kickstarter(benchmark, tradeoff):
    batch, count, workload, _ = tradeoff
    benchmark.group = f"figure9-batch{batch}x{count}"

    def run():
        StreamingSession(
            workload.evolving, get_algorithm(ALGORITHM), workload.source,
            weight_fn=WF, keep_values=False,
        ).run()

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


def test_direct_hop(benchmark, tradeoff):
    batch, count, workload, decomp = tradeoff
    benchmark.group = f"figure9-batch{batch}x{count}"

    def run():
        DirectHopEvaluator(
            decomp, get_algorithm(ALGORITHM), workload.source, weight_fn=WF
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


def test_work_sharing(benchmark, tradeoff):
    batch, count, workload, decomp = tradeoff
    benchmark.group = f"figure9-batch{batch}x{count}"

    def run():
        WorkSharingEvaluator(
            decomp, get_algorithm(ALGORITHM), workload.source, weight_fn=WF
        ).run(keep_values=False)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)
