"""Unit tests for the consistent hash ring."""

from __future__ import annotations

import pytest

from repro.errors import FleetError
from repro.fleet import ConsistentHashRing

pytestmark = pytest.mark.fleet

MEMBERS = ("replica-0", "replica-1", "replica-2")
SOURCES = range(256)


class TestDeterminism:
    def test_same_members_same_layout(self):
        a = ConsistentHashRing(MEMBERS)
        b = ConsistentHashRing(reversed(MEMBERS))
        assert [a.owner(s) for s in SOURCES] == [b.owner(s) for s in SOURCES]

    def test_readding_a_member_restores_its_share(self):
        ring = ConsistentHashRing(MEMBERS)
        before = {s: ring.owner(s) for s in SOURCES}
        ring.remove("replica-1")
        ring.add("replica-1")
        assert {s: ring.owner(s) for s in SOURCES} == before


class TestMembership:
    def test_add_and_remove_are_idempotent(self):
        ring = ConsistentHashRing(MEMBERS)
        ring.add("replica-0")
        assert len(ring) == 3
        ring.remove("replica-0")
        ring.remove("replica-0")
        assert len(ring) == 2
        assert "replica-0" not in ring
        assert ring.members() == ("replica-1", "replica-2")

    def test_empty_ring_raises_fleet_error(self):
        ring = ConsistentHashRing()
        with pytest.raises(FleetError):
            ring.owner(0)


class TestStability:
    def test_removal_moves_only_the_removed_members_share(self):
        ring = ConsistentHashRing(MEMBERS)
        before = {s: ring.owner(s) for s in SOURCES}
        ring.remove("replica-1")
        after = {s: ring.owner(s) for s in SOURCES}
        for source in SOURCES:
            if before[source] != "replica-1":
                assert after[source] == before[source]
            else:
                assert after[source] in ("replica-0", "replica-2")

    def test_every_member_owns_some_sources(self):
        counts = ConsistentHashRing(MEMBERS).assignment(SOURCES)
        assert set(counts) == set(MEMBERS)
        assert all(count > 0 for count in counts.values())


class TestFailoverOrder:
    def test_owners_are_distinct_and_start_with_the_owner(self):
        ring = ConsistentHashRing(MEMBERS)
        for source in SOURCES:
            order = ring.owners(source, 3)
            assert order[0] == ring.owner(source)
            assert sorted(order) == sorted(MEMBERS)

    def test_owners_caps_at_member_count(self):
        ring = ConsistentHashRing(MEMBERS)
        assert len(ring.owners(7, 99)) == 3

    def test_failover_order_survives_ejection(self):
        """After ejecting the owner, the old second choice owns the key."""
        ring = ConsistentHashRing(MEMBERS)
        for source in range(32):
            first, second, _ = ring.owners(source, 3)
            ring.remove(first)
            assert ring.owner(source) == second
            ring.add(first)
